#!/usr/bin/env python3
"""Project a betweenness workload onto the paper's 16-node cluster.

Uses the cluster performance model to answer the capacity-planning question a
downstream user actually has: *how many compute nodes do I need to finish a
given graph within my time budget?*  The example

1. takes the paper's billion-edge instances (Table I/II statistics),
2. sweeps the node count with the epoch-based MPI algorithm model,
3. prints the projected running time, speedup over the shared-memory baseline
   and the per-phase breakdown,
4. reports the smallest node count that meets a 10-minute target.

Run with::

    python examples/cluster_scaling_study.py
"""

from __future__ import annotations

from repro.cluster import PAPER_CLUSTER, simulate_epoch_mpi, simulate_shared_memory
from repro.experiments.instances import paper_profile

INSTANCES = ["orkut-links", "twitter", "friendster", "dimacs10-uk-2007-05"]
NODE_COUNTS = [1, 2, 4, 8, 16]
TARGET_MINUTES = 10.0


def main() -> None:
    machine = PAPER_CLUSTER.machine
    print(
        f"cluster model: {machine.num_nodes} nodes x {machine.sockets_per_node} sockets x "
        f"{machine.cores_per_socket} cores, {machine.memory_per_node_bytes / 2**30:.0f} GiB/node"
    )
    for name in INSTANCES:
        profile = paper_profile(name)
        baseline = simulate_shared_memory(profile)
        print(
            f"\n{name}: |V| = {profile.num_vertices:,}, |E| = {profile.num_edges:,}, "
            f"state frame {profile.frame_bytes / 2**20:.0f} MiB"
        )
        print(
            f"  shared-memory baseline (1 node, 24 threads): "
            f"{baseline.total_seconds / 60:.1f} minutes"
        )
        meets_target = None
        for nodes in NODE_COUNTS:
            run = simulate_epoch_mpi(profile, num_nodes=nodes)
            speedup = baseline.total_seconds / run.total_seconds
            print(
                f"  {nodes:2d} nodes: {run.total_seconds / 60:6.1f} min "
                f"(speedup {speedup:5.2f}x, {run.num_epochs} epochs, "
                f"{run.communication_bytes_per_epoch / 2**30:.2f} GiB reduced per epoch)"
            )
            if meets_target is None and run.total_seconds <= TARGET_MINUTES * 60:
                meets_target = nodes
        if meets_target is not None:
            print(f"  -> {meets_target} node(s) suffice for a {TARGET_MINUTES:.0f}-minute budget")
        else:
            print(f"  -> even 16 nodes exceed the {TARGET_MINUTES:.0f}-minute budget in the model")

        # Memory check from Section IV: the graph must fit next to each
        # per-socket process.
        fits = machine.fits_in_socket_memory(profile.graph_bytes)
        print(f"  graph fits into one NUMA domain's memory: {'yes' if fits else 'NO'}")


if __name__ == "__main__":
    main()
