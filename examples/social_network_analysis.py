#!/usr/bin/env python3
"""Find key actors in a large social network with the parallel drivers.

The motivating application of the paper: on social networks only a handful of
vertices have betweenness above 0.01, so a small eps is needed to reliably
identify the important ones.  This example

1. builds a social-network proxy (R-MAT, Graph500 parameters, as used in the
   paper's synthetic evaluation),
2. runs the epoch-based distributed KADABRA (ranks simulated as threads),
3. compares eps = 0.05 and eps = 0.02 to show how a tighter error bound
   exposes more of the high-betweenness vertices, mirroring the paper's
   argument for eps = 0.001 at scale.

Run with::

    python examples/social_network_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import Resources, estimate_betweenness
from repro.graph.generators import rmat_graph
from repro.graph.components import largest_connected_component


def run_with_eps(graph, eps: float, *, seed: int = 7):
    return estimate_betweenness(
        graph,
        algorithm="distributed",
        eps=eps,
        delta=0.1,
        seed=seed,
        resources=Resources(
            processes=2,
            threads=2,
            processes_per_node=2,  # one rank per NUMA socket, as in the paper
        ),
    )


def main() -> None:
    graph = largest_connected_component(rmat_graph(12, edge_factor=16, seed=3))
    print(f"social-network proxy: {graph.num_vertices} vertices, {graph.num_edges} edges")

    coarse = run_with_eps(graph, eps=0.05)
    fine = run_with_eps(graph, eps=0.02)

    for label, result in (("eps = 0.05", coarse), ("eps = 0.02", fine)):
        detectable = int(np.sum(result.scores > 2 * result.eps))
        print(
            f"\n{label}: {result.num_samples} samples, {result.num_epochs} epochs, "
            f"{result.extra['communication_bytes'] / 1e6:.1f} MB aggregated"
        )
        print(f"  vertices whose score exceeds 2*eps (reliably detectable): {detectable}")
        print("  top-5 key actors:")
        for vertex, score in result.top_k(5):
            print(f"    vertex {vertex:6d}   b~ = {score:.5f}")

    # The tighter error bound never detects fewer vertices.
    coarse_detectable = int(np.sum(coarse.scores > 2 * coarse.eps))
    fine_detectable = int(np.sum(fine.scores > 2 * fine.eps))
    print(
        f"\ntightening eps from 0.05 to 0.02 raises the number of reliably "
        f"detectable key actors from {coarse_detectable} to {fine_detectable}"
    )


if __name__ == "__main__":
    main()
