#!/usr/bin/env python3
"""Betweenness on road networks: the high-diameter regime.

Road networks are the paper's hardest shared-memory instances (the largest one
needs 14 hours at eps = 0.001 on one node): their huge diameter makes every
BFS sample expensive and inflates the sample budget omega.  This example

1. builds a road-network proxy (perturbed lattice) and a social-network proxy
   of comparable size,
2. shows how the diameter drives the vertex-diameter bound and omega,
3. runs KADABRA on both and compares samples, epochs and per-sample cost,
4. verifies that high-betweenness vertices of the road network lie on the
   through-routes (as one expects for bridges/arterials).

Run with::

    python examples/road_network_study.py
"""

from __future__ import annotations

import numpy as np

from repro import Resources, estimate_betweenness
from repro.core import compute_omega
from repro.diameter import double_sweep_estimate
from repro.graph.generators import barabasi_albert, road_network_graph


def analyse(name: str, graph, *, eps: float = 0.05, seed: int = 11):
    estimate = double_sweep_estimate(graph, seed=seed)
    vd_bound = estimate.upper + 1
    omega = compute_omega(eps, 0.1, vd_bound)
    print(f"\n{name}: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print(f"  diameter bounds: [{estimate.lower}, {estimate.upper}]  -> omega = {omega}")

    result = estimate_betweenness(
        graph,
        algorithm="shared-memory",
        eps=eps,
        delta=0.1,
        seed=seed,
        resources=Resources(threads=4),
    )
    edges_per_sample = result.extra.get("edges_touched", 0.0) / max(result.num_samples, 1)
    print(
        f"  KADABRA: {result.num_samples} samples in {result.num_epochs} epochs, "
        f"~{edges_per_sample:.0f} adjacency entries per sample"
        if edges_per_sample
        else f"  KADABRA: {result.num_samples} samples in {result.num_epochs} epochs"
    )
    print("  top-5 vertices:")
    for vertex, score in result.top_k(5):
        print(f"    vertex {vertex:6d}   b~ = {score:.4f}")
    return result


def main() -> None:
    side = 45
    road = road_network_graph(side, side, seed=2)
    social = barabasi_albert(road.num_vertices, 3, seed=2)

    road_result = analyse("road network proxy", road)
    social_result = analyse("social network proxy (same |V|)", social)

    # The road network's diameter is orders of magnitude larger, which the
    # paper identifies as the reason these instances are so much harder.
    road_diam = double_sweep_estimate(road, seed=0).lower
    social_diam = double_sweep_estimate(social, seed=0).lower
    print(
        f"\ndiameter ratio road/social: {road_diam / max(social_diam, 1):.1f}x; "
        f"max betweenness road: {float(np.max(road_result.scores)):.3f} vs "
        f"social: {float(np.max(social_result.scores)):.3f}"
    )
    print(
        "Road networks concentrate betweenness on arterial vertices, while the "
        "social proxy spreads it over hub vertices — exactly the two regimes "
        "of Table I/II in the paper."
    )


if __name__ == "__main__":
    main()
