#!/usr/bin/env python3
"""Quickstart: approximate betweenness centrality with KADABRA.

Builds a small social-network-like graph, runs KADABRA through the
:func:`repro.estimate_betweenness` facade (with a progress callback), compares
it against the exact Brandes backend and prints the top-ranked vertices.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import estimate_betweenness
from repro.graph.generators import barabasi_albert
from repro.util.stats import max_abs_error, relative_rank_overlap


def main() -> None:
    # 1. Build (or load) a graph.  estimate_betweenness() also accepts a file
    #    path directly: .rcsr stores open zero-copy and text edge lists are
    #    converted into the graph cache on first touch (see docs/formats.md,
    #    e.g. examples/data/example-social.txt).  Here we generate one.
    graph = barabasi_albert(2000, 4, seed=1)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. Run KADABRA through the facade: eps is the maximum absolute error,
    #    delta the failure probability of that guarantee.  The callback makes
    #    the adaptive run observable epoch by epoch.
    def on_progress(event) -> None:
        print(f"  [{event.backend}] {event.phase}: samples {event.num_samples}")

    result = estimate_betweenness(
        graph, algorithm="sequential", eps=0.03, delta=0.1, seed=42, callbacks=on_progress
    )
    print(
        f"KADABRA ({result.backend}) finished after {result.num_samples} samples "
        f"(budget omega = {result.omega}, vertex-diameter bound = {result.vertex_diameter})"
    )
    for phase, seconds in result.phase_seconds.items():
        print(f"  phase {phase:20s} {seconds:8.3f} s")

    print("\ntop-10 vertices by approximate betweenness:")
    for vertex, score in result.top_k(10):
        print(f"  vertex {vertex:6d}   b~ = {score:.5f}")

    # 3. (Optional, small graphs only) compare against the exact backend —
    #    the same facade call, just a different registry entry.
    exact = estimate_betweenness(graph, algorithm="exact")
    error = max_abs_error(result.scores, exact.scores)
    overlap = relative_rank_overlap(result.scores, exact.scores, 10)
    print(f"\nmax abs error vs exact Brandes: {error:.5f} (guarantee: {result.eps})")
    print(f"top-10 overlap with exact ranking: {overlap:.0%}")


if __name__ == "__main__":
    main()
