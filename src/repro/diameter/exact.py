"""Exact diameter computation (reference implementation).

KADABRA only needs an *upper bound* on the vertex diameter; the exact
algorithms here serve as ground truth for tests, for small graphs and for the
instance tables.  ``exact_diameter`` computes all eccentricities (O(n·m)),
``ifub_diameter`` implements the iFUB bounding scheme which terminates much
earlier on low-diameter complex networks.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.traversal import bfs_distances

__all__ = ["exact_diameter", "ifub_diameter"]


def exact_diameter(graph: CSRGraph) -> int:
    """Exact diameter of the largest values over all eccentricities.

    Unreachable pairs are ignored (i.e. the diameter of each connected
    component is taken and the maximum returned); the empty graph has
    diameter 0.
    """
    n = graph.num_vertices
    best = 0
    for v in range(n):
        ecc = bfs_distances(graph, v).eccentricity
        if ecc > best:
            best = ecc
    return best


def ifub_diameter(graph: CSRGraph, *, start: int | None = None) -> int:
    """Exact diameter via the iFUB (iterative Fringe Upper Bound) method.

    The algorithm roots a BFS at a high-degree vertex, then processes
    vertices by decreasing BFS level: for each fringe vertex it computes the
    eccentricity and keeps a lower bound ``lb``; once ``lb >= 2 * (level - 1)``
    no deeper vertex can improve the diameter and the algorithm stops.  On
    small-world graphs this inspects only a handful of BFS trees.

    The graph is assumed to be connected; on disconnected graphs the result
    refers to the component containing ``start``.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    if start is None:
        start = int(np.argmax(graph.degrees))
    root_bfs = bfs_distances(graph, start)
    distances = root_bfs.distances
    reached = distances >= 0
    if not np.any(reached):
        return 0
    max_level = int(distances[reached].max())
    lower_bound = max_level
    # Process fringe vertices level by level, deepest first.
    for level in range(max_level, 0, -1):
        if lower_bound >= 2 * level:
            break
        fringe = np.flatnonzero(distances == level)
        for v in fringe:
            ecc = bfs_distances(graph, int(v)).eccentricity
            if ecc > lower_bound:
                lower_bound = ecc
        if lower_bound >= 2 * (level - 1):
            break
    return lower_bound
