"""Heuristic diameter bounds based on double-sweep BFS.

These are the cheap estimators used by the KADABRA driver to obtain an upper
bound on the *vertex diameter* (the number of vertices on a longest shortest
path), which enters the sample-size bound ω.  The paper computes the diameter
with the sequential algorithm of Borassi et al.; the two-sweep / four-sweep
heuristics below give the same kind of bounds at a few BFS's cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.traversal import bfs_distances, farthest_vertex

__all__ = ["DiameterEstimate", "two_sweep_lower_bound", "double_sweep_estimate", "vertex_diameter_upper_bound"]


@dataclass
class DiameterEstimate:
    """Lower/upper bounds on the (edge-count) diameter of a graph."""

    lower: int
    upper: int

    @property
    def is_exact(self) -> bool:
        return self.lower == self.upper

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError(f"lower bound {self.lower} exceeds upper bound {self.upper}")


def two_sweep_lower_bound(graph: CSRGraph, *, seed: int | None = None) -> int:
    """Classic double-sweep lower bound: BFS from a random vertex, then BFS
    from the farthest vertex found; the second eccentricity is a lower bound
    on the diameter (and is exact on trees)."""
    n = graph.num_vertices
    if n == 0:
        return 0
    rng = np.random.default_rng(seed)
    start = int(rng.integers(0, n))
    far, _ = farthest_vertex(graph, start)
    _, dist = farthest_vertex(graph, far)
    return int(dist)


def double_sweep_estimate(graph: CSRGraph, *, sweeps: int = 4, seed: int | None = None) -> DiameterEstimate:
    """Lower and upper diameter bounds from a few BFS sweeps.

    The lower bound is the largest eccentricity observed.  The upper bound is
    ``min_v (2 * ecc(v))`` over the swept vertices (eccentricity of any vertex
    is at least half the diameter), additionally tightened by sweeping from a
    mid-point of the longest sweep path level structure.
    """
    n = graph.num_vertices
    if n == 0:
        return DiameterEstimate(0, 0)
    rng = np.random.default_rng(seed)
    lower = 0
    upper = None
    current = int(rng.integers(0, n))
    for _ in range(max(1, sweeps)):
        result = bfs_distances(graph, current)
        ecc = result.eccentricity
        lower = max(lower, ecc)
        upper = min(upper, 2 * ecc) if upper is not None else 2 * ecc
        reached = np.flatnonzero(result.distances >= 0)
        if reached.size == 0:
            break
        # Next sweep starts from a farthest vertex.
        current = int(reached[np.argmax(result.distances[reached])])
    # Sweep once from a vertex in the "middle" of the last long path, which
    # often has small eccentricity and therefore tightens the upper bound.
    result = bfs_distances(graph, current)
    reached = np.flatnonzero(result.distances >= 0)
    if reached.size > 0:
        half = result.eccentricity // 2
        mid_candidates = reached[result.distances[reached] == half]
        if mid_candidates.size > 0:
            mid = int(mid_candidates[0])
            mid_ecc = bfs_distances(graph, mid).eccentricity
            lower = max(lower, mid_ecc)
            upper = min(upper, 2 * mid_ecc)
    upper = max(upper if upper is not None else 0, lower)
    return DiameterEstimate(lower=int(lower), upper=int(upper))


def vertex_diameter_upper_bound(graph: CSRGraph, *, seed: int | None = None) -> int:
    """Upper bound on the *vertex diameter* used by KADABRA's ω computation.

    The vertex diameter is the number of vertices on a longest shortest path,
    i.e. the (edge) diameter plus one.  The bound returned is
    ``double_sweep_estimate(...).upper + 1`` and never less than 2 for graphs
    with at least one edge.
    """
    if graph.num_vertices == 0:
        return 0
    estimate = double_sweep_estimate(graph, seed=seed)
    vd = estimate.upper + 1
    if graph.num_edges > 0:
        vd = max(vd, 2)
    return int(vd)
