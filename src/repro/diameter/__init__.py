"""Diameter computation: exact algorithms and cheap bounds for KADABRA's ω."""

from repro.diameter.exact import exact_diameter, ifub_diameter
from repro.diameter.two_sweep import (
    DiameterEstimate,
    two_sweep_lower_bound,
    double_sweep_estimate,
    vertex_diameter_upper_bound,
)

__all__ = [
    "exact_diameter",
    "ifub_diameter",
    "DiameterEstimate",
    "two_sweep_lower_bound",
    "double_sweep_estimate",
    "vertex_diameter_upper_bound",
]
