"""``mpi4py``-backed communicator behind a capability probe.

Mirrors the :mod:`repro.kernels.numba_backend` pattern: try-import, run a
tiny smoke against ``COMM_WORLD``, degrade gracefully.  ``mpi4py`` is never a
hard dependency — containers without an MPI stack (like the default test
image) simply report the transport as unavailable and the socket transport
carries distributed runs.

When available, launch workers under ``mpirun``/``srun`` with::

    mpirun -n 4 python -m repro.cli dist worker --graph g.rcsr --transport mpi4py ...

and each rank wraps ``COMM_WORLD`` via :func:`world_communicator`.

Reductions deliberately go through object-mode ``gather`` + the repository's
own :func:`~repro.mpi.reduce_ops.reduce_op` fold rather than ``MPI.SUM``:
payloads here are :class:`~repro.core.state_frame.StateFrame` objects and
heterogeneous tuples, and folding them with the same operator table as every
other transport keeps the semantics (and the tests) identical.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.mpi.interface import Communicator
from repro.mpi.reduce_ops import reduce_op
from repro.mpi.requests import CompletedRequest, PolledRequest, Request
from repro.mpi.threaded import framed_payload_bytes

__all__ = ["Mpi4pyComm", "probe_mpi4py", "world_communicator"]

_PROBE_RESULT: Optional[Tuple[bool, str]] = None


def probe_mpi4py() -> Tuple[bool, str]:
    """One-time capability probe: importable *and* a live ``COMM_WORLD``."""
    global _PROBE_RESULT
    if _PROBE_RESULT is not None:
        return _PROBE_RESULT
    try:
        from mpi4py import MPI  # noqa: PLC0415 - probe import
    except Exception as exc:  # pragma: no cover - depends on container
        _PROBE_RESULT = (False, f"mpi4py not importable: {exc}")
        return _PROBE_RESULT
    try:  # pragma: no cover - requires an MPI stack
        comm = MPI.COMM_WORLD
        if comm.Get_size() < 1:
            raise RuntimeError("COMM_WORLD reports no ranks")
        _PROBE_RESULT = (True, f"mpi4py {MPI.Get_version()} available")
    except Exception as exc:  # pragma: no cover
        _PROBE_RESULT = (False, f"mpi4py present but unusable: {exc}")
    return _PROBE_RESULT


class Mpi4pyComm(Communicator):  # pragma: no cover - requires an MPI stack
    """The communicator ABC over an ``mpi4py`` intracommunicator."""

    def __init__(self, comm) -> None:
        self._comm = comm
        self._bytes = 0

    @property
    def rank(self) -> int:
        return self._comm.Get_rank()

    @property
    def size(self) -> int:
        return self._comm.Get_size()

    def _account(self, value: Any) -> None:
        self._bytes += framed_payload_bytes(value)

    # ------------------------------------------------------------------ #
    def barrier(self) -> None:
        self._comm.Barrier()

    def ibarrier(self) -> Request:
        req = self._comm.Ibarrier()
        return PolledRequest(lambda: bool(req.Test()))

    def reduce(self, value: Any, op: str = "sum", root: int = 0) -> Optional[Any]:
        self._account(value)
        gathered = self._comm.gather(value, root=root)
        if gathered is None:
            return None
        fold = reduce_op(op)
        acc = gathered[0]
        for item in gathered[1:]:
            acc = fold(acc, item)
        return acc

    def ireduce(self, value: Any, op: str = "sum", root: int = 0) -> Request:
        return CompletedRequest(self.reduce(value, op=op, root=root))

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        self._account(value)
        gathered = self._comm.allgather(value)
        fold = reduce_op(op)
        acc = gathered[0]
        for item in gathered[1:]:
            acc = fold(acc, item)
        return acc

    def bcast(self, value: Any = None, root: int = 0) -> Any:
        if self.rank == root:
            self._bytes += framed_payload_bytes(value) * max(self.size - 1, 0)
        return self._comm.bcast(value, root=root)

    def ibcast(self, value: Any = None, root: int = 0) -> Request:
        return CompletedRequest(self.bcast(value, root=root))

    def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        self._account(value)
        return self._comm.gather(value, root=root)

    def split(self, color: Any, key: int = 0) -> "Mpi4pyComm":
        # MPI requires integer colors; hash anything else stably via repr.
        int_color = color if isinstance(color, int) else abs(hash(repr(color))) % (1 << 30)
        return Mpi4pyComm(self._comm.Split(int_color, int(key)))

    def communication_bytes(self) -> int:
        """Framed-size estimate of this rank's sent payloads.

        MPI does not expose per-message wire sizes portably, so this uses
        :func:`~repro.mpi.threaded.framed_payload_bytes` per contribution —
        comparable with the socket transport's actual accounting.
        """
        return self._bytes


def world_communicator() -> Mpi4pyComm:  # pragma: no cover - requires MPI
    """``COMM_WORLD`` wrapped in the ABC; raises when the probe fails."""
    available, detail = probe_mpi4py()
    if not available:
        raise RuntimeError(f"mpi4py transport unavailable: {detail}")
    from mpi4py import MPI  # noqa: PLC0415

    return Mpi4pyComm(MPI.COMM_WORLD)
