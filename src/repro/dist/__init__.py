"""``repro.dist`` — the real multi-process distributed runtime.

Everything below :mod:`repro.parallel` was written against the
:class:`~repro.mpi.interface.Communicator` ABC precisely so the threaded
simulation could be swapped for real transport.  This package performs the
swap:

* :mod:`repro.dist.socketcomm` — :class:`SocketComm`, the ABC over TCP with a
  rank-0 rendezvous hub, length-prefixed stdlib framing and a background
  receive thread giving ``ThreadedComm``-equivalent non-blocking semantics.
* :mod:`repro.dist.mpi4py_adapter` — the same ABC over ``mpi4py`` when the
  container has it, behind a capability probe (never a hard dependency).
* :mod:`repro.dist.transports` — the probe-backed transport registry shown by
  ``repro.cli --list-backends``.
* :mod:`repro.dist.driver` — per-worker phase driver: partitioned graph view,
  diameter/calibration/adaptive phases through the unchanged epoch framework,
  epoch-boundary checkpoints and resume.
* :mod:`repro.dist.launcher` — ``repro.cli dist run``: spawn N local worker
  processes, monitor them, respawn-with-resume after a crash.
"""

from repro.dist.socketcomm import CommError, SocketComm, SocketHub, run_socket
from repro.dist.transports import TransportSpec, format_transport_table, list_transports

__all__ = [
    "CommError",
    "SocketComm",
    "SocketHub",
    "TransportSpec",
    "format_transport_table",
    "list_transports",
    "run_socket",
]
