"""``SocketComm``: the :class:`~repro.mpi.interface.Communicator` ABC over TCP.

The threaded runtime simulates ranks as threads sharing one address space;
this module provides the same collectives across real OS processes (and,
transparently, real hosts) with nothing but the standard library:

* **Framing** — every message is an 8-byte big-endian length prefix followed
  by a pickled tuple.  No third-party serialization; numpy arrays and
  :class:`~repro.core.state_frame.StateFrame` payloads ride through pickle.
* **Rendezvous** — rank 0's process hosts a :class:`SocketHub`; every rank
  (including rank 0 itself) connects to it and says hello with its rank.
  The hub is a *matcher*, not a coordinator: it pairs contributions of the
  same collective and sends results back; all reduction arithmetic reuses
  :func:`repro.mpi.reduce_ops.reduce_op`.
* **Matching** — collectives match by per-communicator per-kind call order,
  exactly like ``ThreadedComm``: the caller assigns a sequence number from a
  local counter, so interleaved non-blocking operations of different kinds
  (``ibarrier`` + ``ireduce``) pair correctly without tags.
* **Non-blocking semantics** — a background receive thread completes
  :class:`_EventRequest` handles as results arrive, giving the same overlap
  behaviour the epoch framework exploits on ``ThreadedComm`` (non-root
  ``ireduce`` completes immediately; root completes on arrival of the
  aggregate).  Blocking waits use events, not spinning.
* **Failure** — a peer that disappears without an orderly goodbye fails every
  outstanding and future collective on all surviving ranks with
  :class:`CommError` naming the lost rank.  The distributed launcher turns
  that into kill-remaining + checkpoint resume.

``run_socket(num_ranks, target)`` mirrors ``run_threaded`` for tests: real
sockets over loopback, ranks as threads of the calling process.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.mpi.interface import Communicator
from repro.mpi.reduce_ops import reduce_op
from repro.mpi.requests import PolledRequest, Request
from repro.obs.metrics import get_registry, metrics_enabled

__all__ = ["CommError", "SocketComm", "SocketHub", "run_socket", "COMM_BYTES_METRIC"]

_LEN = struct.Struct(">Q")

COMM_BYTES_METRIC = "repro_dist_comm_bytes_total"

WORLD_COMM_ID = 0


class CommError(RuntimeError):
    """A collective failed: protocol mismatch or a peer connection was lost."""


# --------------------------------------------------------------------------- #
# framing


def _send_frame(sock: socket.socket, payload: Tuple[Any, ...]) -> int:
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LEN.pack(len(blob)) + blob)
    return _LEN.size + len(blob)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks: List[bytes] = []
    while n > 0:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            return None
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> Optional[Tuple[Tuple[Any, ...], int]]:
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    blob = _recv_exact(sock, int(length))
    if blob is None:
        return None
    return pickle.loads(blob), _LEN.size + int(length)


# --------------------------------------------------------------------------- #
# hub (lives in rank 0's process)


class _HubCollective:
    """Matching state of one in-flight collective at the hub."""

    __slots__ = ("kind", "op", "root", "count", "accumulator", "contributions", "waiters", "value", "has_value")

    def __init__(self, kind: str, op: str, root: int) -> None:
        self.kind = kind
        self.op = op
        self.root = root
        self.count = 0
        self.accumulator: Any = None
        self.contributions: Dict[int, Any] = {}
        self.waiters: List[int] = []  # member ranks awaiting a bcast value
        self.value: Any = None
        self.has_value = False


class SocketHub:
    """Rank-0 rendezvous listener and collective matcher.

    Accepts exactly ``size`` connections, then matches ``("coll", ...)``
    messages by ``(comm_id, kind, seq)`` and replies with ``("result", ...)``
    frames.  ``split`` creates child communicator ids here, so sub-communicator
    collectives route through the same connections.
    """

    def __init__(self, size: int, *, host: str = "127.0.0.1", port: int = 0) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self._size = size
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(size)
        self._listener.settimeout(0.2)
        self._lock = threading.Lock()
        self._conns: Dict[int, Tuple[socket.socket, threading.Lock]] = {}
        self._table: Dict[Tuple[int, str, int], _HubCollective] = {}
        # comm_id -> world ranks indexed by communicator rank
        self._comms: Dict[int, List[int]] = {WORLD_COMM_ID: list(range(size))}
        self._next_comm_id = WORLD_COMM_ID + 1
        self._departed: set = set()
        self._failed: Optional[str] = None
        self._closing = threading.Event()
        self._threads: List[threading.Thread] = []

    @property
    def host(self) -> str:
        return self._listener.getsockname()[0]

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    def start(self) -> "SocketHub":
        accept = threading.Thread(target=self._accept_loop, name="hub-accept", daemon=True)
        accept.start()
        self._threads.append(accept)
        return self

    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        accepted = 0
        while accepted < self._size and not self._closing.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            frame = _recv_frame(conn)
            if frame is None:
                conn.close()
                continue
            (msg, _nbytes) = frame
            if not (isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "hello"):
                conn.close()
                continue
            rank = int(msg[1])
            with self._lock:
                self._conns[rank] = (conn, threading.Lock())
                failed = self._failed
            if failed is not None:
                # The world already failed before this rank finished joining;
                # it would otherwise wait forever for an error it never got.
                self._send_to(rank, ("error", failed))
            reader = threading.Thread(
                target=self._reader_loop, args=(rank, conn), name=f"hub-read-{rank}", daemon=True
            )
            reader.start()
            self._threads.append(reader)
            accepted += 1

    def _reader_loop(self, rank: int, conn: socket.socket) -> None:
        orderly = False
        while True:
            try:
                frame = _recv_frame(conn)
            except OSError:
                frame = None
            if frame is None:
                break
            msg, _nbytes = frame
            if msg[0] == "bye":
                orderly = True
                break
            if msg[0] == "coll":
                try:
                    self._on_contribution(*msg[1:])
                except CommError as exc:
                    self._fail_all(str(exc))
                    return
        if orderly:
            with self._lock:
                self._departed.add(rank)
                done = len(self._departed) >= self._size
            if done:
                self.close()
        elif not self._closing.is_set():
            self._fail_all(f"rank {rank} connection lost")

    # ------------------------------------------------------------------ #
    def _send_to(self, world_rank: int, payload: Tuple[Any, ...]) -> None:
        with self._lock:
            entry = self._conns.get(world_rank)
        if entry is None:
            return
        conn, send_lock = entry
        try:
            with send_lock:
                _send_frame(conn, payload)
        except OSError:
            pass

    def _fail_all(self, message: str) -> None:
        with self._lock:
            if self._failed is not None:
                return
            self._failed = message
            ranks = list(self._conns)
        for rank in ranks:
            self._send_to(rank, ("error", message))

    def _on_contribution(
        self,
        comm_id: int,
        kind: str,
        seq: int,
        op: str,
        root: int,
        member_rank: int,
        value: Any,
    ) -> None:
        key = (comm_id, kind, seq)
        with self._lock:
            failed = self._failed
            members = self._comms.get(comm_id)
        if failed is not None:
            # Contributions arriving after the world failed (e.g. from ranks
            # that had not yet joined when _fail_all ran) get the error too.
            if members is not None:
                self._send_to(members[member_rank], ("error", failed))
            return
        with self._lock:
            if members is None:
                raise CommError(f"unknown communicator id {comm_id}")
            entry = self._table.get(key)
            if entry is None:
                entry = self._table[key] = _HubCollective(kind, op, root)
            if entry.op != op or entry.root != root:
                raise CommError(
                    f"collective mismatch at {key}: "
                    f"({entry.kind},{entry.op},{entry.root}) vs ({kind},{op},{root})"
                )
            size = len(members)
            entry.count += 1
            done = entry.count >= size

            if kind in ("reduce", "allreduce"):
                if entry.accumulator is None:
                    entry.accumulator = value
                else:
                    entry.accumulator = reduce_op(op)(entry.accumulator, value)
            elif kind == "bcast":
                if member_rank == root:
                    entry.value = value
                    entry.has_value = True
                else:
                    entry.waiters.append(member_rank)
            elif kind == "gather":
                entry.contributions[member_rank] = value
            elif kind == "split":
                entry.contributions[member_rank] = value
            # barrier carries no payload

            to_send: List[Tuple[int, Tuple[Any, ...]]] = []
            if kind == "bcast" and entry.has_value:
                for waiter in entry.waiters:
                    to_send.append((members[waiter], ("result", comm_id, kind, seq, entry.value)))
                entry.waiters.clear()
            if done:
                del self._table[key]
                if kind == "reduce":
                    to_send.append((members[root], ("result", comm_id, kind, seq, entry.accumulator)))
                elif kind == "allreduce":
                    for r, world in enumerate(members):
                        to_send.append((world, ("result", comm_id, kind, seq, entry.accumulator)))
                elif kind == "gather":
                    ordered = [entry.contributions[r] for r in range(size)]
                    for r, world in enumerate(members):
                        result = ordered if r == root else None
                        to_send.append((world, ("result", comm_id, kind, seq, result)))
                elif kind == "barrier":
                    for world in members:
                        to_send.append((world, ("result", comm_id, kind, seq, None)))
                elif kind == "split":
                    groups: Dict[Any, List[Tuple[Any, int]]] = {}
                    for r in range(size):
                        color, sort_key = entry.contributions[r]
                        groups.setdefault(color, []).append((sort_key, r))
                    for color in sorted(groups, key=repr):
                        group = sorted(groups[color])
                        new_id = self._next_comm_id
                        self._next_comm_id += 1
                        self._comms[new_id] = [members[r] for (_k, r) in group]
                        for new_rank, (_k, r) in enumerate(group):
                            to_send.append(
                                (
                                    members[r],
                                    ("result", comm_id, kind, seq, (new_id, new_rank, len(group))),
                                )
                            )
        for world_rank, payload in to_send:
            self._send_to(world_rank, payload)

    # ------------------------------------------------------------------ #
    def wait_closed(self, timeout: Optional[float] = None) -> bool:
        """Block until the hub shut down (every rank said goodbye).

        The hosting process must drain the hub before force-closing it:
        collective results already matched but not yet written to a peer's
        socket would otherwise be lost, failing that peer spuriously.
        """
        return self._closing.wait(timeout)

    def close(self) -> None:
        self._closing.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for conn, _lock in conns:
            try:
                conn.close()
            except OSError:
                pass


# --------------------------------------------------------------------------- #
# client side


class _Pending:
    __slots__ = ("event", "value", "has_value")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.has_value = False


class _Conn:
    """One process's connection to the hub, shared by all its communicators."""

    def __init__(self, sock: socket.socket, rank: int) -> None:
        self._sock = sock
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self._pending: Dict[Tuple[int, str, int], _Pending] = {}
        self.world_rank = rank
        self.bytes_total = 0
        self.error: Optional[str] = None
        self._closed = False
        self._counter = None
        if metrics_enabled():
            self._counter = get_registry().counter(
                COMM_BYTES_METRIC,
                "Framed bytes sent+received on the distributed socket transport.",
                labelnames=("rank",),
            ).labels(rank=str(rank))
        self._recv_thread = threading.Thread(
            target=self._recv_loop, name=f"comm-recv-{rank}", daemon=True
        )
        self._recv_thread.start()

    # ------------------------------------------------------------------ #
    def _account(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_total += nbytes
        if self._counter is not None:
            self._counter.inc(nbytes)

    def _pending_for(self, key: Tuple[int, str, int]) -> _Pending:
        with self._lock:
            entry = self._pending.get(key)
            if entry is None:
                entry = self._pending[key] = _Pending()
            return entry

    def _recv_loop(self) -> None:
        while True:
            try:
                frame = _recv_frame(self._sock)
            except OSError:
                frame = None
            if frame is None:
                if not self._closed:
                    self._set_error("hub connection lost")
                return
            msg, nbytes = frame
            self._account(nbytes)
            if msg[0] == "result":
                _tag, comm_id, kind, seq, value = msg
                entry = self._pending_for((comm_id, kind, seq))
                entry.value = value
                entry.has_value = True
                entry.event.set()
            elif msg[0] == "error":
                self._set_error(str(msg[1]))
                return

    def _set_error(self, message: str) -> None:
        with self._lock:
            if self.error is None:
                self.error = message
            pending = list(self._pending.values())
        for entry in pending:
            entry.event.set()

    # ------------------------------------------------------------------ #
    def send(self, payload: Tuple[Any, ...]) -> None:
        if self.error is not None:
            raise CommError(self.error)
        try:
            with self._send_lock:
                nbytes = _send_frame(self._sock, payload)
        except OSError as exc:
            self._set_error(f"hub connection lost: {exc}")
            raise CommError(self.error) from None
        self._account(nbytes)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            with self._send_lock:
                _send_frame(self._sock, ("bye", self.world_rank))
        except OSError:
            pass
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._recv_thread.join(timeout=2.0)


class _EventRequest(Request):
    """Request completed by the receive thread (no spinning while waiting)."""

    def __init__(self, conn: _Conn, pending: _Pending, fetch: Optional[Callable[[Any], Any]] = None) -> None:
        self._conn = conn
        self._pending = pending
        self._fetch = fetch
        self._value: Any = None
        self._done = False

    def _raise_if_failed(self) -> None:
        if self._conn.error is not None:
            raise CommError(self._conn.error)

    def test(self) -> bool:
        if self._done:
            return True
        self._raise_if_failed()
        if self._pending.event.is_set():
            self._finish()
            return True
        return False

    def wait(self, poll_interval: float = 0.0) -> Any:
        del poll_interval  # event-driven; no polling needed
        if not self._done:
            self._pending.event.wait()
            self._raise_if_failed()
            self._finish()
        return self._value

    def _finish(self) -> None:
        value = self._pending.value
        self._value = self._fetch(value) if self._fetch is not None else value
        self._done = True

    def result(self) -> Any:
        if not self._done:
            raise RuntimeError("request has not completed; call wait() or test() first")
        return self._value

    @property
    def done(self) -> bool:
        return self._done


class SocketComm(Communicator):
    """TCP implementation of the communicator ABC (see module docstring).

    Collectives match by per-communicator per-kind call order like
    ``ThreadedComm``; all ranks of a communicator must therefore issue the
    same sequence of collectives, which the MPI usage model already requires.
    """

    def __init__(self, conn: _Conn, comm_id: int, rank: int, size: int) -> None:
        self._conn = conn
        self._comm_id = comm_id
        self._rank = rank
        self._size = size
        self._seq: Dict[str, int] = {}
        self._seq_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @classmethod
    def connect(
        cls, host: str, port: int, rank: int, size: int, *, timeout: float = 30.0
    ) -> "SocketComm":
        """Join the world communicator via the rank-0 hub.

        Retries the TCP connect until ``timeout`` — worker processes race the
        rank-0 process's hub startup, so the first connects may be refused.
        """
        deadline = threading.Event()
        waited = 0.0
        sock: Optional[socket.socket] = None
        while True:
            try:
                sock = socket.create_connection((host, port), timeout=5.0)
                break
            except OSError:
                if waited >= timeout:
                    raise CommError(
                        f"could not reach rendezvous hub at {host}:{port} after {timeout}s"
                    ) from None
                deadline.wait(0.05)
                waited += 0.05
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        _send_frame(sock, ("hello", int(rank)))
        conn = _Conn(sock, int(rank))
        return cls(conn, WORLD_COMM_ID, int(rank), int(size))

    # ------------------------------------------------------------------ #
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    def _next_seq(self, kind: str) -> int:
        with self._seq_lock:
            seq = self._seq.get(kind, 0)
            self._seq[kind] = seq + 1
            return seq

    def _post(self, kind: str, *, op: str = "", root: int = 0, value: Any = None) -> _Pending:
        """Register the pending slot, then send the contribution."""
        seq = self._next_seq(kind)
        pending = self._conn._pending_for((self._comm_id, kind, seq))
        self._conn.send(("coll", self._comm_id, kind, seq, op, root, self._rank, value))
        return pending

    def _post_fire_and_forget(self, kind: str, *, op: str, root: int, value: Any) -> None:
        seq = self._next_seq(kind)
        self._conn.send(("coll", self._comm_id, kind, seq, op, root, self._rank, value))

    # ------------------------------------------------------------------ #
    def barrier(self) -> None:
        self.ibarrier().wait()

    def ibarrier(self) -> Request:
        pending = self._post("barrier")
        return _EventRequest(self._conn, pending)

    def reduce(self, value: Any, op: str = "sum", root: int = 0) -> Optional[Any]:
        return self.ireduce(value, op=op, root=root).wait()

    def ireduce(self, value: Any, op: str = "sum", root: int = 0) -> Request:
        if self._rank == root:
            pending = self._post("reduce", op=op, root=root, value=value)
            return _EventRequest(self._conn, pending)
        # Non-root contributions complete immediately, like ThreadedComm:
        # the epoch loop keeps sampling while the wire does its work.
        self._post_fire_and_forget("reduce", op=op, root=root, value=value)
        return PolledRequest(lambda: True)

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        pending = self._post("allreduce", op=op, value=value)
        return _EventRequest(self._conn, pending).wait()

    def bcast(self, value: Any = None, root: int = 0) -> Any:
        return self.ibcast(value, root=root).wait()

    def ibcast(self, value: Any = None, root: int = 0) -> Request:
        if self._rank == root:
            self._post_fire_and_forget("bcast", op="bcast", root=root, value=value)
            return PolledRequest(lambda: True, lambda: value)
        pending = self._post("bcast", op="bcast", root=root)
        return _EventRequest(self._conn, pending)

    def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        pending = self._post("gather", op="gather", root=root, value=value)
        return _EventRequest(self._conn, pending).wait()

    def split(self, color: Any, key: int = 0) -> "SocketComm":
        pending = self._post("split", op="split", value=(color, int(key)))
        new_id, new_rank, new_size = _EventRequest(self._conn, pending).wait()
        return SocketComm(self._conn, new_id, new_rank, new_size)

    # ------------------------------------------------------------------ #
    def communication_bytes(self) -> int:
        """Actual framed bytes sent + received by this process."""
        return self._conn.bytes_total

    def close(self) -> None:
        """Orderly goodbye; after this no collective may be issued."""
        self._conn.close()

    def __repr__(self) -> str:
        return f"SocketComm(rank={self._rank}, size={self._size}, comm_id={self._comm_id})"


# --------------------------------------------------------------------------- #
# in-process harness (tests / conformance suite)


def run_socket(
    num_ranks: int,
    target: Callable[[SocketComm, int], Any],
    *,
    timeout: Optional[float] = None,
) -> List[Any]:
    """Run ``target(comm, rank)`` on ``num_ranks`` ranks over real sockets.

    Mirrors :func:`repro.mpi.threaded.run_threaded`: ranks are threads of the
    calling process, but every collective crosses the loopback TCP stack
    through a real :class:`SocketHub`.  Re-raises the first rank exception.
    """
    hub = SocketHub(num_ranks).start()
    results: List[Any] = [None] * num_ranks
    errors: List[Optional[BaseException]] = [None] * num_ranks

    def body(rank: int) -> None:
        comm = None
        try:
            comm = SocketComm.connect(hub.host, hub.port, rank, num_ranks)
            results[rank] = target(comm, rank)
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            errors[rank] = exc
        finally:
            if comm is not None:
                comm.close()

    threads = [
        threading.Thread(target=body, args=(r,), name=f"sock-rank-{r}", daemon=True)
        for r in range(num_ranks)
    ]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout)
            if t.is_alive():
                raise TimeoutError(f"socket rank {t.name} did not finish within {timeout}s")
    finally:
        hub.close()
    for exc in errors:
        if exc is not None:
            raise exc
    return results
