"""Local process launcher: spawn N workers, monitor, resume after a crash.

``repro.cli dist run`` lands here.  The launcher:

1. partitions the graph up front (idempotent; also computes the diameter
   bound once, so no worker pays for it and no two workers race the shard
   writes);
2. spawns ``processes`` real OS processes, each running
   ``python -m repro.cli dist worker --rank R ...`` against the rank-0 hub
   on a pre-picked free port;
3. monitors them: if any worker dies (crash, OOM, SIGKILL), the remaining
   workers are torn down and — when a checkpoint exists and restarts
   remain — the whole world is respawned with ``--resume``, continuing from
   the last persisted epoch boundary with zero lost aggregated samples;
4. returns rank 0's merged result JSON, annotated with the restart count.

Fault-injection (``fault_rank``) exports :data:`~repro.dist.driver.FAULT_RANK_ENV`
to exactly one worker of the *first* generation; respawned generations never
inherit it, mirroring a real transient fault.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.dist.driver import FAULT_RANK_ENV, DistWorkerConfig
from repro.store.partition import partition_rcsr

__all__ = ["LaunchError", "pick_free_port", "launch_local"]

_POLL_SECONDS = 0.05


class LaunchError(RuntimeError):
    """The distributed run could not be completed (even after restarts)."""


def pick_free_port(host: str = "127.0.0.1") -> int:
    """An ephemeral TCP port that was free at probe time."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


def _spawn(config: DistWorkerConfig, *, fault: bool) -> subprocess.Popen:
    env = dict(os.environ)
    env.pop(FAULT_RANK_ENV, None)
    if fault:
        env[FAULT_RANK_ENV] = str(config.rank)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not existing else f"{src_root}{os.pathsep}{existing}"
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *config.to_argv()],
        env=env,
    )


def _kill_all(procs: List[subprocess.Popen]) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - SIGKILL pending
            pass


def launch_local(
    graph: str,
    *,
    processes: int,
    parts: Optional[int] = None,
    algorithm: str = "epoch",
    threads: int = 1,
    eps: float = 0.05,
    delta: float = 0.1,
    seed: Optional[int] = 0,
    samples_per_check: int = 1000,
    calibration_samples: Optional[int] = None,
    max_samples: Optional[int] = None,
    max_epochs: Optional[int] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: int = 1,
    max_restarts: int = 2,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    result_path: Optional[str] = None,
    timeout: float = 600.0,
    fault_rank: Optional[int] = None,
) -> Dict:
    """Run a distributed estimation with ``processes`` local worker processes.

    Returns rank 0's merged result dict plus ``{"restarts": k}``.  ``graph``
    must be a ``.rcsr`` path (callers resolve catalog names first); with
    ``parts`` the shards are built here before any worker starts.
    """
    if processes <= 0:
        raise LaunchError("processes must be positive")
    graph_path = Path(graph)
    if not graph_path.exists():
        raise LaunchError(f"graph container not found: {graph_path}")
    if parts:
        partition_rcsr(graph_path, parts)

    if result_path is None:
        result_path = str(graph_path.with_name(f"{graph_path.stem}.dist-result.json"))
    result_file = Path(result_path)
    if result_file.exists():
        result_file.unlink()

    restarts = 0
    resume = False
    deadline = time.monotonic() + timeout
    while True:
        world_port = port if port is not None else pick_free_port(host)
        configs = [
            DistWorkerConfig(
                graph=str(graph_path),
                rank=rank,
                size=processes,
                port=world_port,
                host=host,
                parts=parts,
                algorithm=algorithm,
                threads=threads,
                eps=eps,
                delta=delta,
                seed=seed,
                samples_per_check=samples_per_check,
                calibration_samples=calibration_samples,
                max_samples=max_samples,
                max_epochs=max_epochs,
                checkpoint=checkpoint,
                checkpoint_every=checkpoint_every,
                resume=resume,
                result_path=result_path if rank == 0 else None,
                timeout=min(timeout, 120.0),
            )
            for rank in range(processes)
        ]
        procs = [
            _spawn(config, fault=(fault_rank == config.rank and restarts == 0))
            for config in configs
        ]

        failed_rank: Optional[int] = None
        while True:
            codes = [proc.poll() for proc in procs]
            if any(code not in (None, 0) for code in codes):
                failed_rank = next(i for i, code in enumerate(codes) if code not in (None, 0))
                break
            if all(code == 0 for code in codes):
                break
            if time.monotonic() > deadline:
                _kill_all(procs)
                raise LaunchError(f"distributed run exceeded {timeout}s")
            time.sleep(_POLL_SECONDS)

        if failed_rank is None:
            if not result_file.exists():
                raise LaunchError("workers exited cleanly but produced no result")
            result = json.loads(result_file.read_text())
            result["restarts"] = restarts
            return result

        _kill_all(procs)
        can_resume = checkpoint is not None and Path(checkpoint).exists()
        if restarts >= max_restarts:
            raise LaunchError(
                f"rank {failed_rank} died (exit {procs[failed_rank].poll()}) "
                f"and the restart budget ({max_restarts}) is exhausted"
            )
        restarts += 1
        resume = can_resume
