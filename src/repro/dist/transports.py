"""Transport registry: which communicator implementations can run here.

The kernels registry answers "which sampling backends does this machine
support"; this module answers the same question for the distributed
transport.  ``repro.cli --list-backends`` prints both tables side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

__all__ = ["TransportSpec", "list_transports", "format_transport_table"]


@dataclass(frozen=True)
class TransportSpec:
    """Capability card of one transport."""

    name: str
    description: str
    probe: Callable[[], Tuple[bool, str]]
    multiprocess: bool
    multihost: bool


def _probe_always(detail: str) -> Callable[[], Tuple[bool, str]]:
    return lambda: (True, detail)


def _registry() -> List[TransportSpec]:
    from repro.dist.mpi4py_adapter import probe_mpi4py

    return [
        TransportSpec(
            name="threaded",
            description="In-process simulation (ranks as threads); tests and single-host runs",
            probe=_probe_always("stdlib threading"),
            multiprocess=False,
            multihost=False,
        ),
        TransportSpec(
            name="socket",
            description="TCP sockets with rank-0 rendezvous hub; real processes and hosts",
            probe=_probe_always("stdlib sockets"),
            multiprocess=True,
            multihost=True,
        ),
        TransportSpec(
            name="mpi4py",
            description="MPI via mpi4py under mpirun/srun; cluster deployments",
            probe=probe_mpi4py,
            multiprocess=True,
            multihost=True,
        ),
    ]


def list_transports() -> List[TransportSpec]:
    """All known transports in display order."""
    return _registry()


def format_transport_table() -> str:
    """A plain-text availability table, like ``format_backend_table``."""
    headers = ("transport", "available", "processes", "hosts", "description")
    rows = []
    for spec in list_transports():
        available, detail = spec.probe()
        rows.append(
            (
                spec.name,
                f"yes ({detail})" if available else f"no ({detail})",
                "yes" if spec.multiprocess else "no",
                "yes" if spec.multihost else "no",
                spec.description,
            )
        )
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i]) for i in range(len(headers))]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
    return "\n".join(lines)
