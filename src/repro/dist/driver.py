"""Per-worker driver of the distributed runtime.

One OS process per rank.  Rank 0's process hosts the rendezvous hub (unless
``connect`` points at a remote hub), every rank joins the world communicator
over TCP, and the run mirrors :class:`repro.parallel.driver._DistributedKadabra`'s
phase structure exactly — diameter broadcast, calibration reduce +
``calibrate_deltas``, then Algorithm 1 or the epoch-based Algorithm 2 through
the *unchanged* :mod:`repro.parallel` framework.  What this module adds on
top of the threaded simulation:

* **Sharded adjacency** — with ``parts`` set, each rank opens a
  :class:`~repro.store.partition.PartitionedGraphView` of only its shard
  (``rank % parts``); the manifest's precomputed diameter bound makes the
  sequential diameter phase a no-op.
* **Epoch checkpoints** — rank 0 snapshots the live aggregate at epoch
  boundaries through the ``on_aggregate`` hook into a ``.snap`` container,
  so a SIGKILLed run resumes from the last completed epoch with zero lost
  aggregated samples (see :func:`repro.dist.launcher.launch_local`).
* **Merged observability** — every rank ships its metrics-registry snapshot
  to rank 0 with the final ``gather``; rank 0 merges them so one
  ``/metrics`` exposition covers the whole world.

The fault-injection arm (``REPRO_DIST_FAULT_RANK``) SIGKILLs this process
shortly after the first checkpoint exists — used by tests and CI to prove
crash recovery with real processes, never set in normal operation.
"""

from __future__ import annotations

import json
import math
import os
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.calibration import calibrate_deltas, calibration_sample_count
from repro.core.kadabra import make_sampler
from repro.core.options import KadabraOptions
from repro.core.state_frame import StateFrame
from repro.core.stopping import StoppingCondition, compute_omega
from repro.diameter import vertex_diameter_upper_bound
from repro.dist.socketcomm import SocketComm, SocketHub
from repro.kernels import plan_batches
from repro.mpi.interface import Communicator
from repro.obs.metrics import get_registry, metrics_enabled
from repro.parallel.algorithm1 import adaptive_sampling_algorithm1
from repro.parallel.algorithm2 import adaptive_sampling_algorithm2
from repro.parallel.epoch_length import thread_zero_samples_per_epoch
from repro.sampling.rng import derive_seed, rng_for_rank_thread
from repro.session.snapshot import read_snapshot, require_keys, write_snapshot
from repro.store.format import open_rcsr, read_header
from repro.store.partition import PartitionManifest, PartitionedGraphView, manifest_path_for

__all__ = ["DistWorkerConfig", "run_worker", "FAULT_RANK_ENV", "CHECKPOINT_KIND"]

FAULT_RANK_ENV = "REPRO_DIST_FAULT_RANK"
CHECKPOINT_KIND = "dist-epoch"

#: Salt tag separating post-resume RNG streams from the original run's.
_RESUME_SEED_TAG = 7701


@dataclass
class DistWorkerConfig:
    """Everything one worker process needs; mirrored by ``dist worker`` flags."""

    graph: str
    rank: int
    size: int
    port: int
    host: str = "127.0.0.1"
    connect: Optional[str] = None  # "host:port" of a remote hub
    parts: Optional[int] = None
    algorithm: str = "epoch"  # or "mpi-only"
    threads: int = 1
    eps: float = 0.05
    delta: float = 0.1
    seed: Optional[int] = 0
    samples_per_check: int = 1000
    calibration_samples: Optional[int] = None
    max_samples: Optional[int] = None
    max_epochs: Optional[int] = None
    checkpoint: Optional[str] = None
    checkpoint_every: int = 1
    resume: bool = False
    result_path: Optional[str] = None
    timeout: float = 60.0

    def hub_address(self) -> tuple:
        if self.connect:
            host, _, port = self.connect.rpartition(":")
            return host, int(port)
        return self.host, int(self.port)

    def to_argv(self) -> List[str]:
        """The ``repro.cli dist worker`` argument vector for this config."""
        argv = [
            "dist",
            "worker",
            "--graph",
            self.graph,
            "--rank",
            str(self.rank),
            "--size",
            str(self.size),
            "--host",
            self.host,
            "--port",
            str(self.port),
            "--algorithm",
            self.algorithm,
            "--threads",
            str(self.threads),
            "--eps",
            str(self.eps),
            "--delta",
            str(self.delta),
            "--samples-per-check",
            str(self.samples_per_check),
            "--checkpoint-every",
            str(self.checkpoint_every),
            "--timeout",
            str(self.timeout),
        ]
        if self.connect:
            argv += ["--connect", self.connect]
        if self.parts is not None:
            argv += ["--parts", str(self.parts)]
        if self.seed is not None:
            argv += ["--seed", str(self.seed)]
        if self.calibration_samples is not None:
            argv += ["--calibration-samples", str(self.calibration_samples)]
        if self.max_samples is not None:
            argv += ["--max-samples", str(self.max_samples)]
        if self.max_epochs is not None:
            argv += ["--max-epochs", str(self.max_epochs)]
        if self.checkpoint:
            argv += ["--checkpoint", self.checkpoint]
        if self.resume:
            argv += ["--resume"]
        if self.result_path:
            argv += ["--output", self.result_path]
        return argv


# --------------------------------------------------------------------------- #
# fault injection (tests / CI only)


def _arm_fault_injection(config: DistWorkerConfig) -> None:
    """SIGKILL this process shortly after the first checkpoint appears.

    Waiting for the checkpoint file guarantees the kill lands *after* at
    least one epoch boundary was persisted — the scenario the resume path
    must survive — rather than during startup where a restart would simply
    rerun from scratch.
    """
    if os.environ.get(FAULT_RANK_ENV) != str(config.rank) or not config.checkpoint:
        return
    target = Path(config.checkpoint)

    def watch() -> None:
        while not target.exists():
            time.sleep(0.005)
        time.sleep(0.02)  # let the run proceed into the next epoch
        os.kill(os.getpid(), signal.SIGKILL)

    threading.Thread(target=watch, name="fault-arm", daemon=True).start()


# --------------------------------------------------------------------------- #
# checkpointing


def _write_checkpoint(
    path: str,
    *,
    epoch: int,
    aggregated: StateFrame,
    config: DistWorkerConfig,
    omega: int,
    vd: int,
    delta_l: np.ndarray,
    delta_u: np.ndarray,
    graph_checksum: str,
) -> None:
    meta = {
        "kind": CHECKPOINT_KIND,
        "epoch": int(epoch),
        "num_samples": int(aggregated.num_samples),
        "eps": float(config.eps),
        "delta": float(config.delta),
        "seed": config.seed,
        "omega": int(omega),
        "vertex_diameter": int(vd),
        "size": int(config.size),
        "parts": config.parts,
        "algorithm": config.algorithm,
        "frame": {k: int(v) for k, v in aggregated.scalar_state().items()},
        "graph_checksum": graph_checksum,
    }
    arrays = {
        "counts": aggregated.counts.copy(),
        "delta_l": np.asarray(delta_l, dtype=np.float64),
        "delta_u": np.asarray(delta_u, dtype=np.float64),
    }
    write_snapshot(Path(path), meta, arrays)


def _load_checkpoint(path: str, *, graph_checksum: str, config: DistWorkerConfig):
    meta, arrays = read_snapshot(Path(path))
    require_keys(
        meta,
        ["kind", "epoch", "num_samples", "eps", "delta", "omega", "vertex_diameter", "frame", "graph_checksum"],
        Path(path),
    )
    if meta["kind"] != CHECKPOINT_KIND:
        raise ValueError(f"{path}: not a distributed epoch checkpoint ({meta['kind']!r})")
    if meta["graph_checksum"] != graph_checksum:
        raise ValueError(
            f"{path}: checkpoint belongs to a different graph "
            f"({meta['graph_checksum']} != {graph_checksum})"
        )
    if float(meta["eps"]) != float(config.eps) or float(meta["delta"]) != float(config.delta):
        raise ValueError(f"{path}: checkpoint (eps, delta) differ from this run's")
    frame = StateFrame.from_scalar_state(meta["frame"], arrays["counts"])
    return meta, frame, arrays["delta_l"], arrays["delta_u"]


# --------------------------------------------------------------------------- #
# the worker body


def _open_graph(config: DistWorkerConfig):
    """Returns (graph-shaped object, graph content checksum, vd override)."""
    path = Path(config.graph)
    if config.parts:
        manifest = PartitionManifest.load(manifest_path_for(path, config.parts))
        view = PartitionedGraphView(manifest, config.rank % config.parts)
        return view, manifest.source_checksum, manifest.vertex_diameter
    header = read_header(path)
    checksum = f"crc32:{header.crc_indptr:08x}{header.crc_indices:08x}"
    return open_rcsr(path), checksum, None


def run_worker(config: DistWorkerConfig) -> int:
    """Run one rank of a distributed estimation; returns a process exit code.

    Rank 0 (without ``connect``) hosts the hub, writes checkpoints, and emits
    the merged result JSON to ``config.result_path``.
    """
    _arm_fault_injection(config)
    hub: Optional[SocketHub] = None
    if config.rank == 0 and config.connect is None:
        hub = SocketHub(config.size, host=config.host, port=config.port).start()
    host, port = config.hub_address()
    comm = SocketComm.connect(host, port, config.rank, config.size, timeout=config.timeout)
    try:
        result = _worker_body(comm, config)
        if comm.is_root and result is not None and config.result_path:
            out = Path(config.result_path)
            out.parent.mkdir(parents=True, exist_ok=True)
            tmp = out.with_name(out.name + ".tmp")
            tmp.write_text(json.dumps(result, indent=2))
            os.replace(tmp, out)
        return 0
    finally:
        comm.close()
        if hub is not None:
            # Drain: the hub closes itself once every rank (including this
            # one, whose bye was just sent) departed; force-close as backstop.
            hub.wait_closed(timeout=10.0)
            hub.close()


def _worker_body(comm: Communicator, config: DistWorkerConfig) -> Optional[Dict[str, Any]]:
    graph, graph_checksum, vd_hint = _open_graph(config)
    num_threads = max(int(config.threads), 1)
    options = KadabraOptions(
        eps=config.eps,
        delta=config.delta,
        seed=config.seed,
        samples_per_check=config.samples_per_check,
        calibration_samples=config.calibration_samples,
        max_samples_override=config.max_samples,
        vertex_diameter_override=vd_hint,
    )
    rank = comm.rank

    resume_meta = None
    if config.resume and config.checkpoint and comm.is_root:
        if Path(config.checkpoint).exists():
            resume_meta = _load_checkpoint(
                config.checkpoint, graph_checksum=graph_checksum, config=config
            )
    resuming = comm.bcast(resume_meta is not None, root=0)

    calibration_frame: Optional[StateFrame] = None
    initial_frame: Optional[StateFrame] = None
    base_epoch = 0
    resumed_from_samples = 0

    if resuming:
        # ---------------- Resume: skip diameter + calibration ------------- #
        if comm.is_root:
            meta, frame, delta_l, delta_u = resume_meta
            payload = (
                int(meta["vertex_diameter"]),
                int(meta["omega"]),
                delta_l,
                delta_u,
                int(meta["epoch"]),
                int(meta["num_samples"]),
            )
        else:
            payload = None
        vd, omega, delta_l, delta_u, base_epoch, resumed_from_samples = comm.bcast(payload, root=0)
        if comm.is_root:
            initial_frame = resume_meta[1]
        # Fresh, independent streams: never replay the pre-crash samples.
        rng_seed = derive_seed(config.seed, _RESUME_SEED_TAG, base_epoch)
    else:
        # ---------------- Phase 1: diameter ------------------------------- #
        if comm.is_root:
            if options.vertex_diameter_override is not None:
                vd = int(options.vertex_diameter_override)
            else:
                vd = max(vertex_diameter_upper_bound(graph, seed=options.seed), 2)
        else:
            vd = None
        vd = int(comm.bcast(vd, root=0))
        omega = compute_omega(options.eps, options.delta, vd)
        if options.max_samples_override is not None:
            omega = min(omega, int(options.max_samples_override))

        # ---------------- Phase 2: calibration ---------------------------- #
        total_calibration = calibration_sample_count(
            options.calibration_samples, omega, graph.num_vertices
        )
        per_rank = int(math.ceil(total_calibration / comm.size))
        sampler = make_sampler(graph, options)
        rng = rng_for_rank_thread(options.seed, rank, 0, num_threads=num_threads + 1)
        local_frame = StateFrame.zeros(graph.num_vertices)
        for take in plan_batches(per_rank, "auto"):
            local_frame.record_batch(sampler.sample_batch(take, rng))
        calibration_frame = comm.reduce(local_frame, op="sum", root=0)
        if comm.is_root:
            calibration = calibrate_deltas(calibration_frame, options.delta, eps=options.eps)
            payload = (calibration.delta_l, calibration.delta_u)
        else:
            payload = None
        delta_l, delta_u = comm.bcast(payload, root=0)
        initial_frame = calibration_frame if comm.is_root else None
        rng_seed = options.seed

    condition = StoppingCondition(eps=options.eps, omega=omega, delta_l=delta_l, delta_u=delta_u)

    # ---------------- Checkpoint hook (rank 0 only) ----------------------- #
    on_aggregate = None
    if config.checkpoint and comm.is_root:
        checkpoint_every = max(int(config.checkpoint_every), 1)

        def on_aggregate(epochs_done: int, aggregated: StateFrame) -> None:
            if epochs_done % checkpoint_every == 0:
                _write_checkpoint(
                    config.checkpoint,
                    epoch=base_epoch + epochs_done,
                    aggregated=aggregated,
                    config=config,
                    omega=omega,
                    vd=vd,
                    delta_l=delta_l,
                    delta_u=delta_u,
                    graph_checksum=graph_checksum,
                )

    # ---------------- Phase 3: adaptive sampling -------------------------- #
    samples_per_epoch = thread_zero_samples_per_epoch(
        comm.size,
        num_threads if config.algorithm == "epoch" else 1,
        base=float(options.samples_per_check),
        exponent=options.epoch_exponent,
    )
    adaptive_start = time.perf_counter()
    if config.algorithm == "mpi-only":
        stats = adaptive_sampling_algorithm1(
            comm,
            make_sampler(graph, options),
            condition,
            rng_for_rank_thread(rng_seed, rank, 1, num_threads=num_threads + 1),
            samples_per_epoch=samples_per_epoch,
            initial_frame=initial_frame,
            max_epochs=config.max_epochs,
            on_aggregate=on_aggregate,
            batch_size="auto",
        )
    else:
        rngs = [
            rng_for_rank_thread(rng_seed, rank, t + 1, num_threads=num_threads + 1)
            for t in range(num_threads)
        ]
        stats = adaptive_sampling_algorithm2(
            comm,
            lambda _thread: make_sampler(graph, options),
            condition,
            rngs,
            num_threads=num_threads,
            samples_per_epoch=samples_per_epoch,
            initial_frame=initial_frame,
            max_epochs=config.max_epochs,
            on_aggregate=on_aggregate,
            batch_size="auto",
        )
    adaptive_seconds = time.perf_counter() - adaptive_start
    aggregated = stats.aggregated_frame

    # ---------------- Merge per-rank stats + metrics at rank 0 ------------ #
    loaded = graph.loaded_parts() if isinstance(graph, PartitionedGraphView) else None
    eager = graph.eager_parts() if isinstance(graph, PartitionedGraphView) else None
    rank_report = {
        "rank": rank,
        "local_samples": int(stats.local_samples),
        "communication_bytes": int(comm.communication_bytes()),
        "adaptive_seconds": float(adaptive_seconds),
        "eager_parts": list(eager) if eager is not None else None,
        "loaded_parts": list(loaded) if loaded is not None else None,
        "metrics": get_registry().snapshot() if metrics_enabled() else None,
    }
    reports = comm.gather(rank_report, root=0)
    if not comm.is_root:
        return None

    assert aggregated is not None and reports is not None
    if metrics_enabled():
        registry = get_registry()
        for report in reports:
            if report["rank"] != 0 and report["metrics"]:
                registry.merge(report["metrics"])
    per_rank = [
        {k: v for k, v in report.items() if k != "metrics"} for report in reports
    ]
    total_adaptive_samples = sum(r["local_samples"] for r in per_rank)
    slowest = max(r["adaptive_seconds"] for r in per_rank)
    return {
        "scores": [float(x) for x in aggregated.betweenness_estimates()],
        "num_samples": int(aggregated.num_samples),
        "num_epochs": int(stats.num_epochs),
        "eps": float(options.eps),
        "delta": float(options.delta),
        "omega": int(omega),
        "vertex_diameter": int(vd),
        "algorithm": config.algorithm,
        "num_processes": int(comm.size),
        "threads_per_process": int(num_threads),
        "parts": config.parts,
        "samples_per_epoch_n0": float(samples_per_epoch),
        "resumed_from_samples": int(resumed_from_samples),
        "resumed_from_epoch": int(base_epoch),
        "communication_bytes": int(sum(r["communication_bytes"] for r in per_rank)),
        "aggregate_samples_per_sec": (total_adaptive_samples / slowest) if slowest > 0 else 0.0,
        "per_rank": per_rank,
    }
