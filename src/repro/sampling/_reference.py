"""Reference (pre-kernel) scalar samplers, kept verbatim for verification.

These are the original allocating implementations the pooled kernels in
:mod:`repro.kernels` replaced: every call allocates fresh O(n)
``distances``/``sigma`` arrays and walks adjacency rows with per-vertex
Python slicing.  They are intentionally *not* exported from
:mod:`repro.sampling`; they exist so that

* the batch/scalar equivalence property tests can check the kernels against
  an independent implementation (same RNG stream, same sampled paths), and
* ``benchmarks/bench_kernels.py`` can measure the kernel speedup against the
  true legacy cost rather than against a shim that is itself kernel-backed.

Do not use these in drivers; they are an order of magnitude slower.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.base import PathSample

__all__ = ["ReferenceBidirectionalSampler", "ReferenceUnidirectionalSampler"]


class _SearchSide:
    """State of one directional search (level-synchronous sigma-BFS)."""

    __slots__ = ("distances", "sigma", "frontier", "level", "frontier_degree")

    def __init__(self, n: int, root: int, root_degree: int) -> None:
        self.distances = np.full(n, -1, dtype=np.int64)
        self.sigma = np.zeros(n, dtype=np.float64)
        self.distances[root] = 0
        self.sigma[root] = 1.0
        self.frontier = np.array([root], dtype=np.int64)
        self.level = 0
        self.frontier_degree = int(root_degree)


class ReferenceBidirectionalSampler:
    """The original balanced bidirectional BFS sampler (allocating)."""

    def __init__(self, graph: CSRGraph) -> None:
        if graph.num_vertices < 2:
            raise ValueError("PathSampler requires a graph with at least 2 vertices")
        self._graph = graph

    def sample_path(self, source: int, target: int, rng: np.random.Generator) -> PathSample:
        graph = self._graph
        n = graph.num_vertices
        if not (0 <= source < n) or not (0 <= target < n):
            raise ValueError("source/target out of range")
        if source == target:
            raise ValueError("source and target must be distinct")
        indptr = graph.indptr
        indices = graph.indices

        fwd = _SearchSide(n, source, graph.degree(source))
        bwd = _SearchSide(n, target, graph.degree(target))
        edges_touched = 0
        best_length: Optional[int] = None

        # Special case: adjacent endpoints.
        if graph.has_edge(source, target):
            edges_touched += graph.degree(source)
            return PathSample(
                source=source,
                target=target,
                connected=True,
                length=1,
                internal_vertices=np.empty(0, dtype=np.int64),
                edges_touched=edges_touched,
            )

        while True:
            if best_length is not None and best_length <= fwd.level + bwd.level + 1:
                break
            if fwd.frontier.size == 0 or bwd.frontier.size == 0:
                break
            side, other = (fwd, bwd) if fwd.frontier_degree <= bwd.frontier_degree else (bwd, fwd)
            new_level = side.level + 1
            starts = indptr[side.frontier]
            stops = indptr[side.frontier + 1]
            degs = stops - starts
            total = int(np.sum(degs))
            edges_touched += total
            if total == 0:
                side.frontier = np.empty(0, dtype=np.int64)
                continue
            neighbors = np.concatenate(
                [indices[s:e] for s, e in zip(starts, stops)]
            ).astype(np.int64, copy=False)
            origins = np.repeat(side.frontier, degs)
            fresh_mask = side.distances[neighbors] == -1
            fresh = np.unique(neighbors[fresh_mask])
            if fresh.size > 0:
                side.distances[fresh] = new_level
            onlevel = side.distances[neighbors] == new_level
            if np.any(onlevel):
                np.add.at(side.sigma, neighbors[onlevel], side.sigma[origins[onlevel]])
            side.frontier = fresh
            side.level = new_level
            side.frontier_degree = int(np.sum(indptr[fresh + 1] - indptr[fresh])) if fresh.size else 0

            if fresh.size == 0:
                continue
            other_dist = other.distances[fresh]
            met = other_dist >= 0
            if np.any(met):
                candidate = int(np.min(new_level + other_dist[met]))
                if best_length is None or candidate < best_length:
                    best_length = candidate
            fresh_starts = indptr[fresh]
            fresh_stops = indptr[fresh + 1]
            fresh_neighbors = np.concatenate(
                [indices[s:e] for s, e in zip(fresh_starts, fresh_stops)]
            ).astype(np.int64, copy=False)
            edges_touched += int(fresh_neighbors.size)
            reachable = other.distances[fresh_neighbors]
            crossing = reachable >= 0
            if np.any(crossing):
                candidate = int(np.min(new_level + 1 + reachable[crossing]))
                if best_length is None or candidate < best_length:
                    best_length = candidate

        if best_length is None:
            return PathSample(
                source=source,
                target=target,
                connected=False,
                edges_touched=edges_touched,
            )

        length = int(best_length)
        cut_vertex, cut_edge = self._choose_cut(graph, fwd, bwd, length, rng)
        internal: List[int] = []
        if cut_vertex is not None:
            prefix = self._walk_to_root(graph, fwd, cut_vertex, rng)
            suffix = self._walk_to_root(graph, bwd, cut_vertex, rng)
            internal = prefix[::-1] + ([cut_vertex] if cut_vertex not in (source, target) else []) + suffix
        else:
            u, v = cut_edge  # type: ignore[misc]
            prefix = self._walk_to_root(graph, fwd, u, rng)
            suffix = self._walk_to_root(graph, bwd, v, rng)
            internal = prefix[::-1]
            if u not in (source, target):
                internal.append(u)
            if v not in (source, target):
                internal.append(v)
            internal.extend(suffix)

        internal_arr = np.asarray([x for x in internal if x not in (source, target)], dtype=np.int64)
        return PathSample(
            source=source,
            target=target,
            connected=True,
            length=length,
            internal_vertices=internal_arr,
            edges_touched=edges_touched,
        )

    # ------------------------------------------------------------------ #
    def _choose_cut(
        self,
        graph: CSRGraph,
        fwd: "_SearchSide",
        bwd: "_SearchSide",
        length: int,
        rng: np.random.Generator,
    ) -> Tuple[Optional[int], Optional[Tuple[int, int]]]:
        level_s, level_t = fwd.level, bwd.level
        if length <= level_s + level_t:
            k = min(level_s, length)
            if length - k > level_t:
                k = length - level_t
            candidates = np.flatnonzero(
                (fwd.distances == k) & (bwd.distances == length - k)
            )
            weights = fwd.sigma[candidates] * bwd.sigma[candidates]
            total = float(weights.sum())
            if candidates.size == 0 or total <= 0.0:  # pragma: no cover - defensive
                raise RuntimeError("bidirectional search found no cut vertices")
            choice = int(rng.choice(candidates, p=weights / total))
            return choice, None
        us = np.flatnonzero(fwd.distances == level_s)
        cut_edges: List[Tuple[int, int]] = []
        cut_weights: List[float] = []
        for u in us:
            nbrs = graph.neighbors(int(u)).astype(np.int64, copy=False)
            vs = nbrs[bwd.distances[nbrs] == level_t]
            for v in vs:
                cut_edges.append((int(u), int(v)))
                cut_weights.append(float(fwd.sigma[u] * bwd.sigma[v]))
        if not cut_edges:  # pragma: no cover - defensive
            raise RuntimeError("bidirectional search found no cut edges")
        weights_arr = np.asarray(cut_weights, dtype=np.float64)
        pick = int(rng.choice(len(cut_edges), p=weights_arr / weights_arr.sum()))
        return None, cut_edges[pick]

    @staticmethod
    def _walk_to_root(
        graph: CSRGraph, side: "_SearchSide", start: int, rng: np.random.Generator
    ) -> List[int]:
        path: List[int] = []
        current = int(start)
        while side.distances[current] > 1:
            nbrs = graph.neighbors(current).astype(np.int64, copy=False)
            preds = nbrs[side.distances[nbrs] == side.distances[current] - 1]
            weights = side.sigma[preds]
            total = float(weights.sum())
            if preds.size == 0 or total <= 0.0:  # pragma: no cover - defensive
                raise RuntimeError("inconsistent sigma values during backtracking")
            current = int(rng.choice(preds, p=weights / total))
            path.append(current)
        return path

    def sample(self, rng: np.random.Generator) -> PathSample:
        from repro.sampling.base import sample_vertex_pair

        s, t = sample_vertex_pair(self._graph.num_vertices, rng)
        return self.sample_path(s, t, rng)


class ReferenceUnidirectionalSampler:
    """The original truncated sigma-BFS sampler (allocating)."""

    def __init__(self, graph: CSRGraph) -> None:
        if graph.num_vertices < 2:
            raise ValueError("PathSampler requires a graph with at least 2 vertices")
        self._graph = graph

    def sample_path(self, source: int, target: int, rng: np.random.Generator) -> PathSample:
        graph = self._graph
        n = graph.num_vertices
        if not (0 <= source < n) or not (0 <= target < n):
            raise ValueError("source/target out of range")
        if source == target:
            raise ValueError("source and target must be distinct")
        indptr = graph.indptr
        indices = graph.indices

        distances = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n, dtype=np.float64)
        distances[source] = 0
        sigma[source] = 1.0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        edges_touched = 0
        target_level = -1
        while frontier.size > 0:
            level += 1
            starts = indptr[frontier]
            stops = indptr[frontier + 1]
            degs = stops - starts
            total = int(np.sum(degs))
            edges_touched += total
            if total == 0:
                break
            neighbors = np.concatenate([indices[s:e] for s, e in zip(starts, stops)]).astype(
                np.int64, copy=False
            )
            origins = np.repeat(frontier, degs)
            fresh_mask = distances[neighbors] == -1
            fresh = np.unique(neighbors[fresh_mask])
            if fresh.size > 0:
                distances[fresh] = level
            onlevel = distances[neighbors] == level
            if np.any(onlevel):
                np.add.at(sigma, neighbors[onlevel], sigma[origins[onlevel]])
            if fresh.size == 0:
                break
            frontier = fresh
            if distances[target] == level:
                target_level = level
                break

        if distances[target] < 0:
            return PathSample(
                source=source,
                target=target,
                connected=False,
                edges_touched=edges_touched,
            )
        length = int(distances[target]) if target_level < 0 else target_level

        internal: List[int] = []
        current = target
        while distances[current] > 1:
            nbrs = graph.neighbors(current).astype(np.int64, copy=False)
            edges_touched += int(nbrs.size)
            preds = nbrs[distances[nbrs] == distances[current] - 1]
            weights = sigma[preds]
            total_weight = float(weights.sum())
            if total_weight <= 0.0:  # pragma: no cover - defensive
                raise RuntimeError("inconsistent sigma values during backtracking")
            pick = int(rng.choice(preds, p=weights / total_weight))
            internal.append(pick)
            current = pick
        internal.reverse()
        return PathSample(
            source=source,
            target=target,
            connected=True,
            length=length,
            internal_vertices=np.asarray(internal, dtype=np.int64),
            edges_touched=edges_touched,
        )

    def sample(self, rng: np.random.Generator) -> PathSample:
        from repro.sampling.base import sample_vertex_pair

        s, t = sample_vertex_pair(self._graph.num_vertices, rng)
        return self.sample_path(s, t, rng)
