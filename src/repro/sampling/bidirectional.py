"""Balanced bidirectional BFS shortest-path sampler (kernel-backed shim).

KADABRA's key per-sample optimisation: instead of a full BFS from the source,
two level-synchronous BFSs grow from both endpoints; the side whose frontier
has the smaller total degree is expanded next.  On complex networks the two
search trees meet after exploring a small fraction of the graph, making a
single sample orders of magnitude cheaper than a full BFS.

Uniformity of the sampled path is preserved by counting shortest paths on both
sides (``sigma_s``, ``sigma_t``) and decomposing every shortest path at a
canonical *cut*:

* if the shortest s-t distance ``L`` satisfies ``L <= level_s + level_t``, the
  cut is a vertex ``x`` at distance ``k`` from ``s`` and ``L - k`` from ``t``
  (for one fixed ``k``); the number of shortest paths through ``x`` equals
  ``sigma_s[x] * sigma_t[x]``;
* if ``L == level_s + level_t + 1``, the cut is an edge ``(u, v)`` with
  ``dist_s[u] = level_s`` and ``dist_t[v] = level_t``; the number of shortest
  paths through it equals ``sigma_s[u] * sigma_t[v]``.

Sampling the cut proportionally to these weights and then extending both ends
by sigma-weighted backward walks yields a uniformly random shortest path.

Since the batched-kernel refactor the search itself lives in
:func:`repro.kernels.bidirectional.bidirectional_sample`, which runs on a
reusable :class:`~repro.kernels.scratch.ScratchPool` instead of allocating
four O(n) arrays per sample.  This class is the scalar compatibility shim on
top of the batch kernel; it produces bit-identical samples to the original
implementation for a fixed RNG state (see ``sampling/_reference.py`` and the
equivalence tests).
"""

from __future__ import annotations

from repro.sampling.base import KernelPathSampler

__all__ = ["BidirectionalBFSSampler"]


class BidirectionalBFSSampler(KernelPathSampler):
    """Samples uniform shortest paths with a balanced bidirectional BFS."""

    _kernel_method = "bidirectional"
