"""Random-number-generator management for parallel sampling.

Every sampling thread of every (simulated) MPI rank must draw from an
independent stream; numpy's :class:`~numpy.random.SeedSequence` spawning
provides statistically independent child streams from one master seed, which
keeps runs reproducible regardless of the number of processes/threads.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["spawn_rngs", "rng_for_rank_thread", "derive_seed"]


def spawn_rngs(seed: int | None, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` independent generators from a master seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def rng_for_rank_thread(
    seed: int | None, rank: int, thread: int, *, num_threads: int
) -> np.random.Generator:
    """Deterministic per-(rank, thread) generator.

    The stream only depends on ``(seed, rank, thread)`` — not on how many
    ranks exist — so the same thread of the same rank always sees the same
    stream, which makes distributed runs reproducible and debuggable.
    """
    if rank < 0 or thread < 0:
        raise ValueError("rank and thread must be non-negative")
    if num_threads <= 0:
        raise ValueError("num_threads must be positive")
    if thread >= num_threads:
        raise ValueError("thread index out of range")
    seq = np.random.SeedSequence(seed, spawn_key=(rank, thread))
    return np.random.default_rng(seq)


def derive_seed(seed: int | None, *tags: int) -> int:
    """Derive a 63-bit integer seed from a master seed and integer tags."""
    seq = np.random.SeedSequence(seed, spawn_key=tuple(int(t) for t in tags))
    return int(seq.generate_state(1, dtype=np.uint64)[0] >> 1)
