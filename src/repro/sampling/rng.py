"""Random-number-generator management for parallel sampling.

Every sampling thread of every (simulated) MPI rank must draw from an
independent stream; numpy's :class:`~numpy.random.SeedSequence` spawning
provides statistically independent child streams from one master seed, which
keeps runs reproducible regardless of the number of processes/threads.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["spawn_rngs", "rng_for_rank_thread", "derive_seed", "draw_vertex_pairs"]

#: Rejection rounds before :func:`draw_vertex_pairs` switches to direct
#: enumeration.  With uniform candidates the probability of even one retry
#: round is 1/n per pair, so the fallback fires essentially never — it
#: exists to bound the loop on adversarial or broken generators.
MAX_REJECTION_ROUNDS = 16


def draw_vertex_pairs(
    num_vertices: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``count`` uniform ordered pairs of *distinct* vertices, batched.

    Rejection sampling with one bulk ``rng.integers`` call per round instead
    of two scalar draws per pair: a round draws ``(need, 2)`` candidates and
    keeps the rows with distinct entries, so the expected number of rounds is
    ``1 / (1 - 1/n)`` — about one for any non-trivial graph.  After
    :data:`MAX_REJECTION_ROUNDS` unlucky rounds the remainder falls back to
    direct enumeration (draw ``s`` uniformly, then ``t`` uniformly from the
    ``n - 1`` vertices that are not ``s``), which is exactly uniform over
    distinct ordered pairs and cannot spin — the loop is bounded even for
    near-degenerate graphs or adversarial generators.  Returns an
    ``(count, 2)`` int64 array.

    Note the RNG stream differs from ``count`` scalar
    :func:`~repro.sampling.base.sample_vertex_pair` calls (the distribution
    is identical); stream-compatible drivers use the interleaved strategy of
    :class:`~repro.kernels.BatchPathSampler` instead.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices to sample a pair")
    if count < 0:
        raise ValueError("count must be non-negative")
    out = np.empty((count, 2), dtype=np.int64)
    filled = 0
    rounds = 0
    while filled < count and rounds < MAX_REJECTION_ROUNDS:
        rounds += 1
        need = count - filled
        cand = rng.integers(0, num_vertices, size=(need, 2), dtype=np.int64)
        kept = cand[cand[:, 0] != cand[:, 1]]
        out[filled : filled + kept.shape[0]] = kept
        filled += kept.shape[0]
    if filled < count:
        need = count - filled
        s = rng.integers(0, num_vertices, size=need, dtype=np.int64)
        t = rng.integers(0, num_vertices - 1, size=need, dtype=np.int64)
        t += t >= s  # skip the diagonal: t is uniform over the n-1 non-s ids
        out[filled:, 0] = s
        out[filled:, 1] = t
    return out


def spawn_rngs(seed: int | None, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` independent generators from a master seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def rng_for_rank_thread(
    seed: int | None, rank: int, thread: int, *, num_threads: int
) -> np.random.Generator:
    """Deterministic per-(rank, thread) generator.

    The stream only depends on ``(seed, rank, thread)`` — not on how many
    ranks exist — so the same thread of the same rank always sees the same
    stream, which makes distributed runs reproducible and debuggable.
    """
    if rank < 0 or thread < 0:
        raise ValueError("rank and thread must be non-negative")
    if num_threads <= 0:
        raise ValueError("num_threads must be positive")
    if thread >= num_threads:
        raise ValueError("thread index out of range")
    seq = np.random.SeedSequence(seed, spawn_key=(rank, thread))
    return np.random.default_rng(seq)


def derive_seed(seed: int | None, *tags: int) -> int:
    """Derive a 63-bit integer seed from a master seed and integer tags."""
    seq = np.random.SeedSequence(seed, spawn_key=tuple(int(t) for t in tags))
    return int(seq.generate_state(1, dtype=np.uint64)[0] >> 1)
