"""Shortest-path sampling: the per-sample kernel of KADABRA."""

from repro.sampling.base import PathSample, PathSampler, sample_vertex_pair
from repro.sampling.bfs_sampler import UnidirectionalBFSSampler
from repro.sampling.bidirectional import BidirectionalBFSSampler
from repro.sampling.rng import spawn_rngs, rng_for_rank_thread, derive_seed

__all__ = [
    "PathSample",
    "PathSampler",
    "sample_vertex_pair",
    "UnidirectionalBFSSampler",
    "BidirectionalBFSSampler",
    "spawn_rngs",
    "rng_for_rank_thread",
    "derive_seed",
]
