"""Shortest-path sampling: the per-sample kernel of KADABRA.

The scalar samplers here are thin shims over the batch-oriented,
zero-allocation kernels in :mod:`repro.kernels`; drivers that want the fast
path use :meth:`PathSampler.sample_batch` (or a
:class:`~repro.kernels.BatchPathSampler` directly).
"""

from repro.sampling.base import (
    KernelPathSampler,
    PathSample,
    PathSampler,
    sample_vertex_pair,
)
from repro.sampling.bfs_sampler import UnidirectionalBFSSampler
from repro.sampling.bidirectional import BidirectionalBFSSampler
from repro.sampling.rng import (
    derive_seed,
    draw_vertex_pairs,
    rng_for_rank_thread,
    spawn_rngs,
)

__all__ = [
    "KernelPathSampler",
    "PathSample",
    "PathSampler",
    "sample_vertex_pair",
    "UnidirectionalBFSSampler",
    "BidirectionalBFSSampler",
    "spawn_rngs",
    "rng_for_rank_thread",
    "derive_seed",
    "draw_vertex_pairs",
]
