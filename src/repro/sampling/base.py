"""Common interfaces for shortest-path samplers.

KADABRA samples a pair ``(s, t)`` of distinct vertices uniformly at random and
then a *uniformly random shortest s-t path*; the betweenness estimate of a
vertex is the fraction of sampled paths that contain it as an internal vertex.
Both the unidirectional and the bidirectional sampler implement the
:class:`PathSampler` protocol so the KADABRA drivers are agnostic to which one
is used.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["PathSample", "PathSampler", "sample_vertex_pair"]


@dataclass
class PathSample:
    """Outcome of sampling one vertex pair.

    Attributes
    ----------
    source, target:
        The sampled pair.
    connected:
        Whether a path between the pair exists.
    length:
        Hop length of the shortest path (0 when not connected).
    internal_vertices:
        The vertices strictly between source and target on the sampled path
        (empty when the pair is adjacent or disconnected).  These are the
        vertices whose betweenness counter is incremented.
    edges_touched:
        Number of adjacency entries scanned while taking the sample; used by
        the cluster model to calibrate the per-sample cost.
    """

    source: int
    target: int
    connected: bool
    length: int = 0
    internal_vertices: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    edges_touched: int = 0

    @property
    def path_vertices(self) -> np.ndarray:
        """Full path including the endpoints (only when connected)."""
        if not self.connected:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            (
                np.asarray([self.source], dtype=np.int64),
                self.internal_vertices.astype(np.int64),
                np.asarray([self.target], dtype=np.int64),
            )
        )


def sample_vertex_pair(num_vertices: int, rng: np.random.Generator) -> tuple[int, int]:
    """Sample a uniformly random ordered pair of *distinct* vertices."""
    if num_vertices < 2:
        raise ValueError("need at least two vertices to sample a pair")
    s = int(rng.integers(0, num_vertices))
    t = int(rng.integers(0, num_vertices - 1))
    if t >= s:
        t += 1
    return s, t


class PathSampler(abc.ABC):
    """Uniform shortest-path sampler over a fixed graph."""

    def __init__(self, graph: CSRGraph) -> None:
        if graph.num_vertices < 2:
            raise ValueError("PathSampler requires a graph with at least 2 vertices")
        self._graph = graph

    @property
    def graph(self) -> CSRGraph:
        return self._graph

    @abc.abstractmethod
    def sample_path(self, source: int, target: int, rng: np.random.Generator) -> PathSample:
        """Sample one uniformly random shortest path between the given pair."""

    def sample(self, rng: np.random.Generator) -> PathSample:
        """Sample a uniform pair of distinct vertices and a shortest path."""
        s, t = sample_vertex_pair(self._graph.num_vertices, rng)
        return self.sample_path(s, t, rng)
