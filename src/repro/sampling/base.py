"""Common interfaces for shortest-path samplers.

KADABRA samples a pair ``(s, t)`` of distinct vertices uniformly at random and
then a *uniformly random shortest s-t path*; the betweenness estimate of a
vertex is the fraction of sampled paths that contain it as an internal vertex.
Both the unidirectional and the bidirectional sampler implement the
:class:`PathSampler` protocol so the KADABRA drivers are agnostic to which one
is used.

Since the batched-kernel refactor the protocol has two levels:

* :meth:`PathSampler.sample_path` / :meth:`PathSampler.sample` — the scalar
  interface, one :class:`PathSample` per call;
* :meth:`PathSampler.sample_batch` — draw ``k`` pairs and paths in one call,
  returning a flat-array :class:`~repro.kernels.batch.SampleBatch`.  The
  default implementation loops over :meth:`sample`, so any third-party
  sampler automatically supports the batch-oriented drivers; the built-in
  samplers override it with the pooled zero-allocation kernels.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["PathSample", "PathSampler", "KernelPathSampler", "sample_vertex_pair"]


@dataclass
class PathSample:
    """Outcome of sampling one vertex pair.

    Attributes
    ----------
    source, target:
        The sampled pair.
    connected:
        Whether a path between the pair exists.
    length:
        Hop length of the shortest path (0 when not connected).
    internal_vertices:
        The vertices strictly between source and target on the sampled path
        (empty when the pair is adjacent or disconnected).  These are the
        vertices whose betweenness counter is incremented.
    edges_touched:
        Number of adjacency entries scanned while taking the sample; used by
        the cluster model to calibrate the per-sample cost.
    """

    source: int
    target: int
    connected: bool
    length: int = 0
    internal_vertices: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    edges_touched: int = 0

    @property
    def path_vertices(self) -> np.ndarray:
        """Full path including the endpoints (only when connected)."""
        if not self.connected:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            (
                np.asarray([self.source], dtype=np.int64),
                self.internal_vertices.astype(np.int64),
                np.asarray([self.target], dtype=np.int64),
            )
        )


def sample_vertex_pair(num_vertices: int, rng: np.random.Generator) -> tuple[int, int]:
    """Sample a uniformly random ordered pair of *distinct* vertices."""
    if num_vertices < 2:
        raise ValueError("need at least two vertices to sample a pair")
    s = int(rng.integers(0, num_vertices))
    t = int(rng.integers(0, num_vertices - 1))
    if t >= s:
        t += 1
    return s, t


class PathSampler(abc.ABC):
    """Uniform shortest-path sampler over a fixed graph."""

    def __init__(self, graph: CSRGraph) -> None:
        if graph.num_vertices < 2:
            raise ValueError("PathSampler requires a graph with at least 2 vertices")
        self._graph = graph

    @property
    def graph(self) -> CSRGraph:
        return self._graph

    @abc.abstractmethod
    def sample_path(self, source: int, target: int, rng: np.random.Generator) -> PathSample:
        """Sample one uniformly random shortest path between the given pair."""

    def sample(self, rng: np.random.Generator) -> PathSample:
        """Sample a uniform pair of distinct vertices and a shortest path."""
        s, t = sample_vertex_pair(self._graph.num_vertices, rng)
        return self.sample_path(s, t, rng)

    def sample_batch(self, batch_size: int, rng: np.random.Generator):
        """Draw ``batch_size`` pairs and paths; returns a ``SampleBatch``.

        Generic fallback: loops over :meth:`sample` and packs the results.
        RNG consumption is identical to ``batch_size`` scalar calls, so
        batched and scalar driving of the same sampler yield the same stream.
        """
        from repro.kernels.batch import _BatchAccumulator

        k = int(batch_size)
        if k <= 0:
            raise ValueError("batch_size must be positive")
        sources = np.empty(k, dtype=np.int64)
        targets = np.empty(k, dtype=np.int64)
        out = _BatchAccumulator(k)
        for i in range(k):
            s = self.sample(rng)
            sources[i] = s.source
            targets[i] = s.target
            out.record(i, (s.connected, s.length, s.internal_vertices, s.edges_touched))
        return out.finish(sources, targets)


class KernelPathSampler(PathSampler):
    """Scalar :class:`PathSampler` shim over a pooled batch kernel.

    Subclasses set ``_kernel_method``; the heavy lifting happens in
    :class:`repro.kernels.BatchPathSampler`, which owns the per-worker
    :class:`~repro.kernels.ScratchPool`.
    """

    _kernel_method = "bidirectional"

    def __init__(self, graph: CSRGraph, *, kernel: str | None = None) -> None:
        super().__init__(graph)
        from repro.kernels import BatchPathSampler

        self._batch_sampler = BatchPathSampler(
            graph, method=self._kernel_method, kernel=kernel
        )

    def batch_sampler(self):
        """The pooled :class:`~repro.kernels.BatchPathSampler` backing this shim."""
        return self._batch_sampler

    @property
    def kernel_spec(self):
        """The resolved :class:`~repro.kernels.abi.KernelSpec` (routing)."""
        return self._batch_sampler.kernel_spec

    def sample_path(self, source: int, target: int, rng: np.random.Generator) -> PathSample:
        return self._batch_sampler.sample_path(source, target, rng)

    def sample_batch(self, batch_size: int, rng: np.random.Generator):
        return self._batch_sampler.sample_batch(batch_size, rng)
