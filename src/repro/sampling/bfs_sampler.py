"""Unidirectional BFS shortest-path sampler.

This is the "ordinary BFS" sampler the KADABRA paper contrasts against its
bidirectional sampler: a full forward BFS from the source with shortest-path
counting (sigma), truncated once the target's level is complete, followed by a
backward random walk that picks each predecessor with probability proportional
to its sigma value.  The resulting path is uniform among all shortest
source-target paths.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.base import PathSample, PathSampler

__all__ = ["UnidirectionalBFSSampler"]


class UnidirectionalBFSSampler(PathSampler):
    """Samples uniform shortest paths with a single truncated sigma-BFS."""

    def sample_path(self, source: int, target: int, rng: np.random.Generator) -> PathSample:
        graph = self._graph
        n = graph.num_vertices
        if not (0 <= source < n) or not (0 <= target < n):
            raise ValueError("source/target out of range")
        if source == target:
            raise ValueError("source and target must be distinct")
        indptr = graph.indptr
        indices = graph.indices

        distances = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n, dtype=np.float64)
        distances[source] = 0
        sigma[source] = 1.0
        frontier = np.array([source], dtype=np.int64)
        level = 0
        edges_touched = 0
        target_level = -1
        while frontier.size > 0:
            level += 1
            starts = indptr[frontier]
            stops = indptr[frontier + 1]
            degs = stops - starts
            total = int(np.sum(degs))
            edges_touched += total
            if total == 0:
                break
            neighbors = np.concatenate([indices[s:e] for s, e in zip(starts, stops)]).astype(
                np.int64, copy=False
            )
            origins = np.repeat(frontier, degs)
            fresh_mask = distances[neighbors] == -1
            fresh = np.unique(neighbors[fresh_mask])
            if fresh.size > 0:
                distances[fresh] = level
            onlevel = distances[neighbors] == level
            if np.any(onlevel):
                np.add.at(sigma, neighbors[onlevel], sigma[origins[onlevel]])
            if fresh.size == 0:
                break
            frontier = fresh
            if distances[target] == level:
                target_level = level
                # The sigma values of this level are complete once the level
                # has been fully processed, which is the case here.
                break

        if distances[target] < 0:
            return PathSample(
                source=source,
                target=target,
                connected=False,
                edges_touched=edges_touched,
            )
        length = int(distances[target]) if target_level < 0 else target_level

        # Backward walk from the target choosing predecessors ~ sigma.
        internal: List[int] = []
        current = target
        while distances[current] > 1:
            nbrs = graph.neighbors(current).astype(np.int64, copy=False)
            edges_touched += int(nbrs.size)
            preds = nbrs[distances[nbrs] == distances[current] - 1]
            weights = sigma[preds]
            total_weight = float(weights.sum())
            if total_weight <= 0.0:  # pragma: no cover - defensive
                raise RuntimeError("inconsistent sigma values during backtracking")
            pick = int(rng.choice(preds, p=weights / total_weight))
            internal.append(pick)
            current = pick
        internal.reverse()
        return PathSample(
            source=source,
            target=target,
            connected=True,
            length=length,
            internal_vertices=np.asarray(internal, dtype=np.int64),
            edges_touched=edges_touched,
        )
