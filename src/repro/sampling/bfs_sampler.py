"""Unidirectional BFS shortest-path sampler (kernel-backed shim).

This is the "ordinary BFS" sampler the KADABRA paper contrasts against its
bidirectional sampler: a full forward BFS from the source with shortest-path
counting (sigma), truncated once the target's level is complete, followed by a
backward random walk that picks each predecessor with probability proportional
to its sigma value.  The resulting path is uniform among all shortest
source-target paths.

The search lives in :func:`repro.kernels.unidirectional.unidirectional_sample`
on a reusable :class:`~repro.kernels.scratch.ScratchPool`; this class is the
scalar compatibility shim on top of the batch kernel and is bit-identical to
the original implementation for a fixed RNG state.
"""

from __future__ import annotations

from repro.sampling.base import KernelPathSampler

__all__ = ["UnidirectionalBFSSampler"]


class UnidirectionalBFSSampler(KernelPathSampler):
    """Samples uniform shortest paths with a single truncated sigma-BFS."""

    _kernel_method = "unidirectional"
