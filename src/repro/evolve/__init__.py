"""``repro.evolve`` — incremental betweenness on evolving graphs.

The static pipeline treats a graph as immutable: mutate an edge and every
accumulated sample is thrown away.  This package keeps them.  Edge deltas
(:class:`repro.store.GraphDelta`) are applied to stored graphs through the
catalog's lineage layer (:meth:`repro.store.GraphCatalog.apply_delta`), and
:func:`update_session` carries a checkpointed estimation session across the
delta: it decides *exactly* which sampled shortest paths the mutation
invalidated (:func:`invalidated_samples`), re-samples only those pairs on the
mutated graph, and re-certifies the ``(eps, delta)`` guarantee — typically at
a small fraction of a cold run's cost for local edits.  See
``docs/evolving.md`` for the walkthrough and :mod:`repro.evolve.incremental`
for why the invalidation test is exact.
"""

from repro.evolve.incremental import (
    EvolveError,
    UpdateReport,
    UpdateThresholdExceeded,
    invalidated_samples,
    update_session,
)

__all__ = [
    "EvolveError",
    "UpdateReport",
    "UpdateThresholdExceeded",
    "invalidated_samples",
    "update_session",
]
