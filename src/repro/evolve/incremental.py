"""Incremental betweenness on evolving graphs: invalidate, re-sample, re-certify.

A mutated graph does not void an adaptive-sampling run wholesale.  Each
accumulated sample is a uniformly drawn shortest path for a uniformly drawn
vertex pair; an edge delta changes the shortest-path structure of only *some*
pairs, and a sample whose pair's shortest-path set is untouched remains a
valid draw from the child graph's sampling distribution.  This module turns
that observation into an update operator over checkpointed sessions:

1. **Invalidate** (:func:`invalidated_samples`) — decide, exactly, which
   logged samples a :class:`~repro.store.GraphDelta` touched.  For a deleted
   edge ``(u, v)`` and a sample with pair ``(s, t)`` and logged distance
   ``d``, the edge lay on *some* shortest ``s``-``t`` path of the parent iff
   ``min(d_p(s,u) + d_p(v,t), d_p(s,v) + d_p(u,t)) + 1 == d`` with parent
   distances ``d_p`` — if it did, the shortest-path set (and hence the
   uniform path distribution the sample was drawn from) changed.  For an
   inserted edge the same quantity on *child* distances with ``<= d`` detects
   both strictly shorter paths and new equal-length ones.  These two tests
   are complete: any new child shortest path must traverse an inserted edge,
   and any lost parent shortest path traversed a deleted one, so a sample
   flagged by neither has an identical shortest-path set on both graphs.
   Cost: one BFS per distinct delta endpoint per side, not per sample.

2. **Re-sample** — surgery on the session state.  Each invalidated sample
   keeps its ``(s, t)`` *pair* (the pair marginal is uniform on both graphs,
   so conditioning on "pair was touched" would bias the path distribution if
   we redrew pairs) and redraws only the path, on the child graph, from the
   session's live RNG.  Stale interior contributions are subtracted from the
   aggregate frame — and from the calibration prefix where they fall inside
   it — and the fresh ones added, keeping frame and log consistent.

3. **Re-certify** — the child graph has its own vertex-diameter bound and
   hence its own ``omega``; the update rebuilds the schedule at the target
   ``(eps, delta)``, extends the calibration frame with fresh draws if the
   child schedule asks for more, recalibrates ``delta_L``/``delta_U``, and
   runs the standard check/draw loop to a fresh stopping certificate.  The
   certificate is the same KADABRA guarantee a cold run on the child would
   produce; what is saved is the samples *not* redrawn.

Unlike :meth:`~repro.session.EstimationSession.refine`, the update is **not**
bit-identical to a cold child run — the retained samples came from the parent
stream — but every retained sample is distributionally a child sample, which
is all the guarantee needs.  When a delta touches more than
``threshold`` of the accumulated samples the machinery refuses
(:class:`UpdateThresholdExceeded`): past that point a cold run is cheaper
than surgery plus re-certification, and the caller (facade, service) is
expected to fall back.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.core.result import BetweennessResult
from repro.diameter import vertex_diameter_upper_bound
from repro.graph.csr import CSRGraph
from repro.graph.traversal import UNREACHED, bfs_distances
from repro.obs import trace as obs_trace
from repro.session.sample_log import SampleLog
from repro.session.session import EstimationSession, _jsonable_rng_state
from repro.store.delta import GraphDelta
from repro.util.timer import PhaseTimer

__all__ = [
    "EvolveError",
    "UpdateReport",
    "UpdateThresholdExceeded",
    "invalidated_samples",
    "update_session",
]

PathLike = Union[str, Path]

#: Distance sentinel for disconnected pairs.  Far above any finite hop count
#: (paths have < 2**33 hops on any graph this code can hold) yet small enough
#: that sums of two sentinels stay well inside int64 — so the invalidation
#: tests below run on plain integer comparisons with no special-casing.
INF = np.int64(1) << 40


class EvolveError(RuntimeError):
    """An incremental update cannot proceed (callers may fall back cold)."""


class UpdateThresholdExceeded(EvolveError):
    """The delta invalidated too many samples for surgery to pay off."""

    def __init__(self, fraction: float, threshold: float) -> None:
        super().__init__(
            f"delta invalidates {fraction:.1%} of the accumulated samples, "
            f"above the update threshold of {threshold:.1%}; run cold instead"
        )
        self.fraction = float(fraction)
        self.threshold = float(threshold)


@dataclass(frozen=True)
class UpdateReport:
    """Accounting for one :func:`update_session` call.

    Attributes
    ----------
    result:
        The re-certified estimate on the child graph.  Its
        ``samples_reused``/``samples_drawn``/``samples_invalidated`` fields
        carry the reuse split.
    parent_samples:
        Accumulated samples (``tau``) the parent session arrived with.
    samples_invalidated:
        How many of those the delta touched (re-sampled in place).
    invalidated_fraction:
        ``samples_invalidated / parent_samples`` — what was checked against
        the threshold.
    samples_reused:
        Parent samples retained verbatim.
    num_bfs:
        Distinct BFS traversals the invalidation test ran (two per distinct
        delta endpoint, worst case).
    threshold:
        The invalidation-fraction ceiling this update ran under.
    vertex_diameter:
        The child graph's vertex-diameter bound used for re-certification.
    """

    result: BetweennessResult
    parent_samples: int
    samples_invalidated: int
    invalidated_fraction: float
    samples_reused: int
    num_bfs: int
    threshold: float
    vertex_diameter: int


def _distance_oracle(graph: CSRGraph) -> Tuple[Callable[[int], np.ndarray], Dict[int, np.ndarray]]:
    """A memoised single-source distance function with the INF sentinel."""
    cache: Dict[int, np.ndarray] = {}

    def distances(v: int) -> np.ndarray:
        got = cache.get(v)
        if got is None:
            got = bfs_distances(graph, v).distances.astype(np.int64, copy=True)
            got[got == UNREACHED] = INF
            cache[v] = got
        return got

    return distances, cache


def invalidated_samples(
    parent: CSRGraph,
    child: CSRGraph,
    graph_delta: GraphDelta,
    log: SampleLog,
) -> Tuple[np.ndarray, int]:
    """Which logged samples did the delta invalidate?

    Returns ``(mask, num_bfs)``: a boolean mask over ``log``'s samples (True
    means the sample's pair has a different shortest-path set on ``child``
    than it had on ``parent`` and must be re-sampled) and the number of BFS
    traversals spent deciding.  See the module docstring for why the two
    endpoint-distance tests are exact and complete.
    """
    sources = log.sources
    targets = log.targets
    dist = log.lengths.copy()
    dist[dist < 0] = INF  # logged -1 == disconnected at sampling time
    invalid = np.zeros(log.num_samples, dtype=bool)

    parent_dist, parent_cache = _distance_oracle(parent)
    child_dist, child_cache = _distance_oracle(child)

    for u, v in graph_delta.deletions:
        du, dv = parent_dist(int(u)), parent_dist(int(v))
        via = np.minimum(du[sources] + dv[targets], dv[sources] + du[targets]) + 1
        # The deleted edge lay on some shortest s-t path: the path set shrank.
        invalid |= via == dist
    for u, v in graph_delta.insertions:
        du, dv = child_dist(int(u)), child_dist(int(v))
        via = np.minimum(du[sources] + dv[targets], dv[sources] + du[targets]) + 1
        # The inserted edge carries a shorter (or new equal-length) s-t path.
        invalid |= via <= dist
    return invalid, len(parent_cache) + len(child_cache)


def _obtain_session(
    source: Union[EstimationSession, PathLike],
    parent_graph: Optional[CSRGraph],
    progress,
    batch_size,
) -> EstimationSession:
    if isinstance(source, EstimationSession):
        return source
    kwargs = {"graph": parent_graph, "progress": progress}
    if batch_size is not None:
        kwargs["batch_size"] = batch_size
    return EstimationSession.restore(source, **kwargs)


def update_session(
    source: Union[EstimationSession, PathLike],
    graph: CSRGraph,
    graph_delta: GraphDelta,
    *,
    eps: Optional[float] = None,
    delta: Optional[float] = None,
    threshold: float = 0.5,
    parent_graph: Optional[CSRGraph] = None,
    progress=None,
    batch_size=None,
) -> Tuple[EstimationSession, UpdateReport]:
    """Carry a parent session over an edge delta onto the mutated graph.

    Parameters
    ----------
    source:
        A live parent :class:`~repro.session.EstimationSession`, or the path
        of one of its checkpoints (restored against ``parent_graph``, or the
        snapshot's recorded source path).
    graph:
        The *child* graph — the parent with ``graph_delta`` applied (use
        :func:`repro.store.apply_delta` or
        :meth:`repro.store.GraphCatalog.apply_delta`).
    graph_delta:
        The mutation connecting parent to child.  Validated against the
        parent: every deletion must exist there, no insertion may.
    eps, delta:
        Re-certification target; default to the parent's achieved guarantee.
    threshold:
        Invalidation-fraction ceiling in ``(0, 1]``; exceeded it raises
        :class:`UpdateThresholdExceeded` *before* any state is modified.

    Returns ``(session, report)`` — the session now lives on ``graph`` with a
    fresh ``(eps, delta)`` certificate, ready for further ``refine``/
    ``checkpoint``/``peek`` calls (and further updates).  ``report.result``
    is the re-certified estimate.

    Raises :class:`EvolveError` when the source cannot support an update
    (delegated backend, pre-log snapshot, vertex-count mismatch) and
    :class:`~repro.store.DeltaError` when the delta does not connect the two
    graphs; neither modifies the session.
    """
    with obs_trace.span("evolve.update") as sp:
        session, report = _update_session_impl(
            source,
            graph,
            graph_delta,
            eps=eps,
            delta=delta,
            threshold=threshold,
            parent_graph=parent_graph,
            progress=progress,
            batch_size=batch_size,
        )
        if sp:
            sp.set("invalidated_fraction", report.invalidated_fraction)
            sp.set("samples_reused", report.samples_reused)
    return session, report


def _update_session_impl(
    source: Union[EstimationSession, PathLike],
    graph: CSRGraph,
    graph_delta: GraphDelta,
    *,
    eps: Optional[float] = None,
    delta: Optional[float] = None,
    threshold: float = 0.5,
    parent_graph: Optional[CSRGraph] = None,
    progress=None,
    batch_size=None,
) -> Tuple[EstimationSession, UpdateReport]:
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    session = _obtain_session(source, parent_graph, progress, batch_size)
    if not session.supports_refinement:
        raise EvolveError(
            f"backend {session.algorithm!r} sessions are not update-refinable"
        )
    if not session.has_run:
        raise EvolveError("run() must complete before the session can be updated")
    log = session.sample_log
    if log is None:
        raise EvolveError(
            "session carries no per-sample log (snapshot predates the log "
            "format); incremental updates need one — run cold instead"
        )
    parent = session.graph
    if graph.num_vertices != parent.num_vertices:
        raise EvolveError(
            f"child graph has {graph.num_vertices} vertices, parent has "
            f"{parent.num_vertices}: deltas cannot change the vertex set"
        )
    graph_delta.validate_against(parent)
    expected_edges = (
        parent.num_edges - graph_delta.num_deletions + graph_delta.num_insertions
    )
    if graph.num_edges != expected_edges:
        raise EvolveError(
            f"child graph has {graph.num_edges} edges but parent plus delta "
            f"gives {expected_edges}: the delta does not connect these graphs"
        )

    eps = float(session.eps if eps is None else eps)
    delta = float(session.delta if delta is None else delta)
    timer = PhaseTimer()

    with timer.phase("invalidation"), obs_trace.span("invalidation"):
        mask, num_bfs = invalidated_samples(parent, graph, graph_delta, log)
    tau_parent = log.num_samples
    invalid_count = int(np.count_nonzero(mask))
    fraction = invalid_count / tau_parent if tau_parent else 0.0
    session._emit(phase="invalidation", num_samples=tau_parent - invalid_count)
    if fraction > threshold:
        raise UpdateThresholdExceeded(fraction, threshold)

    # -------------------------------------------------------------- #
    # Surgery: subtract stale contributions, redraw the same pairs on
    # the child, add the fresh ones.  The calibration frame is the log
    # prefix of the first C samples, so the invalidated indices below C
    # get the same subtract/add treatment there.
    # -------------------------------------------------------------- #
    with timer.phase("resample"), obs_trace.span("resample"):
        frame = session._frame
        calibration = session._calibration_frame
        idx = np.flatnonzero(mask)
        cal_count = calibration.num_samples if calibration is not None else 0
        k_cal = int(np.searchsorted(idx, cal_count))

        session._graph = graph
        from repro.core.kadabra import make_sampler

        session._ensure_engine()
        session._sampler = make_sampler(graph, session.options)

        if idx.size:
            stale = log.contributions_concat(idx)
            if stale.size:
                np.add.at(frame.counts, stale, -1.0)
            if k_cal and calibration is not None:
                stale_cal = log.contributions_concat(idx[:k_cal])
                if stale_cal.size:
                    np.add.at(calibration.counts, stale_cal, -1.0)

            batch = session._sampler.batch_sampler().sample_pairs(
                log.sources[idx], log.targets[idx], session._rng
            )
            fresh = batch.contrib_vertices
            if fresh.size:
                np.add.at(frame.counts, fresh, 1.0)
            frame.edges_touched += int(batch.edges_touched.sum())
            if k_cal and calibration is not None:
                fresh_cal = fresh[: int(batch.contrib_indptr[k_cal])]
                if fresh_cal.size:
                    np.add.at(calibration.counts, fresh_cal, 1.0)
            log.replace(idx, batch)
    session._emit(phase="resample", num_samples=tau_parent)

    # -------------------------------------------------------------- #
    # Re-certify on the child: its own diameter bound, its own omega,
    # then the standard calibrate / align / check-draw loop.
    # -------------------------------------------------------------- #
    with timer.phase("diameter"):
        if session.options.vertex_diameter_override is not None:
            vd = int(session.options.vertex_diameter_override)
        else:
            vd = max(vertex_diameter_upper_bound(graph, seed=session.options.seed), 2)
        session._vd = vd
    schedule = session._schedule(eps, delta)
    session._omega = schedule.omega
    session._emit(phase="diameter", omega=schedule.omega)

    with timer.phase("calibration"):
        new_c = schedule.calibration_samples
        if new_c > cal_count:
            # The child schedule wants a larger calibration set than the
            # parent's prefix provides.  Fresh child draws, charged to both
            # frames, are sound (any iid child sample calibrates), though the
            # calibration frame stops being a stream prefix — so this update
            # is not bit-identical to a cold child run.  It never is anyway:
            # the retained samples came from the parent stream.
            session._draw(new_c - cal_count, session._rng, into_calibration=calibration)
            session._calibration_rng_state = _jsonable_rng_state(session._rng)
        session._recalibrate(eps, delta, schedule.omega)
    session._emit(
        phase="calibration", num_samples=session.num_samples, omega=schedule.omega
    )

    with timer.phase("adaptive_sampling"):
        tau = session.num_samples
        aligned = schedule.next_boundary(tau)
        if aligned > tau:
            session._draw(aligned - tau, session._rng)
        session._advance_to_stop(schedule)

    session._eps, session._delta = eps, delta
    samples_reused = tau_parent - invalid_count
    result = session._build_result(timer, samples_reused=samples_reused)
    result.samples_invalidated = invalid_count
    result.extra["invalidated_fraction"] = float(fraction)
    result.extra["update_bfs"] = float(num_bfs)
    report = UpdateReport(
        result=result,
        parent_samples=tau_parent,
        samples_invalidated=invalid_count,
        invalidated_fraction=float(fraction),
        samples_reused=samples_reused,
        num_bfs=num_bfs,
        threshold=float(threshold),
        vertex_diameter=vd,
    )
    return session, report
