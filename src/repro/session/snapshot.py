"""The ``.snap`` session-snapshot container: one header, JSON meta, raw arrays.

A snapshot freezes a resumable :class:`~repro.session.EstimationSession` at an
epoch boundary: the per-vertex sample accumulators, the calibration-phase
frame, both RNG states and the scalar run state (sample count, omega, achieved
accuracy).  Restoring a snapshot — in the same process, another process, or on
another machine sharing the graph store — continues the *exact* sample stream,
which is what makes ``restore + refine`` bit-identical to a longer fresh run.

Layout (all little-endian)::

    ========  ====================  ====================================
    offset    field                 meaning
    ========  ====================  ====================================
    0         ``magic``             ``b"RSNP"``
    4         ``version`` (u16)     format version, currently 1
    6         ``reserved`` (u16)    zero
    8         ``meta_nbytes`` (u64) length of the JSON metadata section
    16        ``arrays_nbytes``     length of the raw array section
              (u64)
    24        ``crc_meta`` (u32)    CRC-32 of the metadata section
    28        ``crc_arrays`` (u32)  CRC-32 of the array section
    ========  ====================  ====================================

followed by the UTF-8 JSON metadata and the concatenated float64 arrays
described by the metadata's ``arrays`` list (name + length each).  Like the
``.rcsr`` graph container, every section is CRC-checked and writers go through
``atomic_replace``, so a truncated, corrupted or version-mismatched file is
rejected with a clear :class:`SnapshotError` instead of deserializing garbage.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.store.format import atomic_replace

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SnapshotError",
    "write_snapshot",
    "read_snapshot",
    "read_snapshot_meta",
]

PathLike = Union[str, Path]

SNAPSHOT_MAGIC = b"RSNP"
SNAPSHOT_VERSION = 1

_HEADER_STRUCT = struct.Struct("<4sHHQQII")
_HEADER_SIZE = _HEADER_STRUCT.size

#: Refuse to parse absurd section lengths (corrupt headers must not trigger
#: multi-gigabyte allocations before the CRC check can reject them).
_MAX_SECTION_BYTES = 1 << 40


class SnapshotError(ValueError):
    """Raised for files that are not valid session snapshots."""


def write_snapshot(
    path: PathLike, meta: Dict[str, object], arrays: Dict[str, np.ndarray]
) -> None:
    """Write a snapshot atomically: meta JSON plus named float64 arrays.

    The ``arrays`` entries are recorded in ``meta["arrays"]`` (name and
    length, in file order) so :func:`read_snapshot` can slice them back out
    without trusting anything but the CRC-checked metadata.
    """
    meta = dict(meta)
    meta["arrays"] = [
        {"name": name, "length": int(np.asarray(array).size)}
        for name, array in arrays.items()
    ]
    blobs = [
        np.ascontiguousarray(np.asarray(array, dtype=np.float64)).tobytes()
        for array in arrays.values()
    ]
    arrays_blob = b"".join(blobs)
    meta_blob = json.dumps(meta, sort_keys=True).encode("utf-8")
    header = _HEADER_STRUCT.pack(
        SNAPSHOT_MAGIC,
        SNAPSHOT_VERSION,
        0,
        len(meta_blob),
        len(arrays_blob),
        zlib.crc32(meta_blob) & 0xFFFFFFFF,
        zlib.crc32(arrays_blob) & 0xFFFFFFFF,
    )
    dest = Path(path)
    if dest.parent and not dest.parent.exists():
        dest.parent.mkdir(parents=True, exist_ok=True)
    with atomic_replace(dest) as tmp:
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(meta_blob)
            fh.write(arrays_blob)


def _read_header(blob: bytes, path: Path) -> Tuple[int, int, int, int]:
    if len(blob) < _HEADER_SIZE:
        raise SnapshotError(f"{path}: file too short for a snapshot header")
    magic, version, _reserved, meta_nbytes, arrays_nbytes, crc_meta, crc_arrays = (
        _HEADER_STRUCT.unpack_from(blob)
    )
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotError(f"{path}: not a session snapshot (bad magic {magic!r})")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path}: unsupported snapshot version {version} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    if meta_nbytes > _MAX_SECTION_BYTES or arrays_nbytes > _MAX_SECTION_BYTES:
        raise SnapshotError(f"{path}: implausible section sizes (corrupt header)")
    return meta_nbytes, arrays_nbytes, crc_meta, crc_arrays


def _decode_meta(meta_blob: bytes, crc_meta: int, path: Path) -> Dict[str, object]:
    if (zlib.crc32(meta_blob) & 0xFFFFFFFF) != crc_meta:
        raise SnapshotError(f"{path}: metadata CRC mismatch (corrupted snapshot)")
    try:
        meta = json.loads(meta_blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{path}: metadata is not valid JSON: {exc}") from None
    if not isinstance(meta, dict):
        raise SnapshotError(f"{path}: snapshot metadata must be a JSON object")
    return meta


def read_snapshot_meta(path: PathLike) -> Dict[str, object]:
    """The CRC-checked metadata of a snapshot, without loading the arrays.

    Used by inspection commands (``repro-betweenness session checkpoint``) and
    by the service when deciding whether a cached snapshot can serve a
    refinement — both only need the scalar state.
    """
    src = Path(path)
    try:
        with open(src, "rb") as fh:
            blob = fh.read(_HEADER_SIZE)
            meta_nbytes, _arrays_nbytes, crc_meta, _crc_arrays = _read_header(blob, src)
            meta_blob = fh.read(meta_nbytes)
    except OSError as exc:
        raise SnapshotError(f"{src}: cannot read snapshot: {exc}") from None
    if len(meta_blob) != meta_nbytes:
        raise SnapshotError(f"{src}: truncated snapshot (metadata section)")
    return _decode_meta(meta_blob, crc_meta, src)


def read_snapshot(path: PathLike) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Load and verify a snapshot; returns ``(meta, arrays)``.

    Raises :class:`SnapshotError` for anything that is not a complete,
    CRC-clean snapshot of a supported version.
    """
    src = Path(path)
    try:
        blob = src.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"{src}: cannot read snapshot: {exc}") from None
    meta_nbytes, arrays_nbytes, crc_meta, crc_arrays = _read_header(blob, src)
    expected = _HEADER_SIZE + meta_nbytes + arrays_nbytes
    if len(blob) < expected:
        raise SnapshotError(
            f"{src}: truncated snapshot ({len(blob)} bytes, expected {expected})"
        )
    meta = _decode_meta(blob[_HEADER_SIZE : _HEADER_SIZE + meta_nbytes], crc_meta, src)
    arrays_blob = blob[_HEADER_SIZE + meta_nbytes : expected]
    if (zlib.crc32(arrays_blob) & 0xFFFFFFFF) != crc_arrays:
        raise SnapshotError(f"{src}: array CRC mismatch (corrupted snapshot)")

    specs = meta.get("arrays")
    if not isinstance(specs, list):
        raise SnapshotError(f"{src}: metadata lacks the 'arrays' section list")
    arrays: Dict[str, np.ndarray] = {}
    offset = 0
    for spec in specs:
        try:
            name, length = str(spec["name"]), int(spec["length"])
        except (TypeError, KeyError, ValueError):
            raise SnapshotError(f"{src}: malformed array descriptor {spec!r}") from None
        nbytes = length * 8
        if length < 0 or offset + nbytes > len(arrays_blob):
            raise SnapshotError(f"{src}: array section shorter than described")
        arrays[name] = np.frombuffer(
            arrays_blob, dtype=np.float64, count=length, offset=offset
        ).copy()
        offset += nbytes
    if offset != len(arrays_blob):
        raise SnapshotError(f"{src}: array section longer than described")
    return meta, arrays


def require_keys(meta: Dict[str, object], keys: Sequence[str], path: PathLike) -> None:
    """Validate that ``meta`` carries every key in ``keys`` (SnapshotError)."""
    missing: List[str] = [key for key in keys if key not in meta]
    if missing:
        raise SnapshotError(f"{path}: snapshot metadata is missing {missing}")
