"""Resumable estimation sessions: incremental refinement over live state.

The one-shot :func:`repro.estimate_betweenness` facade answers a single
``(eps, delta)`` request and throws the sampling state away.  This module
keeps that state alive: an :class:`EstimationSession` owns the RNG stream, the
kernel :class:`~repro.kernels.ScratchPool` (via its batch sampler), the
per-vertex sample accumulators and the stopping-condition state, and exposes

* :meth:`EstimationSession.run` — the classic adaptive run (bit-identical to
  the pre-session sequential driver for a fixed seed),
* :meth:`EstimationSession.refine` — tighten ``eps``/``delta`` by drawing
  *only the additional samples* the tighter guarantee needs, reusing every
  accumulated contribution,
* :meth:`EstimationSession.checkpoint` / :meth:`EstimationSession.restore` —
  CRC-checked on-disk snapshots (see :mod:`repro.session.snapshot`) that
  round-trip across processes,
* :meth:`EstimationSession.peek` / :meth:`EstimationSession.top_k` —
  confidence-aware queries against the live accumulators, using the same
  per-vertex f/g bounds that drive the stopping rule.

Why refinement is *exact*
-------------------------
The sequential driver's sample stream is a pure function of ``(graph, seed,
sampler kind)`` — the interleaved pair strategy of the batch kernels draws it
identically for any batch partitioning, and the per-vertex counters are
integer-valued, so accumulation order cannot perturb them.  A fresh run at a
tighter target consumes a *longer prefix* of the same stream; the only
position-dependent decisions are (a) where the calibration phase ends and (b)
where the stopping rule is evaluated.  Both are deterministic grids
(:func:`~repro.core.calibration.calibration_sample_count`,
:class:`~repro.core.stopping.CheckSchedule`), and both are monotone in the
target: tighter ``(eps, delta)`` never shrinks ``omega``, the calibration
count, or the check boundaries.  ``refine`` therefore

1. extends the stored calibration frame to the tighter target's calibration
   count — replaying already-drawn samples from the saved calibration RNG
   state where the prefix overlaps, drawing genuinely new samples past the
   live position — and recalibrates ``delta_L``/``delta_U`` exactly as the
   cold run would,
2. draws forward to the first check boundary of the tighter target's
   schedule at or past the live position, and
3. continues the standard check/draw loop until the tighter rule fires.

The result is bit-identical to a fresh session run at the tighter target
(asserted by ``tests/test_session.py``), at the cost of only the sample-count
difference plus a calibration-gap replay.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.core.calibration import calibrate_deltas, calibration_sample_count
from repro.core.options import KadabraOptions
from repro.core.result import BetweennessResult
from repro.core.state_frame import StateFrame
from repro.core.stopping import CheckSchedule, StoppingCondition, compute_omega
from repro.core.topk import TopKResult, confidence_bounds, identify_top_k
from repro.diameter import vertex_diameter_upper_bound
from repro.graph.csr import CSRGraph
from repro.kernels import plan_batches, resolve_batch_size
from repro.obs import trace as obs_trace
from repro.session.sample_log import SampleLog
from repro.session.snapshot import (
    SnapshotError,
    read_snapshot,
    require_keys,
    write_snapshot,
)
from repro.util.progress import ProgressCallback, ProgressEvent
from repro.util.timer import PhaseTimer

__all__ = [
    "ConfidenceEstimate",
    "EstimationSession",
    "SessionCapabilityError",
    "SessionStateError",
    "open_session",
]

PathLike = Union[str, Path]

#: Session metadata keys every snapshot must carry (format enforcement).
_REQUIRED_META = (
    "kind",
    "graph",
    "options",
    "achieved",
    "omega",
    "vertex_diameter",
    "checks",
    "frame",
    "calibration",
    "rng_state",
)

_SNAPSHOT_KIND = "repro-estimation-session"


class SessionStateError(RuntimeError):
    """An operation was called in the wrong session lifecycle state."""


class SessionCapabilityError(RuntimeError):
    """The session's backend does not support the requested operation."""


@dataclass(frozen=True)
class ConfidenceEstimate:
    """A :meth:`EstimationSession.peek`: point estimates plus ADS bounds.

    ``lower_bounds``/``upper_bounds`` are the per-vertex confidence interval
    endpoints derived from the f/g deviation bounds at the current sample
    count (infinite-width before any sampling happened); the half-widths are
    exposed separately because the interval is asymmetric (``f`` bounds
    overshoot, ``g`` bounds undershoot).
    """

    scores: np.ndarray
    lower_bounds: np.ndarray
    upper_bounds: np.ndarray
    num_samples: int
    eps: Optional[float]
    delta: Optional[float]

    @property
    def half_width_lower(self) -> np.ndarray:
        return self.scores - self.lower_bounds

    @property
    def half_width_upper(self) -> np.ndarray:
        return self.upper_bounds - self.scores

    @property
    def max_half_width(self) -> float:
        if self.scores.size == 0:
            return 0.0
        return float(
            max(np.max(self.half_width_lower), np.max(self.half_width_upper))
        )


def _rng_from_state(state: Dict[str, object]) -> np.random.Generator:
    """Rebuild a :class:`numpy.random.Generator` from a saved state dict."""
    name = state.get("bit_generator")
    try:
        bit_generator = getattr(np.random, str(name))()
    except (AttributeError, TypeError):
        raise SnapshotError(f"unknown bit generator {name!r} in snapshot") from None
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def _jsonable_rng_state(rng: np.random.Generator) -> Dict[str, object]:
    """The generator's state as a JSON-serializable dict (ints stay exact)."""

    def convert(value):
        if isinstance(value, dict):
            return {k: convert(v) for k, v in value.items()}
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.ndarray):
            return [int(v) for v in value]
        return value

    return convert(dict(rng.bit_generator.state))


class EstimationSession:
    """A resumable betweenness estimation over one graph and one RNG stream.

    Create sessions with :func:`open_session` (registry-aware, used by the
    facade) or :meth:`restore` (from a checkpoint).  Sessions come in two
    flavours:

    * **native** (``algorithm="sequential"`` or any backend registered with
      ``supports_refinement=True``): the session drives the incremental
      sequential engine itself and supports the full surface —
      ``run``/``refine``/``checkpoint``/``restore``/``peek``/``top_k``.
    * **delegated** (every other backend): ``run`` executes the registered
      runner once; ``refine`` and ``checkpoint`` raise
      :class:`SessionCapabilityError`, while ``peek``/``top_k`` fall back to
      the uniform-split confidence bounds of :mod:`repro.core.topk`.
    """

    def __init__(
        self,
        graph: CSRGraph,
        options: Optional[KadabraOptions] = None,
        *,
        progress: Optional[ProgressCallback] = None,
        batch_size: object = "auto",
        kernel: Optional[str] = None,
        _spec=None,
        _resources=None,
    ) -> None:
        if not hasattr(graph, "num_vertices"):
            raise TypeError(
                f"graph must be a CSRGraph-like object, got {type(graph).__name__}"
            )
        self._graph = graph
        self._options = options if options is not None else KadabraOptions()
        self._progress = progress
        self._batch_size = resolve_batch_size(batch_size)
        self._kernel = kernel
        self._spec = _spec
        self._resources = _resources
        self._native = _spec is None or getattr(_spec, "supports_refinement", False)

        # Progress events carry ts = monotonic seconds since session creation
        # (see ProgressEvent.ts); monotonic, so producer/consumer clock skew
        # cannot make the stream run backwards.
        self._start_monotonic = time.monotonic()
        self._ran = False
        self._eps: Optional[float] = None
        self._delta: Optional[float] = None
        self._omega: Optional[int] = None
        self._vd: Optional[int] = None
        self._checks = 0
        self._frame = StateFrame.zeros(graph.num_vertices)
        self._calibration_frame: Optional[StateFrame] = None
        self._calibration_rng_state: Optional[Dict[str, object]] = None
        self._delta_l: Optional[np.ndarray] = None
        self._delta_u: Optional[np.ndarray] = None
        self._condition: Optional[StoppingCondition] = None
        self._rng: Optional[np.random.Generator] = None
        self._sampler = None
        self._last_result: Optional[BetweennessResult] = None
        # Native sessions log every sample's (pair, distance, interior path):
        # the extra state that makes their checkpoints update-refinable when
        # the graph mutates (see repro.evolve).  Delegated backends never go
        # through _draw, so their sessions carry no log.
        self._sample_log: Optional[SampleLog] = SampleLog.empty() if self._native else None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> CSRGraph:
        return self._graph

    @property
    def options(self) -> KadabraOptions:
        return self._options

    @property
    def seed(self) -> Optional[int]:
        return self._options.seed

    @property
    def algorithm(self) -> str:
        return self._spec.name if self._spec is not None else "sequential"

    @property
    def supports_refinement(self) -> bool:
        return self._native

    @property
    def has_run(self) -> bool:
        return self._ran

    @property
    def num_samples(self) -> int:
        return int(self._frame.num_samples)

    @property
    def eps(self) -> Optional[float]:
        """The tightest absolute-error target certified so far."""
        return self._eps

    @property
    def delta(self) -> Optional[float]:
        """The failure probability of the current certificate."""
        return self._delta

    @property
    def omega(self) -> Optional[int]:
        return self._omega

    @property
    def last_result(self) -> Optional[BetweennessResult]:
        return self._last_result

    @property
    def sample_log(self) -> Optional[SampleLog]:
        """The per-sample path log, or ``None`` (delegated backends, or a
        session restored from a pre-log snapshot)."""
        return self._sample_log

    @property
    def progress(self) -> Optional[ProgressCallback]:
        """The (possibly backend-tagged) progress callback this session emits to."""
        return self._progress

    def __repr__(self) -> str:
        state = "idle" if not self._ran else f"eps={self._eps}, delta={self._delta}"
        return (
            f"EstimationSession(algorithm={self.algorithm!r}, "
            f"n={self._graph.num_vertices}, tau={self.num_samples}, {state})"
        )

    # ------------------------------------------------------------------ #
    # Internal plumbing
    # ------------------------------------------------------------------ #
    def _emit(self, **kwargs) -> None:
        if self._progress is not None:
            kwargs.setdefault("ts", time.monotonic() - self._start_monotonic)
            self._progress(ProgressEvent(**kwargs))

    def _ensure_engine(self) -> None:
        """Lazily create the RNG and sampler (restore injects them instead)."""
        if self._rng is None:
            self._rng = np.random.default_rng(self._options.seed)
        if self._sampler is None:
            from repro.core.kadabra import make_sampler

            kernel = self._kernel
            if kernel is None and self._resources is not None:
                kernel = getattr(self._resources, "kernel", None)
            self._sampler = make_sampler(self._graph, self._options, kernel=kernel)

    def _target_options(self, eps, delta) -> KadabraOptions:
        """Validate an (eps, delta) target through the options dataclass."""
        changes = {}
        if eps is not None:
            changes["eps"] = float(eps)
        if delta is not None:
            changes["delta"] = float(delta)
        return self._options.with_(**changes) if changes else self._options

    def _schedule(self, eps: float, delta: float) -> CheckSchedule:
        omega = compute_omega(eps, delta, self._vd)
        if self._options.max_samples_override is not None:
            omega = min(omega, int(self._options.max_samples_override))
        return CheckSchedule(
            calibration_samples=calibration_sample_count(
                self._options.calibration_samples, omega, self._graph.num_vertices
            ),
            samples_per_check=max(1, self._options.samples_per_check),
            omega=omega,
        )

    def _draw(self, count: int, rng, *, into_calibration: Optional[StateFrame] = None) -> None:
        """Draw ``count`` samples from ``rng`` into the aggregate frame."""
        from repro.kernels import kernel_batch_cap

        # Batch-native kernels (wavefront) amortise over whole slabs, so the
        # auto ramp may grow past the default cap; per-pair kernels resolve
        # to the default cap, leaving the legacy batch plan untouched.
        cap = kernel_batch_cap(getattr(self._sampler, "kernel_spec", None))
        for take in plan_batches(count, self._batch_size, cap=cap):
            batch = self._sampler.sample_batch(take, rng)
            self._frame.record_batch(batch)
            if self._sample_log is not None:
                # Calibration *replays* in refine() bypass _draw on purpose:
                # their stream positions are already logged.
                self._sample_log.append_batch(batch)
            if into_calibration is not None:
                into_calibration.record_batch(batch)

    def _build_result(
        self, timer: PhaseTimer, *, samples_reused: int
    ) -> BetweennessResult:
        tau = self._frame.num_samples
        result = BetweennessResult(
            scores=self._frame.betweenness_estimates(),
            num_samples=tau,
            eps=self._eps,
            delta=self._delta,
            omega=self._omega,
            vertex_diameter=self._vd,
            num_epochs=self._checks,
            phase_seconds=timer.as_dict(),
            extra={"edges_touched": float(self._frame.edges_touched)},
            samples_drawn=tau - samples_reused,
            samples_reused=samples_reused,
        )
        self._last_result = result
        return result

    def _trivial_result(self, eps: float, delta: float) -> BetweennessResult:
        self._ran = True
        self._eps, self._delta = eps, delta
        result = BetweennessResult(
            scores=np.zeros(self._graph.num_vertices), eps=eps, delta=delta
        )
        self._last_result = result
        return result

    # ------------------------------------------------------------------ #
    # run
    # ------------------------------------------------------------------ #
    def run(self, eps: Optional[float] = None, delta: Optional[float] = None) -> BetweennessResult:
        """Run the estimation to the ``(eps, delta)`` target from zero samples.

        ``eps``/``delta`` default to the session options.  ``run`` may only
        be called once per session; tighten an existing estimate with
        :meth:`refine` instead.  For native sessions the sampling flow is
        bit-identical to the pre-session sequential driver.
        """
        with obs_trace.span("session.run", algorithm=self.algorithm):
            return self._run_to_target(eps, delta)

    def _run_to_target(
        self, eps: Optional[float], delta: Optional[float]
    ) -> BetweennessResult:
        if self._ran:
            raise SessionStateError(
                "session has already run; use refine(eps, delta) to tighten "
                "the guarantee without resampling"
            )
        target = self._target_options(eps, delta)
        if not self._native:
            opts = target
            start = time.perf_counter()
            result = self._spec.runner(
                self._graph, opts, self._resources, self._progress
            )
            result.phase_seconds.setdefault("total", time.perf_counter() - start)
            self._ran = True
            self._eps, self._delta = opts.eps, opts.delta
            self._frame.num_samples = int(result.num_samples)
            self._last_result = result
            return result

        if self._graph.num_vertices < 2:
            return self._trivial_result(target.eps, target.delta)

        self._ensure_engine()
        timer = PhaseTimer()

        with timer.phase("diameter"), obs_trace.span("diameter") as sp:
            if self._options.vertex_diameter_override is not None:
                self._vd = int(self._options.vertex_diameter_override)
            else:
                self._vd = max(
                    vertex_diameter_upper_bound(self._graph, seed=self._options.seed),
                    2,
                )
            sp.set("vertex_diameter", self._vd)
        schedule = self._schedule(target.eps, target.delta)
        self._omega = schedule.omega
        self._emit(phase="diameter", omega=schedule.omega)

        with timer.phase("calibration"), obs_trace.span("calibration") as sp:
            self._draw(schedule.calibration_samples, self._rng)
            self._calibration_frame = self._frame.copy()
            self._calibration_rng_state = _jsonable_rng_state(self._rng)
            self._recalibrate(target.eps, target.delta, schedule.omega)
            sp.set("num_samples", int(self._frame.num_samples))
        self._emit(
            phase="calibration",
            num_samples=self._frame.num_samples,
            omega=schedule.omega,
        )

        with timer.phase("adaptive_sampling"), obs_trace.span(
            "adaptive_sampling", omega=schedule.omega
        ):
            self._advance_to_stop(schedule)

        self._ran = True
        self._eps, self._delta = target.eps, target.delta
        return self._build_result(timer, samples_reused=0)

    def _recalibrate(self, eps: float, delta: float, omega: int) -> None:
        """Derive delta_L/delta_U and the stopping condition for a target."""
        calibration = calibrate_deltas(self._calibration_frame, delta, eps=eps)
        self._delta_l = calibration.delta_l
        self._delta_u = calibration.delta_u
        self._condition = StoppingCondition(
            eps=eps, omega=omega, delta_l=calibration.delta_l, delta_u=calibration.delta_u
        )

    def _advance_to_stop(self, schedule: CheckSchedule) -> None:
        """The check/draw loop shared by ``run`` and ``refine``.

        On entry the aggregate frame sits on a check boundary of
        ``schedule``; each iteration evaluates the stopping rule and draws
        exactly one block — the same decisions a one-shot run makes.
        """
        while True:
            with obs_trace.span("stopping", epoch=self._checks) as sp:
                stop = self._condition.should_stop(self._frame)
                sp.set("stop", bool(stop))
            if stop:
                return
            with obs_trace.span("sampling", epoch=self._checks):
                self._draw(schedule.advance(self._frame.num_samples), self._rng)
            self._checks += 1
            self._emit(
                phase="adaptive_sampling",
                epoch=self._checks,
                num_samples=self._frame.num_samples,
                omega=schedule.omega,
            )

    # ------------------------------------------------------------------ #
    # refine
    # ------------------------------------------------------------------ #
    def refine(
        self, eps: Optional[float] = None, delta: Optional[float] = None
    ) -> BetweennessResult:
        """Tighten the guarantee to ``(eps, delta)``, reusing all samples.

        The target must be at least as tight as the current certificate in
        both dimensions (``eps <= session.eps`` and ``delta <=
        session.delta``); a no-op target returns the current estimate without
        sampling.  The refined result is bit-identical to a fresh session run
        at the same target with the same seed, while drawing only
        ``omega_new - omega_old``-ish new samples plus a calibration-gap
        replay (see the module docstring for why this is exact).
        """
        with obs_trace.span("session.refine", algorithm=self.algorithm):
            return self._refine_to_target(eps, delta)

    def _refine_to_target(
        self, eps: Optional[float], delta: Optional[float]
    ) -> BetweennessResult:
        if not self._native:
            raise SessionCapabilityError(
                f"backend {self.algorithm!r} does not support refinement; "
                "open the session with algorithm='sequential'"
            )
        if not self._ran:
            raise SessionStateError("run() must complete before refine()")
        eps = self._eps if eps is None else float(eps)
        delta = self._delta if delta is None else float(delta)
        target = self._target_options(eps, delta)
        if target.eps > self._eps or target.delta > self._delta:
            raise ValueError(
                f"refine target (eps={target.eps}, delta={target.delta}) must be "
                f"at least as tight as the current certificate "
                f"(eps={self._eps}, delta={self._delta})"
            )
        reused = self._frame.num_samples
        if target.eps == self._eps and target.delta == self._delta:
            timer = PhaseTimer()
            return self._build_result(timer, samples_reused=reused)
        if self._graph.num_vertices < 2:
            return self._trivial_result(target.eps, target.delta)

        self._ensure_engine()
        timer = PhaseTimer()
        schedule = self._schedule(target.eps, target.delta)
        old_c = self._calibration_frame.num_samples
        new_c = schedule.calibration_samples
        if new_c < old_c:  # impossible by monotonicity; guard the invariant
            raise SessionStateError(
                f"calibration count shrank ({old_c} -> {new_c}); "
                "refinement requires a monotone schedule"
            )

        with timer.phase("calibration"), obs_trace.span("calibration"):
            # Extend the calibration frame to the tighter target's count: the
            # overlap with already-drawn samples is *replayed* from the saved
            # calibration RNG state (same stream positions, so identical
            # contributions, charged only to the calibration frame), anything
            # past the live position is drawn fresh and charged to both.
            replay_until = min(new_c, reused)
            if replay_until > old_c:
                replay_rng = _rng_from_state(self._calibration_rng_state)
                for take in plan_batches(replay_until - old_c, self._batch_size):
                    self._calibration_frame.record_batch(
                        self._sampler.sample_batch(take, replay_rng)
                    )
                self._calibration_rng_state = _jsonable_rng_state(replay_rng)
            if new_c > reused:
                self._draw(
                    new_c - reused, self._rng, into_calibration=self._calibration_frame
                )
                self._calibration_rng_state = _jsonable_rng_state(self._rng)
            self._recalibrate(target.eps, target.delta, schedule.omega)
        replayed = replay_until - old_c if replay_until > old_c else 0
        self._emit(
            phase="calibration",
            num_samples=self._frame.num_samples,
            omega=schedule.omega,
        )

        with timer.phase("adaptive_sampling"), obs_trace.span(
            "adaptive_sampling", omega=schedule.omega
        ):
            # Realign with the cold run's check grid, then continue the
            # standard loop.  Boundaries strictly before the current position
            # were decided by the looser certificate already (monotone
            # guarantees: the tighter rule cannot fire before the looser one
            # did), so drawing straight to the next shared boundary is safe.
            tau = self._frame.num_samples
            aligned = schedule.next_boundary(tau)
            if aligned > tau:
                self._draw(aligned - tau, self._rng)
            self._advance_to_stop(schedule)

        self._eps, self._delta = target.eps, target.delta
        self._omega = schedule.omega
        result = self._build_result(timer, samples_reused=reused)
        if replayed:
            result.extra["samples_replayed"] = float(replayed)
        return result

    # ------------------------------------------------------------------ #
    # Confidence-aware queries
    # ------------------------------------------------------------------ #
    def _result_for_bounds(self) -> BetweennessResult:
        if not self._native and self._last_result is not None:
            return self._last_result
        return BetweennessResult(
            scores=self._frame.betweenness_estimates(),
            num_samples=self._frame.num_samples,
            eps=self._eps,
            delta=self._delta,
            omega=self._omega,
            vertex_diameter=self._vd,
        )

    def peek(self) -> ConfidenceEstimate:
        """The current point estimate with per-vertex confidence bounds.

        Valid at any epoch boundary — before ``run`` the bounds are infinite,
        mid-session they reflect exactly the f/g deviation bounds of the
        samples accumulated so far.  ``peek`` never draws samples.
        """
        result = self._result_for_bounds()
        lower, upper = confidence_bounds(result, self._delta_l, self._delta_u)
        return ConfidenceEstimate(
            scores=result.scores,
            lower_bounds=lower,
            upper_bounds=upper,
            num_samples=int(result.num_samples),
            eps=self._eps,
            delta=self._delta,
        )

    def top_k(self, k: int) -> TopKResult:
        """Certified top-k against the session state (see :mod:`repro.core.topk`).

        Uses the session's live calibration vectors when available, so the
        separation test runs at exactly the confidence level the stopping
        rule certified.
        """
        return identify_top_k(
            self._result_for_bounds(), k, delta_l=self._delta_l, delta_u=self._delta_u
        )

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    # ------------------------------------------------------------------ #
    def _graph_identity(self) -> Dict[str, object]:
        source = getattr(self._graph, "source_path", None)
        checksum = None
        if source is not None:
            try:
                from repro.store.catalog import _header_checksum
                from repro.store.format import read_header

                checksum = _header_checksum(read_header(source))
            except Exception:  # noqa: BLE001 - identity is best-effort metadata
                checksum = None
        return {
            "num_vertices": int(self._graph.num_vertices),
            "num_edges": int(self._graph.num_edges),
            "source_path": None if source is None else str(source),
            "checksum": checksum,
        }

    def checkpoint(self, path: PathLike) -> Path:
        """Snapshot the session to ``path`` (atomically, CRC-checked).

        The snapshot captures everything :meth:`restore` needs to continue
        the exact sample stream: accumulators, calibration frame, both RNG
        states and the scalar run state.  Returns the path written.
        """
        with obs_trace.span("session.checkpoint"):
            return self._checkpoint_to(path)

    def _checkpoint_to(self, path: PathLike) -> Path:
        if not self._native:
            raise SessionCapabilityError(
                f"backend {self.algorithm!r} does not support checkpointing"
            )
        if not self._ran:
            raise SessionStateError("nothing to checkpoint: run() has not completed")
        if self._rng is None:  # trivial (< 2 vertices) sessions have no engine
            self._ensure_engine()
            self._calibration_frame = self._calibration_frame or StateFrame.zeros(
                self._graph.num_vertices
            )
            self._calibration_rng_state = (
                self._calibration_rng_state or _jsonable_rng_state(self._rng)
            )
        meta = {
            "kind": _SNAPSHOT_KIND,
            "created_at": time.time(),
            "graph": self._graph_identity(),
            "options": asdict(self._options),
            "batch_size": self._batch_size,
            "kernel": self._kernel,
            "achieved": {"eps": self._eps, "delta": self._delta},
            "omega": self._omega,
            "vertex_diameter": self._vd,
            "checks": int(self._checks),
            "frame": self._frame.scalar_state(),
            "calibration": {
                **self._calibration_frame.scalar_state(),
                "rng_state": self._calibration_rng_state,
            },
            "rng_state": _jsonable_rng_state(self._rng),
        }
        arrays = {
            "counts": self._frame.counts,
            "calibration_counts": self._calibration_frame.counts,
        }
        if (
            self._sample_log is not None
            and self._sample_log.num_samples == self._frame.num_samples
        ):
            meta["sample_log"] = {"num_samples": self._sample_log.num_samples}
            arrays.update(self._sample_log.snapshot_arrays())
        write_snapshot(path, meta, arrays)
        return Path(path)

    @classmethod
    def restore(
        cls,
        path: PathLike,
        *,
        graph: Optional[CSRGraph] = None,
        progress: Optional[ProgressCallback] = None,
        batch_size: object = None,
    ) -> "EstimationSession":
        """Rebuild a session from a :meth:`checkpoint` snapshot.

        ``graph`` may be passed explicitly (it is validated against the
        recorded identity); otherwise the graph is re-opened from the
        recorded ``source_path`` — which is how a refinement worker in
        another process resumes against the shared ``.rcsr`` store.
        """
        with obs_trace.span("session.restore"):
            return cls._restore_from(
                path, graph=graph, progress=progress, batch_size=batch_size
            )

    @classmethod
    def _restore_from(
        cls,
        path: PathLike,
        *,
        graph: Optional[CSRGraph] = None,
        progress: Optional[ProgressCallback] = None,
        batch_size: object = None,
    ) -> "EstimationSession":
        meta, arrays = read_snapshot(path)
        require_keys(meta, _REQUIRED_META, path)
        if meta.get("kind") != _SNAPSHOT_KIND:
            raise SnapshotError(f"{path}: not an estimation-session snapshot")
        identity = meta["graph"]
        if graph is None:
            source = identity.get("source_path")
            if not source:
                raise SnapshotError(
                    f"{path}: snapshot records no graph source path; pass the "
                    "graph explicitly to restore()"
                )
            from repro.store import load_graph

            graph = load_graph(source)
        if int(graph.num_vertices) != int(identity["num_vertices"]):
            raise SnapshotError(
                f"{path}: graph mismatch (snapshot has {identity['num_vertices']} "
                f"vertices, provided graph has {graph.num_vertices})"
            )
        recorded_checksum = identity.get("checksum")
        if recorded_checksum is not None and getattr(graph, "source_path", None):
            try:
                from repro.store.catalog import _header_checksum
                from repro.store.format import read_header

                current = _header_checksum(read_header(graph.source_path))
            except Exception:  # noqa: BLE001 - non-.rcsr sources have no checksum
                current = None
            if current is not None and current != recorded_checksum:
                raise SnapshotError(
                    f"{path}: graph contents changed since the snapshot "
                    f"(checksum {current} != {recorded_checksum})"
                )

        for name in ("counts", "calibration_counts"):
            if name not in arrays:
                raise SnapshotError(f"{path}: snapshot lacks the {name!r} array")
            if arrays[name].size != graph.num_vertices:
                raise SnapshotError(
                    f"{path}: {name!r} length {arrays[name].size} does not match "
                    f"the graph ({graph.num_vertices} vertices)"
                )

        try:
            options = KadabraOptions(**meta["options"])
        except (TypeError, ValueError) as exc:
            raise SnapshotError(f"{path}: invalid options in snapshot: {exc}") from None

        session = cls(
            graph,
            options,
            progress=progress,
            batch_size=meta.get("batch_size", "auto") if batch_size is None else batch_size,
            kernel=meta.get("kernel"),
        )
        session._ran = True
        achieved = meta["achieved"]
        session._eps = achieved.get("eps")
        session._delta = achieved.get("delta")
        session._omega = None if meta["omega"] is None else int(meta["omega"])
        session._vd = (
            None if meta["vertex_diameter"] is None else int(meta["vertex_diameter"])
        )
        session._checks = int(meta["checks"])
        session._frame = StateFrame.from_scalar_state(meta["frame"], arrays["counts"])
        session._calibration_frame = StateFrame.from_scalar_state(
            meta["calibration"], arrays["calibration_counts"]
        )
        session._calibration_rng_state = meta["calibration"].get("rng_state")
        # Pre-log snapshots restore fine; the session just is not
        # update-refinable (repro.evolve requires the per-sample log).
        session._sample_log = None
        if isinstance(meta.get("sample_log"), dict):
            try:
                log = SampleLog.from_snapshot_arrays(arrays)
            except (KeyError, ValueError) as exc:
                raise SnapshotError(f"{path}: invalid sample log: {exc}") from None
            if log.num_samples != session._frame.num_samples:
                raise SnapshotError(
                    f"{path}: sample log holds {log.num_samples} samples but the "
                    f"frame holds {session._frame.num_samples}"
                )
            session._sample_log = log
        try:
            session._rng = _rng_from_state(meta["rng_state"])
        except (TypeError, ValueError, KeyError) as exc:
            raise SnapshotError(f"{path}: invalid RNG state: {exc}") from None
        from repro.core.kadabra import make_sampler

        session._sampler = make_sampler(graph, options)
        # Recompute the stopping state instead of storing 2n more floats: the
        # calibration is a deterministic function of the stored frame.
        if (
            session._eps is not None
            and session._delta is not None
            and session._omega is not None
            and session._calibration_frame.num_samples > 0
        ):
            session._recalibrate(session._eps, session._delta, session._omega)
        return session


def open_session(
    graph,
    *,
    algorithm: str = "sequential",
    seed=None,
    options: Optional[KadabraOptions] = None,
    resources=None,
    callbacks=None,
    **option_overrides,
) -> EstimationSession:
    """Open an estimation session — the handle behind the one-shot facade.

    Parameters mirror :func:`repro.estimate_betweenness`: ``graph`` may be a
    :class:`~repro.graph.csr.CSRGraph`, a path or a catalog name;
    ``algorithm`` is a backend registry name or ``"auto"``; ``options`` plus
    ``seed``/keyword overrides configure the run.  ``eps``/``delta`` may be
    set here as defaults but are typically passed to
    :meth:`EstimationSession.run` / :meth:`EstimationSession.refine`.

    Only backends registered with ``supports_refinement=True`` (the
    sequential adaptive engine) return fully resumable sessions; the rest are
    delegated (``run`` works, ``refine``/``checkpoint`` raise
    :class:`SessionCapabilityError`).
    """
    from repro.api import backends as _backends  # noqa: F401  (populate registry)
    from repro.api.registry import AUTO, get_backend, select_backend
    from repro.api.resources import Resources
    from repro.util.progress import combine_callbacks, tag_backend

    if isinstance(graph, (str, Path)):
        from repro.store import load_graph

        graph = load_graph(graph)
    if not hasattr(graph, "num_vertices"):
        raise TypeError(
            f"graph must be a CSRGraph-like object, got {type(graph).__name__}"
        )
    resources = resources if resources is not None else Resources()
    if not isinstance(resources, Resources):
        raise TypeError("resources must be a repro.api.Resources instance")
    if algorithm == AUTO:
        spec = select_backend(graph.num_vertices, resources)
    else:
        spec = get_backend(algorithm)

    base = options if options is not None else KadabraOptions()
    changes = dict(option_overrides)
    if seed is not None:
        changes["seed"] = seed
    opts = base.with_(**changes) if changes else base

    progress = tag_backend(combine_callbacks(callbacks), spec.name)
    return EstimationSession(
        graph,
        opts,
        progress=progress,
        batch_size=resources.batch_size,
        _spec=spec,
        _resources=resources,
    )
