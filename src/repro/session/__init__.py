"""Resumable estimation sessions (see :mod:`repro.session.session`).

The session layer turns the one-shot ``estimate_betweenness`` call into a
handle: :func:`open_session` creates an :class:`EstimationSession` that owns
the RNG stream, scratch pools and stopping state; ``run`` produces the
classic result, ``refine`` tightens it by sampling only the delta,
``checkpoint``/``restore`` move sessions across processes, and
``peek``/``top_k`` answer confidence-aware queries from the live
accumulators.
"""

from repro.session.session import (
    ConfidenceEstimate,
    EstimationSession,
    SessionCapabilityError,
    SessionStateError,
    open_session,
)
from repro.session.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    read_snapshot,
    read_snapshot_meta,
    write_snapshot,
)

__all__ = [
    "ConfidenceEstimate",
    "EstimationSession",
    "SNAPSHOT_VERSION",
    "SessionCapabilityError",
    "SessionStateError",
    "SnapshotError",
    "open_session",
    "read_snapshot",
    "read_snapshot_meta",
    "write_snapshot",
]
