"""Per-sample path log: what makes a session checkpoint *update-refinable*.

The aggregate :class:`~repro.core.state_frame.StateFrame` is a sufficient
statistic for the static algorithm — per-vertex counters plus a sample count —
but it cannot answer the question an evolving graph poses: *which* of the
accumulated samples did a given edge mutation invalidate?  The
:class:`SampleLog` keeps exactly the per-sample facts needed to answer it:

* ``sources``/``targets`` — the sampled vertex pair,
* ``lengths`` — the hop distance ``d(s, t)`` at sampling time (``-1`` for a
  disconnected pair; an *adjacent* pair has length 1 and an empty interior,
  which is why the interior alone cannot stand in for the distance),
* ``vertices``/``indptr`` — the interior path vertices in CSR layout (the
  vertices whose counters the sample incremented).

With these, :mod:`repro.evolve.incremental` runs the exact invalidation test
(a deleted edge lay on some shortest ``s``-``t`` path; an inserted edge
created a ``<=``-length one) and performs *surgery*: subtract the stale
contributions, re-sample the same pairs on the mutated graph, and
:meth:`replace` the log rows in place — keeping the log consistent with the
frame at all times.

The log serializes into the session snapshot as five extra float64 arrays
(``log_*``; exact for values below 2**53), so old snapshots restore fine
without one — they are simply not update-refinable.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["SampleLog"]

#: Snapshot array names, in file order (``meta["sample_log"]`` marks presence).
SNAPSHOT_ARRAYS = (
    "log_sources",
    "log_targets",
    "log_lengths",
    "log_indptr",
    "log_vertices",
)


def _segment_gather(values: np.ndarray, indptr: np.ndarray, sample_idx: np.ndarray) -> np.ndarray:
    """Concatenate the CSR segments of ``sample_idx``, in the given order."""
    counts = np.diff(indptr)[sample_idx]
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=values.dtype)
    # offsets of every gathered element into `values`: segment start repeated
    # per element, plus a within-segment ramp (0, 1, ..., count-1 per segment).
    starts = np.repeat(indptr[sample_idx], counts)
    ramp = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return values[starts + ramp]


class SampleLog:
    """Append-only per-sample record of one session's sampled paths."""

    __slots__ = ("sources", "targets", "lengths", "indptr", "vertices")

    def __init__(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        lengths: np.ndarray,
        indptr: np.ndarray,
        vertices: np.ndarray,
    ) -> None:
        self.sources = np.asarray(sources, dtype=np.int64)
        self.targets = np.asarray(targets, dtype=np.int64)
        self.lengths = np.asarray(lengths, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.vertices = np.asarray(vertices, dtype=np.int64)
        k = self.sources.size
        if self.targets.size != k or self.lengths.size != k:
            raise ValueError("sample log arrays disagree on the sample count")
        if self.indptr.size != k + 1 or int(self.indptr[-1]) != self.vertices.size:
            raise ValueError("sample log contribution layout is inconsistent")

    @classmethod
    def empty(cls) -> "SampleLog":
        return cls(
            sources=np.zeros(0, np.int64),
            targets=np.zeros(0, np.int64),
            lengths=np.zeros(0, np.int64),
            indptr=np.zeros(1, np.int64),
            vertices=np.zeros(0, np.int64),
        )

    # ------------------------------------------------------------------ #
    @property
    def num_samples(self) -> int:
        return int(self.sources.size)

    def contributions_of(self, i: int) -> np.ndarray:
        """Interior path vertices of sample ``i`` (a view)."""
        return self.vertices[self.indptr[i] : self.indptr[i + 1]]

    def contributions_concat(self, sample_idx: np.ndarray) -> np.ndarray:
        """All interior vertices of the given samples, concatenated."""
        return _segment_gather(self.vertices, self.indptr, np.asarray(sample_idx, np.int64))

    # ------------------------------------------------------------------ #
    def append_batch(self, batch) -> None:
        """Log one :class:`~repro.kernels.batch.SampleBatch` of fresh samples."""
        lengths = np.where(
            np.asarray(batch.connected, dtype=bool),
            np.asarray(batch.lengths, dtype=np.int64),
            np.int64(-1),
        )
        self.sources = np.concatenate([self.sources, np.asarray(batch.sources, np.int64)])
        self.targets = np.concatenate([self.targets, np.asarray(batch.targets, np.int64)])
        self.lengths = np.concatenate([self.lengths, lengths])
        offset = self.indptr[-1]
        self.indptr = np.concatenate(
            [self.indptr, np.asarray(batch.contrib_indptr[1:], np.int64) + offset]
        )
        self.vertices = np.concatenate(
            [self.vertices, np.asarray(batch.contrib_vertices, np.int64)]
        )

    def replace(self, sample_idx: np.ndarray, batch) -> None:
        """Overwrite the logged rows ``sample_idx`` with re-sampled paths.

        ``batch`` must hold one sample per index, in the same order and for
        the same (source, target) pairs — the incremental estimator re-samples
        the *pair*, never swaps it, so only lengths and interiors change.
        """
        sample_idx = np.asarray(sample_idx, dtype=np.int64)
        if sample_idx.size != batch.num_samples:
            raise ValueError("replacement batch size does not match the index set")
        if sample_idx.size == 0:
            return
        if not (
            np.array_equal(self.sources[sample_idx], np.asarray(batch.sources, np.int64))
            and np.array_equal(self.targets[sample_idx], np.asarray(batch.targets, np.int64))
        ):
            raise ValueError("replacement batch pairs do not match the logged pairs")
        self.lengths[sample_idx] = np.where(
            np.asarray(batch.connected, dtype=bool),
            np.asarray(batch.lengths, dtype=np.int64),
            np.int64(-1),
        )
        counts = np.diff(self.indptr)
        counts[sample_idx] = np.diff(np.asarray(batch.contrib_indptr, np.int64))
        new_indptr = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=new_indptr[1:])
        new_vertices = np.empty(int(new_indptr[-1]), dtype=np.int64)
        keep = np.ones(self.num_samples, dtype=bool)
        keep[sample_idx] = False
        kept_idx = np.flatnonzero(keep)
        kept_positions = _segment_gather(
            np.arange(new_vertices.size, dtype=np.int64), new_indptr, kept_idx
        )
        new_vertices[kept_positions] = _segment_gather(self.vertices, self.indptr, kept_idx)
        replaced_positions = _segment_gather(
            np.arange(new_vertices.size, dtype=np.int64), new_indptr, sample_idx
        )
        new_vertices[replaced_positions] = np.asarray(batch.contrib_vertices, np.int64)
        self.indptr = new_indptr
        self.vertices = new_vertices

    # ------------------------------------------------------------------ #
    # Snapshot round-trip
    # ------------------------------------------------------------------ #
    def snapshot_arrays(self) -> Dict[str, np.ndarray]:
        """The log as the named snapshot arrays (float64-coerced on write)."""
        return {
            "log_sources": self.sources,
            "log_targets": self.targets,
            "log_lengths": self.lengths,
            "log_indptr": self.indptr,
            "log_vertices": self.vertices,
        }

    @classmethod
    def from_snapshot_arrays(cls, arrays: Dict[str, np.ndarray]) -> "SampleLog":
        """Rebuild a log from snapshot arrays (raises ``KeyError`` if absent)."""
        return cls(
            sources=arrays["log_sources"].astype(np.int64),
            targets=arrays["log_targets"].astype(np.int64),
            lengths=arrays["log_lengths"].astype(np.int64),
            indptr=arrays["log_indptr"].astype(np.int64),
            vertices=arrays["log_vertices"].astype(np.int64),
        )
