"""Connected components and largest-connected-component extraction.

The paper considers the largest connected component of disconnected inputs;
KADABRA's theory also assumes that sampled vertex pairs are connected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.traversal import UNREACHED, bfs_distances

__all__ = ["ConnectedComponents", "connected_components", "largest_connected_component", "is_connected"]


@dataclass
class ConnectedComponents:
    """Labelling of vertices by connected component.

    Attributes
    ----------
    labels:
        int64 array; ``labels[v]`` is the component id of vertex ``v``.
        Component ids are dense, starting at 0, ordered by discovery.
    sizes:
        int64 array of component sizes indexed by component id.
    """

    labels: np.ndarray
    sizes: np.ndarray

    @property
    def num_components(self) -> int:
        return int(self.sizes.size)

    def largest(self) -> int:
        """Id of the largest component (ties broken by smallest id)."""
        if self.sizes.size == 0:
            raise ValueError("graph has no vertices")
        return int(np.argmax(self.sizes))

    def members(self, component: int) -> np.ndarray:
        """Vertices of the given component, in increasing id order."""
        return np.flatnonzero(self.labels == component)


def connected_components(graph: CSRGraph) -> ConnectedComponents:
    """Label all connected components via repeated BFS."""
    n = graph.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    sizes: List[int] = []
    for v in range(n):
        if labels[v] >= 0:
            continue
        component = len(sizes)
        distances = bfs_distances(graph, v).distances
        members = np.flatnonzero(distances != UNREACHED)
        labels[members] = component
        sizes.append(int(members.size))
    return ConnectedComponents(labels=labels, sizes=np.asarray(sizes, dtype=np.int64))


def is_connected(graph: CSRGraph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if graph.num_vertices == 0:
        return True
    distances = bfs_distances(graph, 0).distances
    return bool(np.all(distances != UNREACHED))


def largest_connected_component(graph: CSRGraph) -> CSRGraph:
    """Return the induced subgraph of the largest connected component.

    Vertex ids are relabelled to ``0..k-1`` preserving the original order.
    """
    if graph.num_vertices == 0:
        return graph
    comps = connected_components(graph)
    members = comps.members(comps.largest())
    if members.size == graph.num_vertices:
        return graph
    return graph.subgraph(members)
