"""Incremental construction of :class:`~repro.graph.csr.CSRGraph` instances."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Collects edges and produces a de-duplicated undirected CSR graph.

    The builder performs the normalisations the paper applies to its inputs:
    the graph is treated as undirected and unweighted, self-loops are dropped,
    and parallel edges are merged.

    Parameters
    ----------
    num_vertices:
        Optional number of vertices.  If omitted, the vertex count is inferred
        as ``max(vertex id) + 1`` over all added edges.
    """

    def __init__(self, num_vertices: int | None = None) -> None:
        if num_vertices is not None and num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        self._declared_n = num_vertices
        self._sources: List[np.ndarray] = []
        self._targets: List[np.ndarray] = []
        self._max_seen = -1

    # ------------------------------------------------------------------ #
    def add_edge(self, u: int, v: int) -> None:
        """Add a single undirected edge ``{u, v}``."""
        self.add_edges([(u, v)])

    def add_edges(
        self, edges: Iterable[Tuple[int, int]] | np.ndarray | Sequence[Sequence[int]]
    ) -> None:
        """Add a batch of undirected edges."""
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if arr.size == 0:
            return
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be an iterable of (u, v) pairs")
        arr = arr.astype(np.int64, copy=False)
        if np.any(arr < 0):
            raise ValueError("vertex ids must be non-negative")
        self._max_seen = max(self._max_seen, int(arr.max()))
        self._sources.append(arr[:, 0].copy())
        self._targets.append(arr[:, 1].copy())

    @property
    def num_pending_edges(self) -> int:
        """Number of edge records added so far (before de-duplication)."""
        return int(sum(a.size for a in self._sources))

    # ------------------------------------------------------------------ #
    def build(self) -> CSRGraph:
        """Produce the CSR graph from the accumulated edges."""
        if self._declared_n is not None:
            n = self._declared_n
            if self._max_seen >= n:
                raise ValueError(
                    f"edge references vertex {self._max_seen} but num_vertices={n}"
                )
        else:
            n = self._max_seen + 1
        if n == 0:
            return CSRGraph.empty(0)
        if not self._sources:
            return CSRGraph.empty(n)

        u = np.concatenate(self._sources)
        v = np.concatenate(self._targets)
        # Drop self-loops.
        mask = u != v
        u, v = u[mask], v[mask]
        if u.size == 0:
            return CSRGraph.empty(n)
        # Canonicalise (min, max) and de-duplicate.
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        keys = lo * np.int64(n) + hi
        unique_keys = np.unique(keys)
        lo = unique_keys // n
        hi = unique_keys % n
        # Symmetrise: each undirected edge contributes two directed arcs.
        heads = np.concatenate((lo, hi))
        tails = np.concatenate((hi, lo))
        order = np.lexsort((tails, heads))
        heads = heads[order]
        tails = tails[order]
        counts = np.bincount(heads, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return CSRGraph(indptr, tails, validate=False)
