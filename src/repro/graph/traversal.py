"""Breadth-first-search kernels.

Every sample taken by KADABRA is one (bidirectional) BFS; the traversal
kernels below are therefore the innermost loops of the whole system.  They are
implemented as level-synchronous frontier sweeps over the CSR arrays so that
each level is processed with vectorized numpy operations (see the HPC guide:
vectorize the inner loops, avoid Python-level per-edge work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "BFSResult",
    "bfs_distances",
    "bfs_with_sigma",
    "eccentricity",
    "farthest_vertex",
    "bfs_tree_parents",
]

UNREACHED = -1


@dataclass
class BFSResult:
    """Result of a single-source BFS.

    Attributes
    ----------
    source:
        The BFS source vertex.
    distances:
        int64 array of length ``n``; ``-1`` marks unreachable vertices.
    sigma:
        Optional float64 array of shortest-path counts from the source
        (present only for :func:`bfs_with_sigma`).
    levels:
        The frontier of each BFS level (lists of vertex arrays); level 0 is
        ``[source]``.
    """

    source: int
    distances: np.ndarray
    sigma: Optional[np.ndarray] = None
    levels: Optional[List[np.ndarray]] = None

    @property
    def eccentricity(self) -> int:
        """Largest finite distance from the source."""
        reached = self.distances[self.distances >= 0]
        if reached.size == 0:
            return 0
        return int(reached.max())

    @property
    def num_reached(self) -> int:
        """Number of vertices reachable from the source (including itself)."""
        return int(np.count_nonzero(self.distances >= 0))


def _expand_frontier(
    graph: CSRGraph, frontier: np.ndarray, distances: np.ndarray, level: int
) -> np.ndarray:
    """Return the next BFS frontier given the current one (vectorized)."""
    indptr = graph.indptr
    indices = graph.indices
    starts = indptr[frontier]
    stops = indptr[frontier + 1]
    total = int(np.sum(stops - starts))
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Gather all neighbours of the frontier.
    neighbor_chunks = [indices[s:e] for s, e in zip(starts, stops)]
    neighbors = np.concatenate(neighbor_chunks).astype(np.int64, copy=False)
    fresh = neighbors[distances[neighbors] == UNREACHED]
    if fresh.size == 0:
        return np.empty(0, dtype=np.int64)
    next_frontier = np.unique(fresh)
    distances[next_frontier] = level
    return next_frontier


def bfs_distances(
    graph: CSRGraph, source: int, *, keep_levels: bool = False
) -> BFSResult:
    """Single-source BFS returning hop distances.

    Parameters
    ----------
    graph:
        The input graph.
    source:
        BFS source vertex.
    keep_levels:
        If true, retain the per-level frontiers in the result.
    """
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    distances = np.full(n, UNREACHED, dtype=np.int64)
    distances[source] = 0
    frontier = np.array([source], dtype=np.int64)
    levels: Optional[List[np.ndarray]] = [frontier] if keep_levels else None
    level = 0
    while frontier.size > 0:
        level += 1
        frontier = _expand_frontier(graph, frontier, distances, level)
        if keep_levels and frontier.size > 0:
            levels.append(frontier)
    return BFSResult(source=source, distances=distances, levels=levels)


def bfs_with_sigma(graph: CSRGraph, source: int) -> BFSResult:
    """Single-source BFS that also counts shortest paths (``sigma``).

    ``sigma[v]`` is the number of distinct shortest source-``v`` paths; this is
    the quantity needed to sample a shortest path uniformly at random and it is
    also the forward pass of Brandes' algorithm.
    """
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError(f"source {source} out of range [0, {n})")
    indptr = graph.indptr
    indices = graph.indices
    distances = np.full(n, UNREACHED, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    distances[source] = 0
    sigma[source] = 1.0
    frontier = np.array([source], dtype=np.int64)
    levels: List[np.ndarray] = [frontier]
    level = 0
    while frontier.size > 0:
        level += 1
        starts = indptr[frontier]
        stops = indptr[frontier + 1]
        degs = stops - starts
        total = int(np.sum(degs))
        if total == 0:
            break
        neighbor_chunks = [indices[s:e] for s, e in zip(starts, stops)]
        neighbors = np.concatenate(neighbor_chunks).astype(np.int64, copy=False)
        origins = np.repeat(frontier, degs)
        # New vertices discovered at this level.
        undiscovered = distances[neighbors] == UNREACHED
        fresh = np.unique(neighbors[undiscovered])
        if fresh.size > 0:
            distances[fresh] = level
        # Accumulate sigma along edges (u in frontier) -> (v at this level).
        onlevel = distances[neighbors] == level
        if np.any(onlevel):
            np.add.at(sigma, neighbors[onlevel], sigma[origins[onlevel]])
        if fresh.size == 0:
            break
        frontier = fresh
        levels.append(frontier)
    return BFSResult(source=source, distances=distances, sigma=sigma, levels=levels)


def bfs_tree_parents(graph: CSRGraph, source: int) -> Tuple[np.ndarray, np.ndarray]:
    """BFS returning ``(distances, parents)`` for one arbitrary BFS tree.

    ``parents[source] == source`` and ``parents[v] == -1`` for unreachable
    vertices.  Used by diameter heuristics and tests.
    """
    n = graph.num_vertices
    distances = np.full(n, UNREACHED, dtype=np.int64)
    parents = np.full(n, -1, dtype=np.int64)
    distances[source] = 0
    parents[source] = source
    frontier = np.array([source], dtype=np.int64)
    indptr = graph.indptr
    indices = graph.indices
    level = 0
    while frontier.size > 0:
        level += 1
        starts = indptr[frontier]
        stops = indptr[frontier + 1]
        degs = stops - starts
        if int(np.sum(degs)) == 0:
            break
        neighbor_chunks = [indices[s:e] for s, e in zip(starts, stops)]
        neighbors = np.concatenate(neighbor_chunks).astype(np.int64, copy=False)
        origins = np.repeat(frontier, degs)
        undiscovered = distances[neighbors] == UNREACHED
        if not np.any(undiscovered):
            break
        cand_v = neighbors[undiscovered]
        cand_p = origins[undiscovered]
        # Keep the first parent for each newly discovered vertex.
        order = np.argsort(cand_v, kind="stable")
        cand_v = cand_v[order]
        cand_p = cand_p[order]
        first = np.ones(cand_v.size, dtype=bool)
        first[1:] = cand_v[1:] != cand_v[:-1]
        new_v = cand_v[first]
        new_p = cand_p[first]
        distances[new_v] = level
        parents[new_v] = new_p
        frontier = new_v
    return distances, parents


def eccentricity(graph: CSRGraph, v: int) -> int:
    """Eccentricity of ``v`` within its connected component."""
    return bfs_distances(graph, v).eccentricity


def farthest_vertex(graph: CSRGraph, source: int) -> Tuple[int, int]:
    """Return ``(vertex, distance)`` of a vertex farthest from ``source``."""
    result = bfs_distances(graph, source)
    reached = np.flatnonzero(result.distances >= 0)
    far = reached[np.argmax(result.distances[reached])]
    return int(far), int(result.distances[far])
