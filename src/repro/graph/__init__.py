"""Graph substrate: CSR graphs, builders, I/O, traversal and generators."""

from repro.graph.csr import CSRGraph
from repro.graph.builder import GraphBuilder
from repro.graph.components import (
    ConnectedComponents,
    connected_components,
    largest_connected_component,
    is_connected,
)
from repro.graph.traversal import (
    BFSResult,
    bfs_distances,
    bfs_with_sigma,
    bfs_tree_parents,
    eccentricity,
    farthest_vertex,
)
from repro.graph.io import (
    iter_edge_chunks,
    read_edge_list,
    write_edge_list,
    read_metis,
    write_metis,
)

__all__ = [
    "CSRGraph",
    "GraphBuilder",
    "ConnectedComponents",
    "connected_components",
    "largest_connected_component",
    "is_connected",
    "BFSResult",
    "bfs_distances",
    "bfs_with_sigma",
    "bfs_tree_parents",
    "eccentricity",
    "farthest_vertex",
    "iter_edge_chunks",
    "read_edge_list",
    "write_edge_list",
    "read_metis",
    "write_metis",
]
