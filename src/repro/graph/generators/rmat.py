"""R-MAT (recursive matrix) graph generator.

The paper evaluates scalability on R-MAT graphs with parameters
``(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`` (the Graph500 configuration) and a
density of ``|E| = 30 |V|``.  The generator below follows the classic
Chakrabarti-Zhan-Faloutsos recursive quadrant-selection procedure with the
customary noise term that prevents exact self-similarity.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph

__all__ = ["rmat_graph", "GRAPH500_PARAMS"]

#: Graph500 reference parameters used in the paper.
GRAPH500_PARAMS = (0.57, 0.19, 0.19, 0.05)


def rmat_graph(
    scale: int,
    edge_factor: float = 30.0,
    *,
    a: float = GRAPH500_PARAMS[0],
    b: float = GRAPH500_PARAMS[1],
    c: float = GRAPH500_PARAMS[2],
    d: float = GRAPH500_PARAMS[3],
    noise: float = 0.1,
    seed: int | None = None,
) -> CSRGraph:
    """Generate an undirected R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the number of vertices.
    edge_factor:
        Number of generated edge records per vertex (before de-duplication).
        The paper uses 30.
    a, b, c, d:
        Quadrant probabilities; must sum to 1.
    noise:
        Multiplicative noise applied to the quadrant probabilities at every
        recursion level (0 disables it).
    seed:
        RNG seed.

    Returns
    -------
    CSRGraph
        The generated graph (self-loops removed, duplicates merged, hence the
        final edge count is somewhat below ``edge_factor * 2**scale``).
    """
    if scale < 0:
        raise ValueError("scale must be non-negative")
    if scale > 32:
        raise ValueError("scale > 32 is not supported")
    total = a + b + c + d
    if not np.isclose(total, 1.0, atol=1e-9):
        raise ValueError(f"R-MAT probabilities must sum to 1 (got {total})")
    if min(a, b, c, d) < 0:
        raise ValueError("R-MAT probabilities must be non-negative")
    if edge_factor <= 0:
        raise ValueError("edge_factor must be positive")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    num_records = int(round(edge_factor * n))
    if num_records == 0 or n <= 1:
        return CSRGraph.empty(n)

    sources = np.zeros(num_records, dtype=np.int64)
    targets = np.zeros(num_records, dtype=np.int64)
    for level in range(scale):
        # Per-record, per-level noisy quadrant probabilities.
        if noise > 0.0:
            ab_noise = 1.0 + noise * (rng.random(num_records) - 0.5) * 2.0
            a_noise = 1.0 + noise * (rng.random(num_records) - 0.5) * 2.0
            c_noise = 1.0 + noise * (rng.random(num_records) - 0.5) * 2.0
        else:
            ab_noise = a_noise = c_noise = np.ones(num_records)
        ab = (a + b) * ab_noise
        a_frac = np.clip(a * a_noise / np.maximum(ab, 1e-300), 0.0, 1.0)
        c_frac = np.clip(
            c * c_noise / np.maximum((c + d) * ab_noise, 1e-300), 0.0, 1.0
        )
        ab = np.clip(ab, 0.0, 1.0)
        r1 = rng.random(num_records)
        r2 = rng.random(num_records)
        go_right_half = r1 >= ab  # bottom half of the matrix (source bit set)
        sources |= go_right_half.astype(np.int64) << (scale - 1 - level)
        # Column bit: depends on which half we are in.
        frac = np.where(go_right_half, c_frac, a_frac)
        go_bottom = r2 >= frac
        targets |= go_bottom.astype(np.int64) << (scale - 1 - level)

    builder = GraphBuilder(num_vertices=n)
    builder.add_edges(np.column_stack((sources, targets)))
    return builder.build()
