"""Road-network-like generators (high-diameter, near-planar graphs).

The paper's hardest shared-memory instances are road networks
(``roadNet-PA``, ``roadNet-CA``, ``dimacs9-NE``): sparse graphs with average
degree below 3 and diameters in the hundreds to thousands.  The perturbed-grid
generator below produces synthetic proxies with the same character: an
``rows x cols`` lattice whose edges are randomly deleted (keeping the graph
connected) plus a few random "highway" shortcuts, yielding average degree
~2.5-3 and a diameter on the order of ``rows + cols``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.components import largest_connected_component
from repro.graph.csr import CSRGraph

__all__ = ["grid_graph", "road_network_graph", "path_graph", "cycle_graph", "star_graph", "complete_graph"]


def grid_graph(rows: int, cols: int, *, periodic: bool = False) -> CSRGraph:
    """A ``rows x cols`` lattice graph (optionally with wrap-around edges)."""
    if rows < 0 or cols < 0:
        raise ValueError("rows and cols must be non-negative")
    n = rows * cols
    if n == 0:
        return CSRGraph.empty(0)
    ids = np.arange(n, dtype=np.int64).reshape(rows, cols)
    edges: List[np.ndarray] = []
    if cols > 1:
        edges.append(np.column_stack((ids[:, :-1].ravel(), ids[:, 1:].ravel())))
    if rows > 1:
        edges.append(np.column_stack((ids[:-1, :].ravel(), ids[1:, :].ravel())))
    if periodic and cols > 2:
        edges.append(np.column_stack((ids[:, -1].ravel(), ids[:, 0].ravel())))
    if periodic and rows > 2:
        edges.append(np.column_stack((ids[-1, :].ravel(), ids[0, :].ravel())))
    builder = GraphBuilder(num_vertices=n)
    if edges:
        builder.add_edges(np.concatenate(edges, axis=0))
    return builder.build()


def road_network_graph(
    rows: int,
    cols: int,
    *,
    deletion_probability: float = 0.25,
    shortcut_fraction: float = 0.002,
    seed: int | None = None,
) -> CSRGraph:
    """A synthetic road-network proxy: a randomly thinned lattice with shortcuts.

    Parameters
    ----------
    rows, cols:
        Lattice dimensions before thinning.
    deletion_probability:
        Probability of removing each lattice edge.
    shortcut_fraction:
        Number of random long-range "highway" edges added, as a fraction of
        the vertex count.
    seed:
        RNG seed.

    Returns
    -------
    CSRGraph
        The largest connected component of the perturbed lattice.
    """
    if not (0.0 <= deletion_probability < 1.0):
        raise ValueError("deletion_probability must lie in [0, 1)")
    if shortcut_fraction < 0.0:
        raise ValueError("shortcut_fraction must be non-negative")
    rng = np.random.default_rng(seed)
    base = grid_graph(rows, cols)
    edges = base.edge_array()
    if edges.shape[0] > 0 and deletion_probability > 0.0:
        keep = rng.random(edges.shape[0]) >= deletion_probability
        edges = edges[keep]
    n = rows * cols
    num_shortcuts = int(round(shortcut_fraction * n))
    if num_shortcuts > 0 and n > 1:
        s = rng.integers(0, n, size=num_shortcuts)
        t = rng.integers(0, n, size=num_shortcuts)
        edges = np.concatenate((edges, np.column_stack((s, t))), axis=0)
    builder = GraphBuilder(num_vertices=n)
    builder.add_edges(edges)
    return largest_connected_component(builder.build())


def path_graph(n: int) -> CSRGraph:
    """A simple path on ``n`` vertices (diameter ``n - 1``)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n <= 1:
        return CSRGraph.empty(max(n, 0))
    v = np.arange(n - 1, dtype=np.int64)
    return CSRGraph.from_edges(np.column_stack((v, v + 1)), num_vertices=n)


def cycle_graph(n: int) -> CSRGraph:
    """A cycle on ``n`` vertices."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n <= 2:
        return path_graph(n)
    v = np.arange(n, dtype=np.int64)
    return CSRGraph.from_edges(np.column_stack((v, (v + 1) % n)), num_vertices=n)


def star_graph(n: int) -> CSRGraph:
    """A star with one centre (vertex 0) and ``n - 1`` leaves."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n <= 1:
        return CSRGraph.empty(max(n, 0))
    leaves = np.arange(1, n, dtype=np.int64)
    centre = np.zeros(n - 1, dtype=np.int64)
    return CSRGraph.from_edges(np.column_stack((centre, leaves)), num_vertices=n)


def complete_graph(n: int) -> CSRGraph:
    """The complete graph on ``n`` vertices."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n <= 1:
        return CSRGraph.empty(max(n, 0))
    u, v = np.triu_indices(n, k=1)
    return CSRGraph.from_edges(np.column_stack((u, v)), num_vertices=n)
