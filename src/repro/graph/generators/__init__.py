"""Synthetic graph generators used by experiments and tests."""

from repro.graph.generators.rmat import rmat_graph, GRAPH500_PARAMS
from repro.graph.generators.hyperbolic import hyperbolic_graph, estimate_disk_radius
from repro.graph.generators.grid import (
    grid_graph,
    road_network_graph,
    path_graph,
    cycle_graph,
    star_graph,
    complete_graph,
)
from repro.graph.generators.random_models import (
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    barabasi_albert,
    watts_strogatz,
)

__all__ = [
    "rmat_graph",
    "GRAPH500_PARAMS",
    "hyperbolic_graph",
    "estimate_disk_radius",
    "grid_graph",
    "road_network_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "erdos_renyi_gnm",
    "erdos_renyi_gnp",
    "barabasi_albert",
    "watts_strogatz",
]
