"""Classical random-graph models used for proxies and for tests.

* Erdős–Rényi ``G(n, m)`` and ``G(n, p)``.
* Barabási–Albert preferential attachment (power-law proxies for the social
  and hyperlink networks of Table I).
* Watts–Strogatz small-world (used in tests for medium-diameter graphs).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph

__all__ = ["erdos_renyi_gnm", "erdos_renyi_gnp", "barabasi_albert", "watts_strogatz"]


def erdos_renyi_gnm(n: int, m: int, *, seed: int | None = None) -> CSRGraph:
    """Uniform random graph with exactly ``m`` distinct edges (best effort).

    Edges are drawn with rejection of duplicates; if ``m`` exceeds the number
    of possible edges a :class:`ValueError` is raised.
    """
    if n < 0 or m < 0:
        raise ValueError("n and m must be non-negative")
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"m={m} exceeds the maximum {max_edges} for n={n}")
    rng = np.random.default_rng(seed)
    chosen: set[int] = set()
    edges: List[Tuple[int, int]] = []
    # Draw in vectorized batches with rejection.
    while len(chosen) < m:
        batch = max(1024, 2 * (m - len(chosen)))
        u = rng.integers(0, n, size=batch)
        v = rng.integers(0, n, size=batch)
        mask = u != v
        u, v = u[mask], v[mask]
        lo = np.minimum(u, v)
        hi = np.maximum(u, v)
        keys = lo * np.int64(n) + hi
        for key, a, b in zip(keys.tolist(), lo.tolist(), hi.tolist()):
            if key not in chosen:
                chosen.add(key)
                edges.append((a, b))
                if len(chosen) == m:
                    break
    return CSRGraph.from_edges(edges, num_vertices=n)


def erdos_renyi_gnp(n: int, p: float, *, seed: int | None = None) -> CSRGraph:
    """Bernoulli random graph ``G(n, p)``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if not (0.0 <= p <= 1.0):
        raise ValueError("p must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    if n <= 1 or p == 0.0:
        return CSRGraph.empty(max(n, 0))
    u, v = np.triu_indices(n, k=1)
    mask = rng.random(u.size) < p
    return CSRGraph.from_edges(np.column_stack((u[mask], v[mask])), num_vertices=n)


def barabasi_albert(n: int, attachments: int, *, seed: int | None = None) -> CSRGraph:
    """Barabási–Albert preferential-attachment graph.

    Each new vertex attaches to ``attachments`` existing vertices chosen with
    probability proportional to their current degree (using the standard
    repeated-endpoint trick).
    """
    if attachments < 1:
        raise ValueError("attachments must be >= 1")
    if n < attachments + 1:
        raise ValueError("n must be at least attachments + 1")
    rng = np.random.default_rng(seed)
    # Start from a star over the first (attachments + 1) vertices so that every
    # vertex has positive degree.
    repeated: List[int] = []
    edges: List[Tuple[int, int]] = []
    for v in range(1, attachments + 1):
        edges.append((0, v))
        repeated.extend((0, v))
    for new_vertex in range(attachments + 1, n):
        targets: set[int] = set()
        while len(targets) < attachments:
            pick = repeated[int(rng.integers(0, len(repeated)))]
            targets.add(pick)
        for t in targets:
            edges.append((new_vertex, t))
            repeated.extend((new_vertex, t))
    return CSRGraph.from_edges(edges, num_vertices=n)


def watts_strogatz(n: int, k: int, beta: float, *, seed: int | None = None) -> CSRGraph:
    """Watts–Strogatz small-world graph (ring lattice with rewiring)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if k % 2 != 0 or k < 0:
        raise ValueError("k must be a non-negative even integer")
    if k >= n and n > 0:
        raise ValueError("k must be smaller than n")
    if not (0.0 <= beta <= 1.0):
        raise ValueError("beta must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    if n <= 1 or k == 0:
        return CSRGraph.empty(max(n, 0))
    edges: List[Tuple[int, int]] = []
    half = k // 2
    for u in range(n):
        for offset in range(1, half + 1):
            v = (u + offset) % n
            if beta > 0.0 and rng.random() < beta:
                # Rewire to a uniformly random non-self endpoint.
                w = int(rng.integers(0, n))
                attempts = 0
                while w == u and attempts < 16:
                    w = int(rng.integers(0, n))
                    attempts += 1
                if w != u:
                    v = w
            edges.append((u, v))
    return CSRGraph.from_edges(edges, num_vertices=n)
