"""Random hyperbolic graph generator.

The paper's second family of synthetic instances are random hyperbolic graphs
with power-law exponent 3 and density ``|E| = 30 |V|``.  Vertices are points in
a hyperbolic disk; two vertices are adjacent iff their hyperbolic distance is
below the disk radius.  The radial density ``rho(r) ~ alpha * sinh(alpha r)``
with ``alpha = (gamma - 1) / 2`` yields a degree power law with exponent
``gamma``.

The threshold model below is the standard Krioukov et al. construction.  The
implementation bins vertices by angle so that candidate neighbour search stays
close to linear in the produced edge count (a pure all-pairs check would be
quadratic and unusable even at the scaled-down sizes used in the experiments).
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph

__all__ = ["hyperbolic_graph", "estimate_disk_radius"]


def estimate_disk_radius(n: int, avg_degree: float, gamma: float = 3.0) -> float:
    """Estimate the hyperbolic disk radius yielding the requested average degree.

    Uses the standard asymptotic relation ``k_avg ≈ (2/π) ξ² n e^{-R/2}`` with
    ``ξ = α / (α - 1/2)`` and ``α = (γ - 1)/2``, then refines the constant so
    that small instances land near the requested density.
    """
    if n < 2:
        return 1.0
    alpha = (gamma - 1.0) / 2.0
    if alpha <= 0.5:
        raise ValueError("gamma must be > 2 for a finite mean degree")
    xi = alpha / (alpha - 0.5)
    radius = 2.0 * math.log(2.0 * n * xi * xi / (math.pi * max(avg_degree, 1e-9)))
    return max(radius, 1.0)


def _hyperbolic_distance(r1, phi1, r2, phi2):
    """Hyperbolic distance between points given in polar coordinates."""
    dphi = np.pi - np.abs(np.pi - np.abs(phi1 - phi2))
    arg = np.cosh(r1) * np.cosh(r2) - np.sinh(r1) * np.sinh(r2) * np.cos(dphi)
    return np.arccosh(np.maximum(arg, 1.0))


def hyperbolic_graph(
    n: int,
    avg_degree: float = 60.0,
    gamma: float = 3.0,
    *,
    seed: int | None = None,
    radius: float | None = None,
) -> CSRGraph:
    """Generate a threshold random hyperbolic graph.

    Parameters
    ----------
    n:
        Number of vertices.
    avg_degree:
        Target average degree (the paper uses ``2 |E| / |V| = 60``).
    gamma:
        Power-law exponent of the degree distribution (the paper uses 3).
    seed:
        RNG seed.
    radius:
        Optional explicit disk radius; overrides the estimate from
        :func:`estimate_disk_radius`.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n <= 1:
        return CSRGraph.empty(max(n, 0))
    if avg_degree <= 0:
        raise ValueError("avg_degree must be positive")
    rng = np.random.default_rng(seed)
    alpha = (gamma - 1.0) / 2.0
    R = radius if radius is not None else estimate_disk_radius(n, avg_degree, gamma)

    # Radial coordinates with density ~ sinh(alpha r) via inverse transform.
    u = rng.random(n)
    radial = np.arccosh(1.0 + u * (np.cosh(alpha * R) - 1.0)) / alpha
    angular = rng.random(n) * 2.0 * np.pi

    # Sort by angle and bucket into wedges so that neighbour candidates are
    # restricted to nearby wedges (plus all high-centrality low-radius points).
    order = np.argsort(angular, kind="stable")
    radial = radial[order]
    angular = angular[order]
    # Map back to original ids so vertex numbering is independent of geometry.
    original_id = order

    num_bins = max(8, int(math.sqrt(n)))
    bin_of = np.minimum((angular / (2.0 * np.pi) * num_bins).astype(np.int64), num_bins - 1)
    bin_starts = np.searchsorted(bin_of, np.arange(num_bins))
    bin_ends = np.searchsorted(bin_of, np.arange(num_bins), side="right")

    # Points with small radius can connect across large angular distances; keep
    # them in a global candidate set.  The angular reach of a point at radius r
    # against a point at radius >= r_min is bounded via the triangle inequality
    # d >= |r1 - r2| so pairs with r1 + r2 <= R always connect, and
    # cos(dphi_max) ~ handled by a conservative wedge window below.
    low_radius_threshold = R / 2.0
    global_candidates = np.flatnonzero(radial <= low_radius_threshold)

    builder = GraphBuilder(num_vertices=n)
    edges_u = []
    edges_v = []

    two_pi = 2.0 * np.pi
    for idx in range(n):
        r1 = radial[idx]
        phi1 = angular[idx]
        # Angular window: for points with radius >= low_radius_threshold the
        # connection requires dphi <= dphi_max(r1, low_radius_threshold).
        # Use the standard approximation dphi_max ≈ 2 * exp((R - r1 - r2)/2).
        r2_min = low_radius_threshold
        dphi_max = 2.0 * math.exp((R - r1 - r2_min) / 2.0) + 1e-12
        dphi_max = min(dphi_max * 1.5, np.pi)  # safety margin
        # Wedge range covering [phi1 - dphi_max, phi1 + dphi_max].
        lo_angle = phi1 - dphi_max
        hi_angle = phi1 + dphi_max
        lo_bin = int(math.floor(lo_angle / two_pi * num_bins))
        hi_bin = int(math.floor(hi_angle / two_pi * num_bins))
        cand_chunks = []
        for b in range(lo_bin, hi_bin + 1):
            bb = b % num_bins
            s, e = bin_starts[bb], bin_ends[bb]
            if e > s:
                cand_chunks.append(np.arange(s, e))
        if cand_chunks:
            candidates = np.concatenate(cand_chunks)
        else:
            candidates = np.empty(0, dtype=np.int64)
        candidates = np.union1d(candidates, global_candidates)
        candidates = candidates[candidates > idx]
        if candidates.size == 0:
            continue
        dist = _hyperbolic_distance(r1, phi1, radial[candidates], angular[candidates])
        hits = candidates[dist <= R]
        if hits.size:
            edges_u.append(np.full(hits.size, original_id[idx], dtype=np.int64))
            edges_v.append(original_id[hits].astype(np.int64))

    if edges_u:
        builder.add_edges(np.column_stack((np.concatenate(edges_u), np.concatenate(edges_v))))
    return builder.build()
