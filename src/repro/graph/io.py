"""Graph input/output in KONECT/SNAP-style edge-list and METIS formats.

The paper reads its instances from the KONECT repository (which also mirrors
SNAP and the DIMACS challenges); these are whitespace-separated edge lists with
optional ``%`` or ``#`` comment lines.  Graphs are always read as undirected
and unweighted (extra columns such as weights or timestamps are ignored).
"""

from __future__ import annotations

import gzip
import io
import warnings
from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph

__all__ = [
    "iter_edge_chunks",
    "read_edge_list",
    "write_edge_list",
    "read_metis",
    "write_metis",
]

PathLike = Union[str, Path]
_COMMENT_PREFIXES = ("%", "#")

#: Default streaming chunk size for the vectorized edge-list parser.
DEFAULT_CHUNK_BYTES = 16 << 20


def _open_text(path: PathLike, mode: str = "rt"):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


def _open_binary(path: PathLike):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rb")
    return open(path, "rb")


def _parse_block_slow(data: bytes) -> np.ndarray:
    """Reference per-line parser: handles ragged rows, rejects malformed ones."""
    sources: List[int] = []
    targets: List[int] = []
    for raw in data.decode("utf-8", errors="replace").split("\n"):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"malformed edge line: {line!r}")
        sources.append(int(parts[0]))
        targets.append(int(parts[1]))
    if not sources:
        return np.empty((0, 2), dtype=np.int64)
    return np.column_stack(
        (np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64))
    )


def _fromstring_checked(text: str, dtype) -> "np.ndarray | None":
    """``np.fromstring(..., sep=' ')`` that never returns a partial parse.

    NumPy >= 2 raises ``ValueError`` on trailing unparseable data, but 1.x
    only emits a ``DeprecationWarning`` and returns the prefix — which would
    let a malformed token slip through the fast path.  Any warning or error
    therefore signals "not cleanly parsed" and the caller falls back to the
    per-line parser.
    """
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        try:
            values = np.fromstring(text, dtype=dtype, sep=" ")
        except ValueError:
            return None
    if caught:
        return None
    return values


def _extract_id_columns(
    b: np.ndarray, ws: np.ndarray, starts: np.ndarray, width: int
) -> str:
    """The bytes of columns 0 and 1 only, as parseable text.

    Each kept token range is extended by one byte (the whitespace following
    it, if any) so the extracted tokens stay separated.  Fully vectorized:
    a +1/-1 delta array turned into a byte-keep mask by cumulative sum.
    """
    column = np.arange(starts.size, dtype=np.int64) % width
    keep_tokens = column < 2
    tok_end_marker = np.zeros(b.size, dtype=bool)
    tok_end_marker[1:] = ws[1:] & ~ws[:-1]
    ends = np.flatnonzero(tok_end_marker)
    if ends.size < starts.size:  # last token runs to end-of-buffer
        ends = np.append(ends, b.size)
    delta = np.zeros(b.size + 1, dtype=np.int32)
    np.add.at(delta, starts[keep_tokens], 1)
    np.add.at(delta, np.minimum(ends[keep_tokens] + 1, b.size), -1)
    mask = np.cumsum(delta[:-1]) > 0
    return b[mask].tobytes().decode("ascii")


def _strip_comment_lines(data: bytes) -> bytes:
    """Drop lines whose first byte is ``%`` or ``#`` (vectorized).

    Comment lines with *leading whitespace* are not detected here; they fall
    through to the numeric parse, which rejects them and routes the block to
    the per-line slow path — correctness is preserved either way.
    """
    b = np.frombuffer(data, dtype=np.uint8)
    newlines = np.flatnonzero(b == 10)
    line_starts = np.concatenate((np.zeros(1, dtype=np.int64), newlines + 1))
    line_starts = line_starts[line_starts < b.size]
    first_bytes = b[line_starts]
    comment_mask = (first_bytes == ord("%")) | (first_bytes == ord("#"))
    if not comment_mask.any():
        return data
    line_ends = np.concatenate((newlines, np.asarray([b.size - 1], dtype=np.int64)))
    line_ends = line_ends[: line_starts.size]
    keep = np.ones(b.size, dtype=bool)
    for i in np.flatnonzero(comment_mask):
        keep[line_starts[i] : line_ends[i] + 1] = False
    return b[keep].tobytes()


def _parse_edge_block(data: bytes) -> np.ndarray:
    """Parse one block of complete edge-list lines into an ``(k, 2)`` array.

    The hot path is fully vectorized: token boundaries are found with byte
    arithmetic and the numeric parse is a single ``np.fromstring`` call over
    the whole block.  Blocks with ragged row widths or non-numeric tokens fall
    back to the per-line reference parser (which raises on malformed lines),
    so the fast path never silently misparses.
    """
    if not data.strip():
        return np.empty((0, 2), dtype=np.int64)
    if b"%" in data or b"#" in data:
        data = _strip_comment_lines(data)
        if not data.strip():
            return np.empty((0, 2), dtype=np.int64)
    b = np.frombuffer(data, dtype=np.uint8)
    ws = (b == 32) | (b == 9) | (b == 10) | (b == 13) | (b == 11) | (b == 12)
    token_start = ~ws
    token_start[1:] &= ws[:-1]
    starts = np.flatnonzero(token_start)
    total_tokens = int(starts.size)
    if total_tokens == 0:
        return np.empty((0, 2), dtype=np.int64)
    # Tokens per line, without materialising the lines: a newline at byte
    # position p closes a line containing every token starting before p.
    newline_positions = np.flatnonzero(b == 10)
    bounds = np.searchsorted(starts, newline_positions)
    tokens_per_line = np.diff(
        np.concatenate((np.zeros(1, dtype=np.int64), bounds, [total_tokens]))
    )
    tokens_per_line = tokens_per_line[tokens_per_line > 0]
    width = int(tokens_per_line[0])
    if width < 2 or not (tokens_per_line == width).all():
        return _parse_block_slow(data)
    try:
        text = data.decode("ascii")
    except UnicodeDecodeError:
        return _parse_block_slow(data)
    values = _fromstring_checked(text, np.int64)
    if values is not None and values.size == total_tokens:
        return np.ascontiguousarray(values.reshape(-1, width)[:, :2])
    # The full-block integer parse failed.  With only two columns the bad
    # token *is* a vertex id, and the per-line parser must reject it ('2.0',
    # '1e3', 'abc' were all errors in the reference parser).  With extra
    # columns (weights, timestamps — possibly floats) the ids may still be
    # clean: re-parse only the two id columns, with the same strictness.
    if width == 2:
        return _parse_block_slow(data)
    ids = _fromstring_checked(_extract_id_columns(b, ws, starts, width), np.int64)
    if ids is None or ids.size != 2 * (total_tokens // width):
        return _parse_block_slow(data)
    return ids.reshape(-1, 2)


def iter_edge_chunks(
    path: PathLike, *, chunk_bytes: int = DEFAULT_CHUNK_BYTES
):
    """Stream a whitespace edge list as ``(k, 2)`` int64 arrays of raw ids.

    This is the converter's out-of-core front end: the file is read in
    ``chunk_bytes`` slices (split at line boundaries), comments are filtered
    and each slice is parsed with the vectorized block parser — peak memory is
    bounded by the chunk size, not the file size.  Ids are yielded exactly as
    they appear in the file (no index-base shift, no dedup).
    """
    if chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    carry = b""
    with _open_binary(path) as handle:
        while True:
            block = handle.read(chunk_bytes)
            if not block:
                break
            block = carry + block
            cut = block.rfind(b"\n")
            if cut < 0:
                carry = block
                continue
            carry = block[cut + 1 :]
            edges = _parse_edge_block(block[: cut + 1])
            if edges.size:
                yield edges
    if carry.strip():
        edges = _parse_edge_block(carry)
        if edges.size:
            yield edges


def read_edge_list(
    path: PathLike,
    *,
    zero_indexed: bool | None = None,
    num_vertices: int | None = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> CSRGraph:
    """Read a whitespace-separated edge list (KONECT / SNAP style).

    Parsing is chunked and vectorized (see :func:`iter_edge_chunks`); for
    graphs larger than RAM, convert to the binary ``.rcsr`` store instead
    (:mod:`repro.store`), which streams the same chunks out of core.

    Parameters
    ----------
    path:
        File path; ``.gz`` files are decompressed transparently.
    zero_indexed:
        If ``None`` (default) the indexing is auto-detected: when the minimum
        vertex id in the file is 1 and 0 never appears, ids are shifted down
        by one (KONECT convention); otherwise ids are used as-is.
    num_vertices:
        Optional explicit vertex count.
    chunk_bytes:
        Streaming parse chunk size (mostly for tests).
    """
    chunks = list(iter_edge_chunks(path, chunk_bytes=chunk_bytes))
    if not chunks:
        return CSRGraph.empty(num_vertices or 0)
    edges = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
    min_id = int(edges.min())
    if zero_indexed is None:
        zero_indexed = min_id == 0
    if not zero_indexed:
        if min_id < 1:
            raise ValueError("one-indexed edge list contains vertex id < 1")
        edges = edges - 1
    builder = GraphBuilder(num_vertices=num_vertices)
    builder.add_edges(edges)
    return builder.build()


def write_edge_list(graph: CSRGraph, path: PathLike, *, header: bool = True) -> None:
    """Write the graph as a zero-indexed edge list (one ``u v`` pair per line)."""
    path = Path(path)
    with _open_text(path, "wt") as handle:
        if header:
            handle.write(f"% undirected graph: {graph.num_vertices} vertices, {graph.num_edges} edges\n")
        for u, v in graph.iter_edges():
            handle.write(f"{u} {v}\n")


def read_metis(path: PathLike) -> CSRGraph:
    """Read a graph in METIS adjacency format (unweighted).

    The first non-comment line contains ``n m [fmt]``; line ``i`` (1-based)
    lists the neighbours of vertex ``i`` using 1-based ids.
    """
    with _open_text(path) as handle:
        lines = [ln.strip() for ln in handle]
    lines = [ln for ln in lines if ln and not ln.startswith(_COMMENT_PREFIXES)]
    if not lines:
        raise ValueError("empty METIS file")
    header = lines[0].split()
    n = int(header[0])
    declared_m = int(header[1])
    fmt = header[2] if len(header) > 2 else "0"
    if fmt not in ("0", "00", "000"):
        raise ValueError(f"unsupported METIS format code {fmt!r} (only unweighted graphs)")
    if len(lines) - 1 < n:
        raise ValueError(f"METIS file declares {n} vertices but has {len(lines) - 1} adjacency lines")
    edges: List[Tuple[int, int]] = []
    for u in range(n):
        for token in lines[1 + u].split():
            v = int(token) - 1
            if v < 0 or v >= n:
                raise ValueError(f"METIS neighbour id {token} out of range for n={n}")
            if u < v:
                edges.append((u, v))
    graph = CSRGraph.from_edges(edges, num_vertices=n)
    if graph.num_edges != declared_m:
        # Some writers count self-loops or duplicates differently; accept but
        # only when the discrepancy is small is not knowable here, so accept.
        pass
    return graph


def write_metis(graph: CSRGraph, path: PathLike) -> None:
    """Write the graph in METIS adjacency format (unweighted)."""
    path = Path(path)
    buf = io.StringIO()
    buf.write(f"{graph.num_vertices} {graph.num_edges}\n")
    for u in range(graph.num_vertices):
        buf.write(" ".join(str(int(v) + 1) for v in graph.neighbors(u)))
        buf.write("\n")
    with _open_text(path, "wt") as handle:
        handle.write(buf.getvalue())
