"""Graph input/output in KONECT/SNAP-style edge-list and METIS formats.

The paper reads its instances from the KONECT repository (which also mirrors
SNAP and the DIMACS challenges); these are whitespace-separated edge lists with
optional ``%`` or ``#`` comment lines.  Graphs are always read as undirected
and unweighted (extra columns such as weights or timestamps are ignored).
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_metis",
    "write_metis",
]

PathLike = Union[str, Path]
_COMMENT_PREFIXES = ("%", "#")


def _open_text(path: PathLike, mode: str = "rt"):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


def read_edge_list(
    path: PathLike,
    *,
    zero_indexed: bool | None = None,
    num_vertices: int | None = None,
) -> CSRGraph:
    """Read a whitespace-separated edge list (KONECT / SNAP style).

    Parameters
    ----------
    path:
        File path; ``.gz`` files are decompressed transparently.
    zero_indexed:
        If ``None`` (default) the indexing is auto-detected: when the minimum
        vertex id in the file is 1 and 0 never appears, ids are shifted down
        by one (KONECT convention); otherwise ids are used as-is.
    num_vertices:
        Optional explicit vertex count.
    """
    sources: List[int] = []
    targets: List[int] = []
    with _open_text(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            sources.append(int(parts[0]))
            targets.append(int(parts[1]))
    if not sources:
        return CSRGraph.empty(num_vertices or 0)
    u = np.asarray(sources, dtype=np.int64)
    v = np.asarray(targets, dtype=np.int64)
    min_id = int(min(u.min(), v.min()))
    if zero_indexed is None:
        zero_indexed = min_id == 0
    if not zero_indexed:
        if min_id < 1:
            raise ValueError("one-indexed edge list contains vertex id < 1")
        u -= 1
        v -= 1
    builder = GraphBuilder(num_vertices=num_vertices)
    builder.add_edges(np.column_stack((u, v)))
    return builder.build()


def write_edge_list(graph: CSRGraph, path: PathLike, *, header: bool = True) -> None:
    """Write the graph as a zero-indexed edge list (one ``u v`` pair per line)."""
    path = Path(path)
    with _open_text(path, "wt") as handle:
        if header:
            handle.write(f"% undirected graph: {graph.num_vertices} vertices, {graph.num_edges} edges\n")
        for u, v in graph.iter_edges():
            handle.write(f"{u} {v}\n")


def read_metis(path: PathLike) -> CSRGraph:
    """Read a graph in METIS adjacency format (unweighted).

    The first non-comment line contains ``n m [fmt]``; line ``i`` (1-based)
    lists the neighbours of vertex ``i`` using 1-based ids.
    """
    with _open_text(path) as handle:
        lines = [ln.strip() for ln in handle]
    lines = [ln for ln in lines if ln and not ln.startswith(_COMMENT_PREFIXES)]
    if not lines:
        raise ValueError("empty METIS file")
    header = lines[0].split()
    n = int(header[0])
    declared_m = int(header[1])
    fmt = header[2] if len(header) > 2 else "0"
    if fmt not in ("0", "00", "000"):
        raise ValueError(f"unsupported METIS format code {fmt!r} (only unweighted graphs)")
    if len(lines) - 1 < n:
        raise ValueError(f"METIS file declares {n} vertices but has {len(lines) - 1} adjacency lines")
    edges: List[Tuple[int, int]] = []
    for u in range(n):
        for token in lines[1 + u].split():
            v = int(token) - 1
            if v < 0 or v >= n:
                raise ValueError(f"METIS neighbour id {token} out of range for n={n}")
            if u < v:
                edges.append((u, v))
    graph = CSRGraph.from_edges(edges, num_vertices=n)
    if graph.num_edges != declared_m:
        # Some writers count self-loops or duplicates differently; accept but
        # only when the discrepancy is small is not knowable here, so accept.
        pass
    return graph


def write_metis(graph: CSRGraph, path: PathLike) -> None:
    """Write the graph in METIS adjacency format (unweighted)."""
    path = Path(path)
    buf = io.StringIO()
    buf.write(f"{graph.num_vertices} {graph.num_edges}\n")
    for u in range(graph.num_vertices):
        buf.write(" ".join(str(int(v) + 1) for v in graph.neighbors(u)))
        buf.write("\n")
    with _open_text(path, "wt") as handle:
        handle.write(buf.getvalue())
