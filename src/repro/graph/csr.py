"""Compressed-sparse-row graph data structure.

The paper uses NetworKit's CSR graph with 32-bit vertex ids; every sampling
thread shares one read-only copy of the graph.  :class:`CSRGraph` mirrors that
design: two numpy arrays (``indptr``, ``indices``) describe the adjacency of an
undirected, unweighted graph.  The structure is immutable after construction,
which makes it safe to share across the sampling threads of the MPI substrate.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable undirected, unweighted graph in CSR form.

    Parameters
    ----------
    indptr:
        Array of length ``n + 1``; the neighbours of vertex ``v`` are
        ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        Concatenated adjacency lists.  For an undirected graph every edge
        ``{u, v}`` appears both in the list of ``u`` and in the list of ``v``.
    validate:
        If true (default), check structural invariants at construction time.
    """

    __slots__ = ("_indptr", "_indices", "_num_edges", "_source_path")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        # 32-bit ids as in the paper's NetworKit configuration; fall back to
        # int64 only if the graph is too large for uint32.
        if len(indices) > 0 and int(np.max(indices)) >= np.iinfo(np.uint32).max:
            indices = np.asarray(indices, dtype=np.int64)
        else:
            indices = np.asarray(indices, dtype=np.uint32)
        if validate:
            if indptr.ndim != 1 or indices.ndim != 1:
                raise ValueError("indptr and indices must be one-dimensional")
            if indptr.size == 0:
                raise ValueError("indptr must have length n + 1 >= 1")
            if indptr[0] != 0:
                raise ValueError("indptr[0] must be 0")
            if indptr[-1] != indices.size:
                raise ValueError("indptr[-1] must equal len(indices)")
            if np.any(np.diff(indptr) < 0):
                raise ValueError("indptr must be non-decreasing")
            n = indptr.size - 1
            if indices.size > 0 and (int(indices.max()) >= n or int(indices.min()) < 0):
                raise ValueError("indices contain out-of-range vertex ids")
        self._indptr = indptr
        self._indptr.setflags(write=False)
        self._indices = indices
        self._indices.setflags(write=False)
        self._num_edges = int(indices.size) // 2
        self._source_path = None

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return int(self._indptr.size - 1)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m`` (each edge counted once)."""
        return self._num_edges

    @property
    def indptr(self) -> np.ndarray:
        """The CSR row-pointer array (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """The CSR adjacency array (read-only view)."""
        return self._indices

    @property
    def source_path(self):
        """Path of the ``.rcsr`` file backing this graph, or ``None``.

        Set by :func:`repro.store.open_rcsr`; drivers with multiple workers
        use it to re-open the memory map per worker instead of shipping the
        arrays.
        """
        return self._source_path

    @property
    def is_memory_mapped(self) -> bool:
        """Whether the CSR arrays are memory-mapped from an ``.rcsr`` file."""
        return isinstance(self._indptr, np.memmap) or isinstance(self._indices, np.memmap)

    @property
    def degrees(self) -> np.ndarray:
        """Vertex degrees as an int64 array of length ``n``."""
        return np.diff(self._indptr)

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbours of vertex ``v`` as a read-only array slice."""
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        nbrs = self.neighbors(u)
        if nbrs.size == 0:
            return False
        # Adjacency lists are sorted by construction (GraphBuilder sorts them).
        pos = int(np.searchsorted(nbrs, v))
        return pos < nbrs.size and int(nbrs[pos]) == int(v)

    def density(self) -> float:
        """Edge density ``2m / (n (n-1))`` (0 for graphs with < 2 vertices)."""
        n = self.num_vertices
        if n < 2:
            return 0.0
        return 2.0 * self.num_edges / (n * (n - 1))

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the CSR arrays in bytes.

        Used by the cluster model to estimate whether a graph fits into the
        96 GiB available per NUMA node on the paper's machines.
        """
        return int(self._indptr.nbytes + self._indices.nbytes)

    # ------------------------------------------------------------------ #
    # Iteration / export
    # ------------------------------------------------------------------ #
    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over undirected edges ``(u, v)`` with ``u <= v``."""
        indptr = self._indptr
        indices = self._indices
        for u in range(self.num_vertices):
            for v in indices[indptr[u] : indptr[u + 1]]:
                v = int(v)
                if u <= v:
                    yield (u, v)

    def edge_array(self) -> np.ndarray:
        """Return an ``(m, 2)`` array of undirected edges with ``u <= v``."""
        n = self.num_vertices
        sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(self._indptr))
        targets = self._indices.astype(np.int64)
        mask = sources <= targets
        return np.column_stack((sources[mask], targets[mask]))

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` (requires networkx)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_vertices))
        g.add_edges_from(map(tuple, self.edge_array().tolist()))
        return g

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.num_vertices

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return bool(
            np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash((self.num_vertices, self.num_edges))

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.num_vertices}, m={self.num_edges})"

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]] | np.ndarray | Sequence[Sequence[int]],
        num_vertices: int | None = None,
    ) -> "CSRGraph":
        """Build a graph from an iterable of edges.

        Self-loops are dropped and duplicate edges are merged, matching how
        the paper reads its instances ("read as undirected and unweighted").
        """
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder(num_vertices=num_vertices)
        builder.add_edges(edges)
        return builder.build()

    @classmethod
    def from_validated_arrays(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        source_path=None,
    ) -> "CSRGraph":
        """Wrap already-canonical CSR arrays without copying or scanning them.

        Unlike ``__init__`` (which coerces dtypes — an O(m) scan), this trusts
        the caller: the store uses it so that a memory-mapped open touches no
        array pages.  ``indptr`` must be int64, ``indices`` uint32 or int64.
        """
        obj = cls.__new__(cls)
        obj._indptr = indptr
        obj._indices = indices
        obj._num_edges = int(indices.size) // 2
        obj._source_path = source_path
        return obj

    def save(self, path) -> "CSRGraph":
        """Write the graph as an ``.rcsr`` container (see :mod:`repro.store`).

        Returns ``self`` so that ``graph.save(path)`` chains.
        """
        from repro.store.format import write_rcsr

        write_rcsr(self, path)
        return self

    @classmethod
    def load(cls, path, *, mmap: bool = True) -> "CSRGraph":
        """Open an ``.rcsr`` container written by :meth:`save`.

        With ``mmap=True`` (default) the arrays are zero-copy memory maps.
        """
        from repro.store.format import open_rcsr

        return open_rcsr(path, mmap=mmap)

    @classmethod
    def empty(cls, num_vertices: int) -> "CSRGraph":
        """A graph with ``num_vertices`` isolated vertices."""
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        return cls(
            np.zeros(num_vertices + 1, dtype=np.int64),
            np.zeros(0, dtype=np.uint32),
            validate=False,
        )

    def subgraph(self, vertices: Sequence[int]) -> "CSRGraph":
        """Induced subgraph on ``vertices`` with ids relabelled to 0..k-1.

        The relabelling preserves the order of ``vertices``.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size != np.unique(vertices).size:
            raise ValueError("subgraph vertex list contains duplicates")
        n = self.num_vertices
        mapping = np.full(n, -1, dtype=np.int64)
        mapping[vertices] = np.arange(vertices.size, dtype=np.int64)
        edges: List[Tuple[int, int]] = []
        for new_u, old_u in enumerate(vertices):
            for old_v in self.neighbors(int(old_u)):
                new_v = mapping[int(old_v)]
                if new_v >= 0 and new_u <= new_v:
                    edges.append((new_u, int(new_v)))
        return CSRGraph.from_edges(edges, num_vertices=int(vertices.size))
