"""Headline claims of the paper (Section I-B / abstract), regenerated.

* overall speedup of the MPI algorithm on 16 nodes over the shared-memory
  state of the art: paper reports a geometric mean of **7.4x**;
* speedup of the adaptive-sampling phase alone: **16.1x**;
* single-node advantage of the NUMA-aware process placement: **20-30 %**;
* billion-edge graphs at eps = 0.001 finish in **under ten minutes**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.cluster import PAPER_CLUSTER, ClusterConfig, simulate_epoch_mpi, simulate_shared_memory
from repro.experiments.instances import PAPER_INSTANCES, paper_profile
from repro.util.stats import geometric_mean

__all__ = ["HeadlineResult", "generate_headline", "format_headline"]


@dataclass
class HeadlineResult:
    """The four headline quantities (model) next to the paper's values."""

    overall_speedup_16_nodes: float
    adaptive_speedup_16_nodes: float
    single_node_numa_gain: float
    billion_edge_minutes: Dict[str, float]

    paper_overall_speedup: float = 7.4
    paper_adaptive_speedup: float = 16.1
    paper_numa_gain_range: tuple = (1.2, 1.3)
    paper_billion_edge_minutes: float = 10.0


def generate_headline(
    *,
    names: Optional[Sequence[str]] = None,
    cluster: ClusterConfig = PAPER_CLUSTER,
) -> HeadlineResult:
    """Recompute the headline numbers with the cluster performance model."""
    selected = [i for i in PAPER_INSTANCES if names is None or i.name in set(names)]
    overall, adaptive, numa = [], [], []
    billion_edge_minutes: Dict[str, float] = {}
    for inst in selected:
        profile = paper_profile(inst.name)
        base = simulate_shared_memory(profile, cluster)
        mpi16 = simulate_epoch_mpi(profile, cluster, num_nodes=16)
        mpi1 = simulate_epoch_mpi(profile, cluster, num_nodes=1)
        overall.append(base.total_seconds / mpi16.total_seconds)
        adaptive.append(base.adaptive_sampling_seconds / mpi16.adaptive_sampling_seconds)
        numa.append(base.adaptive_sampling_seconds / mpi1.adaptive_sampling_seconds)
        if inst.num_edges >= 10**9:
            billion_edge_minutes[inst.name] = mpi16.total_seconds / 60.0
    return HeadlineResult(
        overall_speedup_16_nodes=geometric_mean(overall),
        adaptive_speedup_16_nodes=geometric_mean(adaptive),
        single_node_numa_gain=geometric_mean(numa),
        billion_edge_minutes=billion_edge_minutes,
    )


def format_headline(result: HeadlineResult) -> str:
    lines = ["Headline results (model vs paper)"]
    lines.append(
        f"  overall speedup on 16 nodes:       {result.overall_speedup_16_nodes:6.2f}x"
        f"   (paper: {result.paper_overall_speedup}x)"
    )
    lines.append(
        f"  adaptive-sampling speedup:         {result.adaptive_speedup_16_nodes:6.2f}x"
        f"   (paper: {result.paper_adaptive_speedup}x)"
    )
    lines.append(
        f"  single-node NUMA placement gain:   {result.single_node_numa_gain:6.2f}x"
        f"   (paper: {result.paper_numa_gain_range[0]}-{result.paper_numa_gain_range[1]}x)"
    )
    for name, minutes in result.billion_edge_minutes.items():
        lines.append(
            f"  {name}: {minutes:5.1f} minutes on 16 nodes   (paper: < {result.paper_billion_edge_minutes} minutes)"
        )
    return "\n".join(lines)
