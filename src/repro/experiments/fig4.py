"""Figure 4: adaptive-sampling time in relation to graph size (synthetic graphs).

The paper varies |V| from 2^23 to 2^26 on R-MAT and random hyperbolic graphs
with |E| = 30 |V| and reports the adaptive-sampling time divided by |V|.  In
this pure-Python reproduction the same experiment is executed *for real* (no
performance model) at reduced scales (default 2^10 .. 2^13) with a larger eps,
which keeps the running time feasible while preserving the quantity of
interest: how the per-vertex sampling cost grows with the graph size
(superlinear for R-MAT, roughly flat for hyperbolic graphs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.api import estimate_betweenness
from repro.core import KadabraOptions
from repro.experiments.report import format_series
from repro.graph.generators import hyperbolic_graph, rmat_graph

__all__ = [
    "Fig4Point",
    "Fig4Result",
    "Fig4ModelPoint",
    "generate_fig4",
    "generate_fig4_model",
    "format_fig4",
    "format_fig4_model",
    "DEFAULT_SCALES",
]

DEFAULT_SCALES = (10, 11, 12, 13)


@dataclass
class Fig4Point:
    """One measurement of Fig. 4: a graph scale and the ADS time per vertex."""

    family: str
    scale: int
    num_vertices: int
    num_edges: int
    adaptive_seconds: float
    samples: int

    @property
    def seconds_per_vertex(self) -> float:
        return self.adaptive_seconds / max(self.num_vertices, 1)

    @property
    def millis_per_vertex(self) -> float:
        return 1e3 * self.seconds_per_vertex


@dataclass
class Fig4Result:
    """Measurements for both synthetic families."""

    rmat: List[Fig4Point] = field(default_factory=list)
    hyperbolic: List[Fig4Point] = field(default_factory=list)

    def points(self, family: str) -> List[Fig4Point]:
        if family == "rmat":
            return self.rmat
        if family == "hyperbolic":
            return self.hyperbolic
        raise ValueError("family must be 'rmat' or 'hyperbolic'")


def _run_instance(family: str, scale: int, *, edge_factor: float, eps: float, seed: int,
                  max_samples: int) -> Fig4Point:
    if family == "rmat":
        graph = rmat_graph(scale, edge_factor=edge_factor, seed=seed)
    else:
        graph = hyperbolic_graph(2**scale, avg_degree=2.0 * edge_factor, seed=seed)
    options = KadabraOptions(
        eps=eps,
        delta=0.1,
        seed=seed,
        calibration_samples=200,
        max_samples_override=max_samples,
    )
    start = time.perf_counter()
    result = estimate_betweenness(graph, algorithm="sequential", options=options)
    elapsed = time.perf_counter() - start
    sequential = result.phase_seconds.get("diameter", 0.0) + result.phase_seconds.get(
        "calibration", 0.0
    )
    return Fig4Point(
        family=family,
        scale=scale,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        adaptive_seconds=max(elapsed - sequential, result.phase_seconds.get("adaptive_sampling", 0.0)),
        samples=result.num_samples,
    )


def generate_fig4(
    *,
    scales: Sequence[int] = DEFAULT_SCALES,
    edge_factor: float = 15.0,
    eps: float = 0.05,
    seed: int = 0,
    max_samples: int = 4000,
    families: Sequence[str] = ("rmat", "hyperbolic"),
) -> Fig4Result:
    """Measure the adaptive-sampling time per vertex for both graph families.

    ``edge_factor`` is the number of undirected edges per vertex (the paper's
    |E| = 30 |V| corresponds to ``edge_factor = 30``; the default of 15 keeps
    generation fast while staying in the same density regime).
    """
    result = Fig4Result()
    for family in families:
        for scale in scales:
            point = _run_instance(
                family,
                scale,
                edge_factor=edge_factor,
                eps=eps,
                seed=seed,
                max_samples=max_samples,
            )
            result.points(family).append(point)
    return result


@dataclass
class Fig4ModelPoint:
    """One model-projected point of Fig. 4 at the paper's graph scales."""

    family: str
    scale: int
    num_vertices: int
    num_edges: int
    seconds_per_vertex: float

    @property
    def millis_per_vertex(self) -> float:
        return 1e3 * self.seconds_per_vertex


#: Last-level-cache size per socket assumed by the cache-pressure term of the
#: Fig. 4 model (Xeon Gold 6126: 19.25 MiB; the working set relevant for BFS
#: is a few times larger due to prefetching, hence 64 MiB effective).
_EFFECTIVE_CACHE_BYTES = 64 * 1024 * 1024


def generate_fig4_model(
    *,
    scales: Sequence[int] = (23, 24, 25, 26),
    edge_factor: float = 30.0,
    total_threads: int = 384,
    samples: int = 2_000_000,
    edge_traversal_seconds: float = 4.0e-9,
) -> Dict[str, List[Fig4ModelPoint]]:
    """Project Fig. 4 to the paper's graph sizes (2^23 .. 2^26 vertices).

    The per-sample cost model distinguishes the two families:

    * R-MAT / Graph500 graphs have massive hubs, so a bidirectional frontier
      step quickly covers a large constant fraction of all edges; on top of
      that the essentially random accesses suffer growing cache pressure as
      the graph outgrows the last-level cache.  Per-vertex time therefore
      grows slightly superlinearly (the paper measures 1.85x from 2^23 to
      2^26).
    * Random hyperbolic graphs are geometrically local: the two BFS balls stay
      compact and cache-friendly, so the per-vertex time is essentially flat.
    """
    result: Dict[str, List[Fig4ModelPoint]] = {"rmat": [], "hyperbolic": []}
    for scale in scales:
        n = 2**scale
        m = edge_factor * n
        directed = 2.0 * m
        graph_bytes = 8 * n + 8 * directed
        # Power-law cache-pressure factor: once the working set exceeds the
        # effective cache, random accesses slow down roughly with the 0.3
        # power of the overflow ratio (fitted to the paper's 1.85x growth
        # from 2^23 to 2^26 vertices).
        overflow = max(1.0, graph_bytes / _EFFECTIVE_CACHE_BYTES)
        cache_penalty = overflow ** 0.3
        # R-MAT: hub-dominated frontiers cover ~half the edge set per sample.
        rmat_edges = 0.5 * directed * cache_penalty
        # Hyperbolic: compact geometric BFS balls, a small constant fraction.
        hyperbolic_edges = 0.05 * directed
        for family, edges in (("rmat", rmat_edges), ("hyperbolic", hyperbolic_edges)):
            seconds = samples * edges * edge_traversal_seconds / total_threads
            result[family].append(
                Fig4ModelPoint(
                    family=family,
                    scale=scale,
                    num_vertices=n,
                    num_edges=int(m),
                    seconds_per_vertex=seconds / n,
                )
            )
    return result


def format_fig4_model(points: Dict[str, List[Fig4ModelPoint]]) -> str:
    """Render the model projection of Fig. 4 at paper scale."""
    lines = ["Figure 4 (model projection at paper scale 2^23..2^26):"]
    for family, label in (("rmat", "(a) R-MAT"), ("hyperbolic", "(b) hyperbolic")):
        series = points.get(family, [])
        if series:
            lines.append(
                format_series(
                    f"{label} time/|V| (ms)",
                    [f"2^{p.scale}" for p in series],
                    [p.millis_per_vertex for p in series],
                )
            )
    return "\n".join(lines)


def format_fig4(result: Fig4Result) -> str:
    """Render both panels of Fig. 4 as text series."""
    lines = ["Figure 4: adaptive-sampling time per vertex vs graph size"]
    if result.rmat:
        lines.append(
            format_series(
                "(a) R-MAT         time/|V| (ms)",
                [f"2^{p.scale}" for p in result.rmat],
                [p.millis_per_vertex for p in result.rmat],
            )
        )
    if result.hyperbolic:
        lines.append(
            format_series(
                "(b) hyperbolic    time/|V| (ms)",
                [f"2^{p.scale}" for p in result.hyperbolic],
                [p.millis_per_vertex for p in result.hyperbolic],
            )
        )
    return "\n".join(lines)
