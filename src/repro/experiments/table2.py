"""Table II: per-instance statistics on 16 compute nodes.

The cluster performance model replays the epoch-based MPI algorithm on the
paper's machine configuration (16 nodes, 2 processes per node, 12 threads per
process) for every instance of Table I and reports the same columns the paper
does: number of epochs, samples taken before termination, seconds spent in the
non-blocking barrier, communication volume per epoch (MiB) and seconds spent
in adaptive sampling; the published values are carried along for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster import PAPER_CLUSTER, ClusterConfig, simulate_epoch_mpi
from repro.experiments.instances import PAPER_INSTANCES, paper_profile
from repro.experiments.report import format_table

__all__ = ["Table2Row", "generate_table2", "format_table2"]


@dataclass
class Table2Row:
    """One instance of Table II: simulated values next to the paper's."""

    name: str
    epochs: int
    samples: int
    barrier_seconds: float
    comm_mib_per_epoch: float
    adaptive_seconds: float
    paper_epochs: int
    paper_samples: int
    paper_barrier_seconds: float
    paper_comm_mib_per_epoch: float
    paper_adaptive_seconds: float


def generate_table2(
    *,
    names: Optional[Sequence[str]] = None,
    cluster: ClusterConfig = PAPER_CLUSTER,
    num_nodes: int = 16,
) -> List[Table2Row]:
    """Simulate the 16-node runs of Table II for the selected instances."""
    rows: List[Table2Row] = []
    selected = set(names) if names is not None else None
    for inst in PAPER_INSTANCES:
        if selected is not None and inst.name not in selected:
            continue
        profile = paper_profile(inst.name)
        run = simulate_epoch_mpi(profile, cluster, num_nodes=num_nodes)
        rows.append(
            Table2Row(
                name=inst.name,
                epochs=run.num_epochs,
                samples=run.total_samples,
                barrier_seconds=run.barrier_seconds,
                comm_mib_per_epoch=run.communication_bytes_per_epoch / 2**20,
                adaptive_seconds=run.adaptive_sampling_seconds,
                paper_epochs=inst.epochs,
                paper_samples=inst.samples,
                paper_barrier_seconds=inst.barrier_seconds,
                paper_comm_mib_per_epoch=inst.comm_mib_per_epoch,
                paper_adaptive_seconds=inst.adaptive_seconds,
            )
        )
    return rows


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Render Table II as text (model vs paper)."""
    headers = [
        "Instance",
        "Ep.",
        "Samples",
        "B (s)",
        "Com. (MiB)",
        "Time (s)",
        "Ep. paper",
        "Samples paper",
        "B paper",
        "Com. paper",
        "Time paper",
    ]
    data = [
        (
            r.name,
            r.epochs,
            r.samples,
            round(r.barrier_seconds, 2),
            round(r.comm_mib_per_epoch, 1),
            round(r.adaptive_seconds, 1),
            r.paper_epochs,
            r.paper_samples,
            r.paper_barrier_seconds,
            r.paper_comm_mib_per_epoch,
            r.paper_adaptive_seconds,
        )
        for r in rows
    ]
    return format_table(
        headers, data, title="Table II: per-instance statistics on 16 compute nodes (model vs paper)"
    )
