"""Plain-text and CSV rendering of experiment results."""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Sequence

__all__ = ["format_table", "to_csv", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_format: str = "{:.3g}",
) -> str:
    """Render rows as a fixed-width text table (the harness' stdout format)."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render an (x, y) series the way the figures report them."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    pairs = ", ".join(f"{x}: {y:.3g}" if isinstance(y, float) else f"{x}: {y}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
