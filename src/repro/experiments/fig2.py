"""Figure 2: parallel scalability on real-world graphs.

* Fig. 2a — speedup of the epoch-based MPI algorithm over the shared-memory
  state of the art (running on one node), as a function of the number of
  compute nodes (geometric mean over the instance set).
* Fig. 2b — breakdown of the running time into the paper's phases (diameter,
  calibration, epoch transition, non-blocking barrier, blocking reduction,
  stopping-condition check), as stacked fractions per node count.

Both are produced by the cluster performance model driven by the Table I/II
workload profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster import PAPER_CLUSTER, ClusterConfig, simulate_epoch_mpi, simulate_shared_memory
from repro.cluster.trace import PHASE_ORDER
from repro.experiments.instances import PAPER_INSTANCES, paper_profile
from repro.experiments.report import format_series, format_table
from repro.util.stats import geometric_mean

__all__ = ["Fig2Result", "generate_fig2", "format_fig2a", "format_fig2b", "DEFAULT_NODE_COUNTS"]

DEFAULT_NODE_COUNTS = (1, 2, 4, 8, 16)


@dataclass
class Fig2Result:
    """Speedups and phase breakdowns per node count."""

    node_counts: List[int]
    # Fig 2a: geometric-mean overall speedup vs the shared-memory baseline.
    overall_speedup: Dict[int, float] = field(default_factory=dict)
    # Per-instance speedups (for inspection / tests).
    per_instance_speedup: Dict[str, Dict[int, float]] = field(default_factory=dict)
    # Fig 2b: mean fraction of time per phase, stacked in PHASE_ORDER.
    phase_fractions: Dict[int, Dict[str, float]] = field(default_factory=dict)


def generate_fig2(
    *,
    names: Optional[Sequence[str]] = None,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    cluster: ClusterConfig = PAPER_CLUSTER,
) -> Fig2Result:
    """Run the node-count sweep behind both panels of Figure 2."""
    selected = [i for i in PAPER_INSTANCES if names is None or i.name in set(names)]
    if not selected:
        raise ValueError("no instances selected")
    result = Fig2Result(node_counts=list(node_counts))
    baselines = {}
    for inst in selected:
        profile = paper_profile(inst.name)
        baselines[inst.name] = simulate_shared_memory(profile, cluster)
        result.per_instance_speedup[inst.name] = {}

    for nodes in node_counts:
        speedups = []
        fraction_acc: Dict[str, float] = {phase: 0.0 for phase in PHASE_ORDER}
        for inst in selected:
            profile = paper_profile(inst.name)
            run = simulate_epoch_mpi(profile, cluster, num_nodes=nodes)
            base = baselines[inst.name]
            speedup = base.total_seconds / run.total_seconds
            speedups.append(speedup)
            result.per_instance_speedup[inst.name][nodes] = speedup
            for phase, fraction in zip(PHASE_ORDER, run.stacked_breakdown()):
                fraction_acc[phase] += fraction
        result.overall_speedup[nodes] = geometric_mean(speedups)
        result.phase_fractions[nodes] = {
            phase: fraction_acc[phase] / len(selected) for phase in PHASE_ORDER
        }
    return result


def format_fig2a(result: Fig2Result) -> str:
    """Render the Fig. 2a speedup series as text."""
    lines = [
        "Figure 2a: overall speedup of the epoch-based MPI algorithm over the",
        "shared-memory state of the art (geometric mean over instances)",
    ]
    lines.append(
        format_series(
            "speedup",
            [f"{n} nodes" for n in result.node_counts],
            [result.overall_speedup[n] for n in result.node_counts],
        )
    )
    return "\n".join(lines)


def format_fig2b(result: Fig2Result) -> str:
    """Render the Fig. 2b phase breakdown as a table of fractions."""
    headers = ["# nodes"] + list(PHASE_ORDER)
    rows = []
    for nodes in result.node_counts:
        fractions = result.phase_fractions[nodes]
        rows.append([nodes] + [round(fractions[phase], 3) for phase in PHASE_ORDER])
    return format_table(headers, rows, title="Figure 2b: running-time breakdown (fractions)")
