"""Instance registry: the paper's real-world graphs and their local proxies.

Two views of every instance:

* **Paper statistics** (:data:`PAPER_INSTANCES`): |V|, |E| and diameter from
  Table I, plus the per-instance results of Table II (epochs, samples taken,
  barrier seconds, communication volume per epoch, adaptive-sampling seconds
  on 16 nodes).  These drive the cluster performance model and provide the
  "paper" column of every regenerated table/figure.
* **Proxy graphs** (:func:`build_proxy_graph`): synthetic graphs small enough
  to run the actual Python algorithms on, matching the instance's class
  (road network vs. complex network) and density.  These provide the
  "measured" column where real execution is feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.cluster.workload import InstanceProfile
from repro.diameter import double_sweep_estimate
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    barabasi_albert,
    hyperbolic_graph,
    rmat_graph,
    road_network_graph,
)

__all__ = [
    "PaperInstance",
    "PAPER_INSTANCES",
    "instance_by_name",
    "paper_profile",
    "build_proxy_graph",
    "cached_proxy_graph",
    "resolve_instance_graph",
    "proxy_profile",
    "DEFAULT_PROXY_SCALE",
]

#: Default linear scale factor applied to |V| when building proxy graphs.
DEFAULT_PROXY_SCALE = 1.0 / 1000.0


@dataclass(frozen=True)
class PaperInstance:
    """One row of Table I plus the matching row of Table II."""

    name: str
    num_vertices: int
    num_edges: int
    diameter: int
    kind: str  # "road" or "complex"
    # Table II (16 compute nodes):
    epochs: int
    samples: int
    barrier_seconds: float
    comm_mib_per_epoch: float
    adaptive_seconds: float


PAPER_INSTANCES: List[PaperInstance] = [
    PaperInstance("roadNet-PA", 1_087_562, 1_541_514, 794, "road", 496, 3_943_308, 0.2, 265.5, 301),
    PaperInstance("roadNet-CA", 1_957_027, 2_760_388, 865, "road", 638, 5_269_664, 0.5, 477.8, 820),
    PaperInstance("dimacs9-NE", 1_524_453, 3_868_020, 2_098, "road", 79, 669_664, 0.4, 372.2, 79),
    PaperInstance("orkut-links", 3_072_441, 117_184_899, 10, "complex", 15, 829_292, 0.2, 750.1, 13),
    PaperInstance("dbpedia-link", 18_265_512, 136_535_446, 12, "complex", 11, 1_409_462, 0.3, 4_459.4, 43),
    PaperInstance("dimacs10-uk-2002", 18_459_128, 261_556_721, 45, "complex", 2, 3_182_023, 8.4, 4_506.6, 24),
    PaperInstance("wikipedia_link_en", 13_591_759, 437_266_152, 10, "complex", 23, 1_129_507, 1.2, 3_318.3, 93),
    PaperInstance("twitter", 41_652_230, 1_468_365_480, 23, "complex", 26, 1_126_219, 3.3, 10_169.0, 340),
    PaperInstance("friendster", 67_492_106, 2_585_071_391, 38, "complex", 2, 1_186_097, 11.1, 16_477.6, 50),
    PaperInstance("dimacs10-uk-2007-05", 104_288_749, 3_293_805_080, 112, "complex", 2, 1_631_671, 68.9, 25_461.1, 184),
]

_BY_NAME: Dict[str, PaperInstance] = {inst.name: inst for inst in PAPER_INSTANCES}


def instance_by_name(name: str) -> PaperInstance:
    """Look up a paper instance by its Table I name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown instance {name!r}; known: {sorted(_BY_NAME)}") from None


def paper_profile(name: str, *, eps: float = 0.001, delta: float = 0.1) -> InstanceProfile:
    """Workload profile of a paper instance for the cluster performance model.

    ``target_samples`` is taken from Table II (the number of samples the
    adaptive algorithm took before terminating at eps = 0.001).
    """
    inst = instance_by_name(name)
    return InstanceProfile.from_statistics(
        inst.name,
        inst.num_vertices,
        inst.num_edges,
        inst.diameter,
        target_samples=inst.samples,
        eps=eps,
        delta=delta,
        kind=inst.kind,
    )


def build_proxy_graph(
    name: str,
    *,
    scale: float = DEFAULT_PROXY_SCALE,
    seed: int = 0,
) -> CSRGraph:
    """Build a synthetic stand-in for a paper instance at reduced scale.

    Road networks become perturbed lattices (average degree < 3, diameter of
    the order of the lattice side length); complex networks become R-MAT or
    Barabási–Albert graphs with roughly the original average degree.  The
    linear ``scale`` factor applies to |V|.
    """
    inst = instance_by_name(name)
    target_vertices = max(64, int(round(inst.num_vertices * scale)))
    if inst.kind == "road":
        side = max(8, int(round(target_vertices ** 0.5)))
        return road_network_graph(side, side, seed=seed)
    avg_degree = 2.0 * inst.num_edges / inst.num_vertices
    if avg_degree >= 40.0:
        # Dense web/social graphs: R-MAT with matching edge factor.
        scale_log2 = max(6, int(round(target_vertices)).bit_length() - 1)
        return rmat_graph(scale_log2, edge_factor=avg_degree / 2.0, seed=seed)
    attachments = max(2, int(round(avg_degree / 2.0)))
    return barabasi_albert(target_vertices, attachments, seed=seed)


def cached_proxy_graph(
    name: str,
    *,
    scale: float = DEFAULT_PROXY_SCALE,
    seed: int = 0,
    catalog=None,
) -> CSRGraph:
    """A proxy graph served from the binary graph store.

    The first call per (instance, scale, seed) generates the synthetic proxy
    and persists it as an ``.rcsr`` container in the catalog cache; every
    later call — including from other processes — opens the stored graph as a
    zero-copy memory map instead of regenerating it.
    """
    from repro.store import GraphCatalog, StoreFormatError, open_rcsr

    instance_by_name(name)  # validate the instance name early
    catalog = catalog if catalog is not None else GraphCatalog()
    key = f"proxy-{name}-s{scale:g}-r{seed}"
    path = catalog.cache_dir / f"{key}.rcsr"
    if path.exists():
        try:
            return open_rcsr(path)
        except (StoreFormatError, OSError):
            pass  # stale or corrupt cache entry: regenerate below
    graph = build_proxy_graph(name, scale=scale, seed=seed)
    catalog.store_graph(graph, key, path=path)
    return open_rcsr(path)


def resolve_instance_graph(
    spec: Union[str, Path],
    *,
    scale: float = DEFAULT_PROXY_SCALE,
    seed: int = 0,
    catalog=None,
) -> CSRGraph:
    """Resolve an instance spec to a graph through the dataset catalog.

    ``spec`` may be a file path (``.rcsr`` or text, auto-converted on first
    touch), a dataset name registered in the catalog, or a Table I instance
    name (served as a stored proxy graph at ``scale``).
    """
    from repro.store import GraphCatalog

    catalog = catalog if catalog is not None else GraphCatalog()
    if str(spec) in _BY_NAME and not Path(spec).exists():
        return cached_proxy_graph(str(spec), scale=scale, seed=seed, catalog=catalog)
    return catalog.load(spec)


def proxy_profile(
    name: str,
    *,
    scale: float = DEFAULT_PROXY_SCALE,
    seed: int = 0,
    eps: float = 0.03,
    delta: float = 0.1,
    target_samples: Optional[int] = None,
    graph: Optional[CSRGraph] = None,
) -> InstanceProfile:
    """Workload profile measured on a proxy graph.

    The per-sample cost is measured with the real bidirectional sampler; the
    target sample count defaults to the instance's Table II value scaled by
    ``eps^2`` relative to the paper's eps = 0.001 (the sample complexity is
    proportional to ``1/eps^2``), so that the proxy workload stays feasible.
    """
    inst = instance_by_name(name)
    if graph is None:
        graph = build_proxy_graph(name, scale=scale, seed=seed)
    estimate = double_sweep_estimate(graph, seed=seed)
    if target_samples is None:
        scale_factor = (0.001 / eps) ** 2
        target_samples = max(1000, int(round(inst.samples * scale_factor)))
    return InstanceProfile.from_graph(
        f"{name}-proxy",
        graph,
        diameter=estimate.lower,
        target_samples=target_samples,
        eps=eps,
        delta=delta,
        seed=seed,
        kind=inst.kind,
    )
