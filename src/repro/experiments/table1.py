"""Table I: real-world instances and their basic properties.

For every paper instance the harness reports the published |V|, |E| and
diameter next to the corresponding proxy graph's measured properties, so that
the substitution (billion-edge KONECT graphs → scaled synthetic proxies) is
transparent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.diameter import double_sweep_estimate
from repro.experiments.instances import (
    DEFAULT_PROXY_SCALE,
    PAPER_INSTANCES,
    build_proxy_graph,
)
from repro.experiments.report import format_table

__all__ = ["Table1Row", "generate_table1", "format_table1"]


@dataclass
class Table1Row:
    """One instance of Table I (paper values plus proxy measurements)."""

    name: str
    kind: str
    paper_vertices: int
    paper_edges: int
    paper_diameter: int
    proxy_vertices: int
    proxy_edges: int
    proxy_diameter_lower: int
    proxy_avg_degree: float


def generate_table1(
    *,
    names: Optional[Sequence[str]] = None,
    scale: float = DEFAULT_PROXY_SCALE,
    seed: int = 0,
) -> List[Table1Row]:
    """Build the rows of Table I, constructing one proxy graph per instance."""
    rows: List[Table1Row] = []
    selected = set(names) if names is not None else None
    for inst in PAPER_INSTANCES:
        if selected is not None and inst.name not in selected:
            continue
        proxy = build_proxy_graph(inst.name, scale=scale, seed=seed)
        estimate = double_sweep_estimate(proxy, seed=seed)
        avg_degree = 2.0 * proxy.num_edges / max(proxy.num_vertices, 1)
        rows.append(
            Table1Row(
                name=inst.name,
                kind=inst.kind,
                paper_vertices=inst.num_vertices,
                paper_edges=inst.num_edges,
                paper_diameter=inst.diameter,
                proxy_vertices=proxy.num_vertices,
                proxy_edges=proxy.num_edges,
                proxy_diameter_lower=estimate.lower,
                proxy_avg_degree=avg_degree,
            )
        )
    return rows


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render Table I as text."""
    headers = [
        "Instance",
        "kind",
        "|V| (paper)",
        "|E| (paper)",
        "Diam (paper)",
        "|V| (proxy)",
        "|E| (proxy)",
        "Diam>= (proxy)",
        "avg deg (proxy)",
    ]
    data = [
        (
            r.name,
            r.kind,
            r.paper_vertices,
            r.paper_edges,
            r.paper_diameter,
            r.proxy_vertices,
            r.proxy_edges,
            r.proxy_diameter_lower,
            round(r.proxy_avg_degree, 2),
        )
        for r in rows
    ]
    return format_table(headers, data, title="Table I: real-world instances (paper vs proxy)")
