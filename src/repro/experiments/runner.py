"""Command-line entry point regenerating the paper's tables and figures.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments table2
    python -m repro.experiments fig2a fig2b fig3a fig3b
    python -m repro.experiments fig4
    python -m repro.experiments headline
    python -m repro.experiments backends
    python -m repro.experiments all

(or the installed ``repro-experiments`` console script).
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, List

from repro.experiments.fig2 import format_fig2a, format_fig2b, generate_fig2
from repro.experiments.fig3 import format_fig3a, format_fig3b, generate_fig3
from repro.experiments.fig4 import (
    format_fig4,
    format_fig4_model,
    generate_fig4,
    generate_fig4_model,
)
from repro.experiments.headline import format_headline, generate_headline
from repro.experiments.table1 import format_table1, generate_table1
from repro.experiments.table2 import format_table2, generate_table2

__all__ = ["main", "run_experiment", "EXPERIMENTS"]

EXPERIMENTS = (
    "table1",
    "table2",
    "fig2a",
    "fig2b",
    "fig3a",
    "fig3b",
    "fig4a",
    "fig4b",
    "fig4",
    "headline",
    "backends",
)


def run_experiment(name: str, *, fast: bool = False) -> str:
    """Run one experiment by name and return its textual report."""
    if name == "table1":
        scale = 1.0 / 4000.0 if fast else 1.0 / 1000.0
        return format_table1(generate_table1(scale=scale))
    if name == "table2":
        return format_table2(generate_table2())
    if name in ("fig2a", "fig2b"):
        result = generate_fig2()
        return format_fig2a(result) if name == "fig2a" else format_fig2b(result)
    if name in ("fig3a", "fig3b"):
        result = generate_fig3()
        return format_fig3a(result) if name == "fig3a" else format_fig3b(result)
    if name in ("fig4", "fig4a", "fig4b"):
        scales = (9, 10, 11) if fast else (10, 11, 12, 13)
        families = ("rmat",) if name == "fig4a" else ("hyperbolic",) if name == "fig4b" else ("rmat", "hyperbolic")
        result = generate_fig4(scales=scales, families=families)
        model = generate_fig4_model()
        if name == "fig4a":
            model = {"rmat": model["rmat"]}
        elif name == "fig4b":
            model = {"hyperbolic": model["hyperbolic"]}
        return format_fig4(result) + "\n" + format_fig4_model(model)
    if name == "headline":
        return format_headline(generate_headline())
    if name == "backends":
        # Which execution modes the facade can dispatch to on this install.
        from repro.api import format_backend_table

        return format_backend_table()
    raise ValueError(f"unknown experiment {name!r}; known: {EXPERIMENTS}")


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the IPDPS 2020 paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiments to run: {', '.join(EXPERIMENTS)} or 'all'",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use smaller proxy scales / graph sizes (for smoke tests)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    requested: List[str] = []
    for name in args.experiments:
        if name == "all":
            requested.extend(
                ["table1", "table2", "fig2a", "fig2b", "fig3a", "fig3b", "fig4", "headline", "backends"]
            )
        else:
            requested.append(name)

    for name in requested:
        print(run_experiment(name, fast=args.fast))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
