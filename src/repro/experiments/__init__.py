"""Experiment harness: regenerates every table and figure of the paper."""

from repro.experiments.instances import (
    PAPER_INSTANCES,
    PaperInstance,
    instance_by_name,
    paper_profile,
    build_proxy_graph,
    proxy_profile,
)
from repro.experiments.table1 import Table1Row, generate_table1, format_table1
from repro.experiments.table2 import Table2Row, generate_table2, format_table2
from repro.experiments.fig2 import Fig2Result, generate_fig2, format_fig2a, format_fig2b
from repro.experiments.fig3 import Fig3Result, generate_fig3, format_fig3a, format_fig3b
from repro.experiments.fig4 import (
    Fig4Result,
    Fig4Point,
    Fig4ModelPoint,
    generate_fig4,
    generate_fig4_model,
    format_fig4,
    format_fig4_model,
)
from repro.experiments.headline import HeadlineResult, generate_headline, format_headline
from repro.experiments.runner import run_experiment, main

__all__ = [
    "PAPER_INSTANCES",
    "PaperInstance",
    "instance_by_name",
    "paper_profile",
    "build_proxy_graph",
    "proxy_profile",
    "Table1Row",
    "generate_table1",
    "format_table1",
    "Table2Row",
    "generate_table2",
    "format_table2",
    "Fig2Result",
    "generate_fig2",
    "format_fig2a",
    "format_fig2b",
    "Fig3Result",
    "generate_fig3",
    "format_fig3a",
    "format_fig3b",
    "Fig4Result",
    "Fig4Point",
    "Fig4ModelPoint",
    "generate_fig4",
    "generate_fig4_model",
    "format_fig4",
    "format_fig4_model",
    "HeadlineResult",
    "generate_headline",
    "format_headline",
    "run_experiment",
    "main",
]
