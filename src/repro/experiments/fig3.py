"""Figure 3: per-phase performance characteristics on real-world graphs.

* Fig. 3a — speedup of the adaptive-sampling phase and of the calibration
  phase individually (geometric mean over instances), vs. node count.
* Fig. 3b — sampling throughput normalised by machine size:
  samples / (adaptive-sampling time × compute nodes), vs. node count;
  a flat curve means the adaptive-sampling phase scales linearly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster import PAPER_CLUSTER, ClusterConfig, simulate_epoch_mpi, simulate_shared_memory
from repro.experiments.instances import PAPER_INSTANCES, paper_profile
from repro.experiments.report import format_series
from repro.util.stats import geometric_mean

__all__ = ["Fig3Result", "generate_fig3", "format_fig3a", "format_fig3b", "DEFAULT_NODE_COUNTS"]

DEFAULT_NODE_COUNTS = (1, 2, 4, 8, 16)


@dataclass
class Fig3Result:
    """Per-phase speedups and normalised sampling throughput per node count."""

    node_counts: List[int]
    adaptive_speedup: Dict[int, float] = field(default_factory=dict)
    calibration_speedup: Dict[int, float] = field(default_factory=dict)
    samples_per_second_per_node: Dict[int, float] = field(default_factory=dict)
    per_instance_adaptive_speedup: Dict[str, Dict[int, float]] = field(default_factory=dict)


def generate_fig3(
    *,
    names: Optional[Sequence[str]] = None,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    cluster: ClusterConfig = PAPER_CLUSTER,
) -> Fig3Result:
    """Run the node-count sweep behind both panels of Figure 3."""
    selected = [i for i in PAPER_INSTANCES if names is None or i.name in set(names)]
    if not selected:
        raise ValueError("no instances selected")
    result = Fig3Result(node_counts=list(node_counts))
    baselines = {inst.name: simulate_shared_memory(paper_profile(inst.name), cluster) for inst in selected}
    for inst in selected:
        result.per_instance_adaptive_speedup[inst.name] = {}

    for nodes in node_counts:
        ads_speedups = []
        calib_speedups = []
        throughputs = []
        for inst in selected:
            profile = paper_profile(inst.name)
            run = simulate_epoch_mpi(profile, cluster, num_nodes=nodes)
            base = baselines[inst.name]
            ads = base.adaptive_sampling_seconds / max(run.adaptive_sampling_seconds, 1e-12)
            calib = base.calibration_seconds / max(run.calibration_seconds, 1e-12)
            ads_speedups.append(ads)
            calib_speedups.append(calib)
            throughputs.append(run.samples_per_second_per_node)
            result.per_instance_adaptive_speedup[inst.name][nodes] = ads
        result.adaptive_speedup[nodes] = geometric_mean(ads_speedups)
        result.calibration_speedup[nodes] = geometric_mean(calib_speedups)
        result.samples_per_second_per_node[nodes] = geometric_mean(throughputs)
    return result


def format_fig3a(result: Fig3Result) -> str:
    """Render the per-phase speedups of Fig. 3a."""
    labels = [f"{n} nodes" for n in result.node_counts]
    lines = ["Figure 3a: per-phase speedup over the shared-memory baseline (geom. mean)"]
    lines.append(
        format_series("ADS", labels, [result.adaptive_speedup[n] for n in result.node_counts])
    )
    lines.append(
        format_series(
            "Calib.", labels, [result.calibration_speedup[n] for n in result.node_counts]
        )
    )
    return "\n".join(lines)


def format_fig3b(result: Fig3Result) -> str:
    """Render the normalised sampling throughput of Fig. 3b."""
    labels = [f"{n} nodes" for n in result.node_counts]
    lines = ["Figure 3b: samples / (ADS time * compute nodes) (geom. mean)"]
    lines.append(
        format_series(
            "ADS",
            labels,
            [result.samples_per_second_per_node[n] for n in result.node_counts],
        )
    )
    return "\n".join(lines)
