"""MPI substrate: communicator interface, threaded runtime and topology split."""

from repro.mpi.interface import Communicator, SelfComm
from repro.mpi.requests import Request, CompletedRequest, PolledRequest
from repro.mpi.reduce_ops import REDUCE_OPS, reduce_op, combine
from repro.mpi.threaded import ThreadedComm, ThreadedCommWorld, run_threaded
from repro.mpi.topology import NodeTopology, build_topology

__all__ = [
    "Communicator",
    "SelfComm",
    "Request",
    "CompletedRequest",
    "PolledRequest",
    "REDUCE_OPS",
    "reduce_op",
    "combine",
    "ThreadedComm",
    "ThreadedCommWorld",
    "run_threaded",
    "NodeTopology",
    "build_topology",
]
