"""Abstract communicator interface (the subset of MPI used by the paper).

The algorithms in Section IV need exactly these primitives:

* blocking ``reduce`` (calibration phase aggregation) and ``bcast``;
* non-blocking ``ibarrier`` + blocking ``reduce`` (the paper's replacement for
  a slow ``MPI_Ireduce``), plus ``ireduce`` itself for Algorithm 1;
* non-blocking ``ibcast`` for distributing the termination flag;
* communicator ``split`` for the NUMA-aware node-local/global topology.

Two implementations exist: :class:`~repro.mpi.threaded.ThreadedComm`, which
runs each rank in a Python thread of the current process (mpi4py and a real
cluster are unavailable in this environment), and
:class:`~repro.mpi.interface.SelfComm` for single-rank execution.  The
interface mirrors mpi4py closely enough that swapping in a real
``mpi4py.MPI.Comm`` adapter only requires implementing this class.
"""

from __future__ import annotations

import abc
from typing import Any, List, Optional

from repro.mpi.requests import CompletedRequest, Request

__all__ = ["Communicator", "SelfComm"]


class Communicator(abc.ABC):
    """Minimal MPI-style communicator."""

    # -- identity ------------------------------------------------------- #
    @property
    @abc.abstractmethod
    def rank(self) -> int:
        """Rank of the calling process within this communicator."""

    @property
    @abc.abstractmethod
    def size(self) -> int:
        """Number of processes in this communicator."""

    @property
    def is_root(self) -> bool:
        return self.rank == 0

    # -- collective operations ------------------------------------------ #
    @abc.abstractmethod
    def barrier(self) -> None:
        """Blocking barrier."""

    @abc.abstractmethod
    def ibarrier(self) -> Request:
        """Non-blocking barrier."""

    @abc.abstractmethod
    def reduce(self, value: Any, op: str = "sum", root: int = 0) -> Optional[Any]:
        """Blocking reduction; returns the aggregate at ``root``, else ``None``."""

    @abc.abstractmethod
    def ireduce(self, value: Any, op: str = "sum", root: int = 0) -> Request:
        """Non-blocking reduction; the request's result follows :meth:`reduce`."""

    @abc.abstractmethod
    def allreduce(self, value: Any, op: str = "sum") -> Any:
        """Blocking reduction delivering the aggregate to every rank."""

    @abc.abstractmethod
    def bcast(self, value: Any, root: int = 0) -> Any:
        """Blocking broadcast of ``value`` from ``root``."""

    @abc.abstractmethod
    def ibcast(self, value: Any, root: int = 0) -> Request:
        """Non-blocking broadcast; the request's result is the broadcast value."""

    @abc.abstractmethod
    def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        """Blocking gather; returns the list of per-rank values at ``root``."""

    @abc.abstractmethod
    def split(self, color: int, key: int = 0) -> "Communicator":
        """Partition the communicator by ``color`` (MPI_Comm_split semantics)."""

    # -- convenience ------------------------------------------------------ #
    def communication_bytes(self) -> int:
        """Total payload bytes moved through this communicator so far.

        Implementations that do not track traffic return 0; the threaded
        communicator accounts every reduce/bcast/gather payload, which feeds
        the communication-volume column of Table II.
        """
        return 0


class SelfComm(Communicator):
    """The trivial single-rank communicator (``MPI_COMM_SELF``).

    Used for sequential runs of the distributed drivers and as the base case
    of communicator splits.
    """

    def __init__(self) -> None:
        self._bytes = 0

    @property
    def rank(self) -> int:
        return 0

    @property
    def size(self) -> int:
        return 1

    def barrier(self) -> None:
        return None

    def ibarrier(self) -> Request:
        return CompletedRequest()

    def reduce(self, value: Any, op: str = "sum", root: int = 0) -> Optional[Any]:
        if root != 0:
            raise ValueError("SelfComm only has rank 0")
        return value

    def ireduce(self, value: Any, op: str = "sum", root: int = 0) -> Request:
        return CompletedRequest(self.reduce(value, op, root))

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        return value

    def bcast(self, value: Any, root: int = 0) -> Any:
        if root != 0:
            raise ValueError("SelfComm only has rank 0")
        return value

    def ibcast(self, value: Any, root: int = 0) -> Request:
        return CompletedRequest(self.bcast(value, root))

    def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        if root != 0:
            raise ValueError("SelfComm only has rank 0")
        return [value]

    def split(self, color: int, key: int = 0) -> "Communicator":
        return SelfComm()
