"""Reduction operators usable by the MPI-like communicators.

MPI reductions require associative (and here also commutative) operators.  The
operators below cover everything the betweenness drivers need: summation of
state frames, elementwise numpy sums, and scalar sum/min/max/logical-or
reductions used for control values such as the termination flag.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.core.state_frame import StateFrame

__all__ = ["REDUCE_OPS", "reduce_op", "combine"]


def _sum(a: Any, b: Any) -> Any:
    if isinstance(a, StateFrame):
        result = a.copy()
        result.add_into(b)
        return result
    if isinstance(a, np.ndarray):
        return a + b
    return a + b


def _max(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def _min(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


def _lor(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray):
        return np.logical_or(a, b)
    return bool(a) or bool(b)


def _land(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray):
        return np.logical_and(a, b)
    return bool(a) and bool(b)


REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": _sum,
    "max": _max,
    "min": _min,
    "lor": _lor,
    "land": _land,
}


def reduce_op(name: str) -> Callable[[Any, Any], Any]:
    """Look up a named reduction operator."""
    try:
        return REDUCE_OPS[name]
    except KeyError:
        raise ValueError(f"unknown reduction op {name!r}; known: {sorted(REDUCE_OPS)}") from None


def combine(op: str, values: list[Any]) -> Any:
    """Fold ``values`` with the named operator (for testing and local use)."""
    if not values:
        raise ValueError("combine() requires at least one value")
    fn = reduce_op(op)
    acc = values[0]
    if isinstance(acc, StateFrame):
        acc = acc.copy()
    elif isinstance(acc, np.ndarray):
        acc = acc.copy()
    for value in values[1:]:
        acc = fn(acc, value)
    return acc
