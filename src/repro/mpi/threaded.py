"""Threaded in-process MPI runtime.

mpi4py and a multi-node cluster are not available in this environment, so the
MPI substrate the paper's algorithms need is provided by an in-process
runtime: every rank is a Python thread, and the collectives are implemented on
shared memory with the same *semantics* as their MPI counterparts:

* collectives are matched by call order per communicator (the i-th ``ireduce``
  of every rank belongs to the same operation);
* non-blocking collectives complete for a rank as soon as its own
  participation requirements are met (a reduction completes at a non-root rank
  once its contribution has been deposited; at the root only after every
  contribution arrived — slightly stricter than MPI, which is safe);
* reductions use associative/commutative operators from
  :mod:`repro.mpi.reduce_ops`.

The runtime also accounts the framed wire bytes of every reduce/bcast/gather
(:func:`framed_payload_bytes`: the structural payload size plus the 8-byte
length prefix a socket transport would frame it with), which the experiment
harness uses for the communication-volume statistics of Table II and which
keeps byte totals comparable across the threaded and socket transports.
"""

from __future__ import annotations

import pickle
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.state_frame import StateFrame
from repro.mpi.interface import Communicator
from repro.mpi.reduce_ops import reduce_op
from repro.mpi.requests import PolledRequest, Request

__all__ = [
    "FRAME_HEADER_BYTES",
    "ThreadedCommWorld",
    "ThreadedComm",
    "framed_payload_bytes",
    "run_threaded",
]

#: Length prefix of one socket-transport frame (see ``repro.dist.socketcomm``).
FRAME_HEADER_BYTES = 8


def _payload_bytes(value: Any) -> int:
    """Approximate wire size of a collective payload.

    Sizes are derived structurally — ``nbytes`` for arrays (and anything
    array-like that exposes it), buffer lengths for bytes, recursion for
    containers — so that accounting the traffic of a reduction never
    serializes a multi-gigabyte array just to measure it.  ``pickle.dumps``
    remains only as the last resort for exotic scalar payloads.
    """
    if isinstance(value, StateFrame):
        return value.serialized_bytes()
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(value, (bool, int, float)) or value is None:
        return 8
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(_payload_bytes(item) for item in value)
    if isinstance(value, dict):
        return sum(_payload_bytes(k) + _payload_bytes(v) for k, v in value.items())
    try:
        return len(pickle.dumps(value))
    except Exception:  # pragma: no cover - exotic payloads
        return 64


def framed_payload_bytes(value: Any) -> int:
    """Framed wire size of one collective payload on the socket path.

    The in-process transport moves references, so :func:`_payload_bytes`
    deliberately ignores framing.  Real transports don't: every message the
    socket communicator puts on a TCP stream carries a
    :data:`FRAME_HEADER_BYTES` length prefix in front of the payload.  Byte
    accounting that compares the threaded simulation against real transport
    (or estimates for an mpi4py run) must use this framed figure, or the
    simulation under-reports every message by the header.
    """
    return FRAME_HEADER_BYTES + _payload_bytes(value)


class _Collective:
    """Shared state of one in-flight collective operation."""

    __slots__ = ("kind", "op", "root", "accumulator", "contributions", "count", "value", "bytes")

    def __init__(self, kind: str, op: str, root: int) -> None:
        self.kind = kind
        self.op = op
        self.root = root
        self.accumulator: Any = None
        self.contributions: Dict[int, Any] = {}
        self.count = 0
        self.value: Any = None  # bcast value
        self.bytes = 0


class _CommCore:
    """State shared by all ranks of one communicator."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.lock = threading.Lock()
        self.table: Dict[Tuple[str, int], _Collective] = {}
        self.total_bytes = 0
        # Cache of communicator splits so that every rank calling split() with
        # the same call index joins the same sub-communicator cores.
        self.split_table: Dict[int, Dict[int, "_CommCore"]] = {}
        self.split_members: Dict[int, Dict[int, List[Tuple[int, int]]]] = {}


class ThreadedComm(Communicator):
    """Communicator handle of one rank backed by a shared :class:`_CommCore`."""

    def __init__(self, core: _CommCore, rank: int) -> None:
        self._core = core
        self._rank = rank
        self._seq: Dict[str, int] = {}
        self._split_seq = 0

    # ------------------------------------------------------------------ #
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._core.size

    def communication_bytes(self) -> int:
        with self._core.lock:
            return self._core.total_bytes

    # ------------------------------------------------------------------ #
    def _next_seq(self, kind: str) -> int:
        seq = self._seq.get(kind, 0)
        self._seq[kind] = seq + 1
        return seq

    def _join(self, kind: str, op: str, root: int, value: Any) -> Tuple[_Collective, Tuple[str, int]]:
        """Deposit this rank's contribution to the matching collective."""
        key = (kind, self._next_seq(kind))
        core = self._core
        with core.lock:
            entry = core.table.get(key)
            if entry is None:
                entry = _Collective(kind, op, root)
                core.table[key] = entry
            if entry.op != op or entry.root != root:
                raise RuntimeError(
                    f"collective mismatch at {key}: ranks disagree on op/root "
                    f"({entry.op}/{entry.root} vs {op}/{root})"
                )
            if kind in ("reduce", "allreduce"):
                payload = framed_payload_bytes(value)
                entry.bytes += payload
                core.total_bytes += payload
                contribution = value.copy() if isinstance(value, (StateFrame, np.ndarray)) else value
                if entry.accumulator is None:
                    entry.accumulator = contribution
                else:
                    entry.accumulator = reduce_op(op)(entry.accumulator, contribution)
            elif kind == "bcast":
                if self._rank == root:
                    entry.value = value
                    payload = framed_payload_bytes(value)
                    entry.bytes += payload * max(self.size - 1, 0)
                    core.total_bytes += payload * max(self.size - 1, 0)
            elif kind == "gather":
                payload = framed_payload_bytes(value)
                entry.bytes += payload
                core.total_bytes += payload
                entry.contributions[self._rank] = value
            elif kind == "barrier":
                pass
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown collective kind {kind!r}")
            entry.count += 1
        return entry, key

    def _all_arrived(self, entry: _Collective) -> bool:
        with self._core.lock:
            return entry.count >= self._core.size

    def _root_arrived(self, entry: _Collective) -> bool:
        with self._core.lock:
            return entry.value is not None or entry.count >= self._core.size

    # ------------------------------------------------------------------ #
    # Barrier
    # ------------------------------------------------------------------ #
    def ibarrier(self) -> Request:
        entry, _ = self._join("barrier", "sum", 0, None)
        return PolledRequest(lambda: self._all_arrived(entry))

    def barrier(self) -> None:
        self.ibarrier().wait()

    # ------------------------------------------------------------------ #
    # Reduce
    # ------------------------------------------------------------------ #
    def ireduce(self, value: Any, op: str = "sum", root: int = 0) -> Request:
        entry, _ = self._join("reduce", op, root, value)
        if self._rank == root:
            def fetch() -> Any:
                with self._core.lock:
                    return entry.accumulator
            return PolledRequest(lambda: self._all_arrived(entry), fetch)
        # Non-root ranks complete as soon as their contribution is deposited.
        return PolledRequest(lambda: True)

    def reduce(self, value: Any, op: str = "sum", root: int = 0) -> Optional[Any]:
        request = self.ireduce(value, op, root)
        result = request.wait()
        return result if self._rank == root else None

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        entry, _ = self._join("allreduce", op, 0, value)
        PolledRequest(lambda: self._all_arrived(entry)).wait()
        with self._core.lock:
            return entry.accumulator

    # ------------------------------------------------------------------ #
    # Broadcast
    # ------------------------------------------------------------------ #
    def ibcast(self, value: Any, root: int = 0) -> Request:
        entry, _ = self._join("bcast", "sum", root, value)
        if self._rank == root:
            return PolledRequest(lambda: True, lambda: value)

        def fetch() -> Any:
            with self._core.lock:
                return entry.value

        return PolledRequest(lambda: self._root_arrived(entry), fetch)

    def bcast(self, value: Any, root: int = 0) -> Any:
        return self.ibcast(value, root).wait()

    # ------------------------------------------------------------------ #
    # Gather
    # ------------------------------------------------------------------ #
    def gather(self, value: Any, root: int = 0) -> Optional[List[Any]]:
        entry, _ = self._join("gather", "sum", root, value)
        PolledRequest(lambda: self._all_arrived(entry)).wait()
        if self._rank != root:
            return None
        with self._core.lock:
            return [entry.contributions[r] for r in range(self._core.size)]

    # ------------------------------------------------------------------ #
    # Split
    # ------------------------------------------------------------------ #
    def split(self, color: int, key: int = 0) -> "Communicator":
        """MPI_Comm_split: ranks with the same color form a new communicator,
        ordered by ``(key, old rank)``."""
        core = self._core
        call_index = self._split_seq
        self._split_seq += 1
        with core.lock:
            members = core.split_members.setdefault(call_index, {})
            members.setdefault(color, []).append((key, self._rank))

        # Wait until every rank of the parent communicator registered its color.
        def all_registered() -> bool:
            with core.lock:
                registered = sum(
                    len(v) for v in core.split_members.get(call_index, {}).values()
                )
                return registered >= core.size

        PolledRequest(all_registered).wait()

        with core.lock:
            group = sorted(core.split_members[call_index][color])
            cores_for_call = core.split_table.setdefault(call_index, {})
            if color not in cores_for_call:
                cores_for_call[color] = _CommCore(len(group))
            new_core = cores_for_call[color]
            new_rank = [old_rank for _, old_rank in group].index(self._rank)
        return ThreadedComm(new_core, new_rank)


class ThreadedCommWorld:
    """Factory for a world of threaded ranks (the ``MPI_COMM_WORLD`` analogue)."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self._core = _CommCore(size)
        self._size = size

    @property
    def size(self) -> int:
        return self._size

    def comm_for_rank(self, rank: int) -> ThreadedComm:
        if not (0 <= rank < self._size):
            raise ValueError(f"rank {rank} out of range [0, {self._size})")
        return ThreadedComm(self._core, rank)

    @property
    def total_bytes(self) -> int:
        with self._core.lock:
            return self._core.total_bytes


def run_threaded(
    num_ranks: int,
    target: Callable[[Communicator, int], Any],
    *,
    timeout: Optional[float] = None,
) -> List[Any]:
    """Run ``target(comm, rank)`` in ``num_ranks`` threads and collect results.

    Exceptions raised in any rank are re-raised in the caller (after all
    threads have been joined) so that test failures surface properly.
    """
    world = ThreadedCommWorld(num_ranks)
    results: List[Any] = [None] * num_ranks
    errors: List[Optional[BaseException]] = [None] * num_ranks

    def runner(rank: int) -> None:
        comm = world.comm_for_rank(rank)
        try:
            results[rank] = target(comm, rank)
        except BaseException as exc:  # noqa: BLE001 - propagate to caller
            errors[rank] = exc

    threads = [threading.Thread(target=runner, args=(rank,), daemon=True) for rank in range(num_ranks)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
        if thread.is_alive():
            raise TimeoutError("threaded MPI run did not finish within the timeout")
    for error in errors:
        if error is not None:
            raise error
    return results
