"""NUMA-aware communicator topology (Section IV-E of the paper).

The paper launches one MPI process per socket (NUMA node) and splits
``MPI_COMM_WORLD`` into

* a *local* communicator per compute node (the processes sharing that node),
  used to pre-aggregate state frames via shared memory, and
* a *global* communicator containing the first process of each node, on which
  the expensive inter-node reduction is performed.

:func:`build_topology` reproduces that split on top of any
:class:`~repro.mpi.interface.Communicator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mpi.interface import Communicator

__all__ = ["NodeTopology", "build_topology"]


@dataclass
class NodeTopology:
    """Result of the node-local / global communicator split.

    Attributes
    ----------
    world:
        The original communicator.
    local:
        Communicator of the processes placed on the same compute node.
    global_:
        Communicator of the node leaders (local rank 0); ``None`` on processes
        that are not node leaders.
    node_index:
        Index of the compute node this process is placed on.
    processes_per_node:
        Number of processes per compute node (1 process per NUMA socket in the
        paper's configuration).
    """

    world: Communicator
    local: Communicator
    global_: Optional[Communicator]
    node_index: int
    processes_per_node: int

    @property
    def is_node_leader(self) -> bool:
        return self.local.rank == 0

    @property
    def num_nodes(self) -> int:
        total = self.world.size
        return (total + self.processes_per_node - 1) // self.processes_per_node


def build_topology(world: Communicator, processes_per_node: int) -> NodeTopology:
    """Split ``world`` into node-local communicators plus a leader communicator.

    Processes are assigned to nodes in rank order (ranks ``0..k-1`` on node 0,
    ``k..2k-1`` on node 1, ...), matching how MPI launchers place consecutive
    ranks on the same host by default.
    """
    if processes_per_node <= 0:
        raise ValueError("processes_per_node must be positive")
    node_index = world.rank // processes_per_node
    local = world.split(color=node_index, key=world.rank)
    # Leaders (local rank 0) get color 0, everyone else color 1; only the
    # leaders' communicator is used afterwards.
    is_leader = local.rank == 0
    leaders = world.split(color=0 if is_leader else 1, key=world.rank)
    return NodeTopology(
        world=world,
        local=local,
        global_=leaders if is_leader else None,
        node_index=node_index,
        processes_per_node=processes_per_node,
    )
