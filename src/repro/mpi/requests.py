"""Non-blocking request handles (the analogue of ``MPI_Request``).

The paper's algorithms overlap sampling with communication by polling
non-blocking collectives (``IREDUCE``, ``IBARRIER``, ``IBROADCAST``); the
:class:`Request` interface below provides exactly that polling surface:
``test()`` returns whether the operation has completed without blocking, and
``wait()`` spins until it has.
"""

from __future__ import annotations

import abc
import time
from typing import Any, Callable, Optional

__all__ = ["Request", "CompletedRequest", "PolledRequest"]


class Request(abc.ABC):
    """Handle of an in-flight non-blocking operation."""

    @abc.abstractmethod
    def test(self) -> bool:
        """Return ``True`` iff the operation has completed (non-blocking)."""

    def wait(self, *, poll_interval: float = 0.0) -> Any:
        """Block (spin) until completion and return :meth:`result`."""
        while not self.test():
            if poll_interval > 0.0:
                time.sleep(poll_interval)
        return self.result()

    def result(self) -> Any:
        """The operation's result; only valid once :meth:`test` is true.

        For reductions this is the aggregated value at the root (``None``
        elsewhere); for broadcasts it is the broadcast value; for barriers it
        is ``None``.
        """
        return None

    @property
    def done(self) -> bool:
        return self.test()


class CompletedRequest(Request):
    """A request that is already complete (used by the single-rank comm)."""

    def __init__(self, value: Any = None) -> None:
        self._value = value

    def test(self) -> bool:
        return True

    def result(self) -> Any:
        return self._value


class PolledRequest(Request):
    """A request backed by a poll function and a result function.

    ``poll`` must be cheap and non-blocking; ``fetch`` is called lazily the
    first time the result is requested after completion.
    """

    def __init__(self, poll: Callable[[], bool], fetch: Optional[Callable[[], Any]] = None) -> None:
        self._poll = poll
        self._fetch = fetch
        self._completed = False
        self._result: Any = None
        self._fetched = False

    def test(self) -> bool:
        if not self._completed:
            self._completed = bool(self._poll())
        return self._completed

    def result(self) -> Any:
        if not self.test():
            raise RuntimeError("result() called before the request completed")
        if not self._fetched:
            self._result = self._fetch() if self._fetch is not None else None
            self._fetched = True
        return self._result
