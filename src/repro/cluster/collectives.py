"""Cost models for the MPI collectives used by the algorithms.

Standard LogP-style estimates for tree-based collective implementations
(MPICH's defaults for medium/large messages):

* reduction of ``b`` bytes over ``p`` ranks: ``ceil(log2 p)`` rounds, each
  paying one message of ``b`` bytes plus the local combine;
* barrier: ``ceil(log2 p)`` latency-only rounds (dissemination barrier);
* broadcast of small control messages: ``ceil(log2 p)`` latency rounds.

These are intentionally simple: the paper's scaling behaviour depends on the
*ratio* between the (overlappable) communication time and the sampling
throughput, not on the last 20 % of collective-algorithm fidelity.
"""

from __future__ import annotations

import math

from repro.cluster.machine import NetworkSpec

__all__ = ["reduce_time", "barrier_time", "broadcast_time", "local_aggregation_time"]


def _rounds(num_ranks: int) -> int:
    if num_ranks <= 1:
        return 0
    return int(math.ceil(math.log2(num_ranks)))


def reduce_time(
    network: NetworkSpec,
    num_ranks: int,
    message_bytes: int,
    *,
    combine_seconds_per_byte: float = 2.5e-10,
) -> float:
    """Blocking tree reduction of ``message_bytes`` over ``num_ranks`` ranks."""
    if num_ranks <= 0:
        raise ValueError("num_ranks must be positive")
    if message_bytes < 0:
        raise ValueError("message_bytes must be non-negative")
    rounds = _rounds(num_ranks)
    per_round = network.message_time(message_bytes) + combine_seconds_per_byte * message_bytes
    return rounds * per_round


def barrier_time(network: NetworkSpec, num_ranks: int) -> float:
    """Dissemination barrier over ``num_ranks`` ranks (latency bound)."""
    if num_ranks <= 0:
        raise ValueError("num_ranks must be positive")
    return _rounds(num_ranks) * network.message_time(0)


def broadcast_time(network: NetworkSpec, num_ranks: int, message_bytes: int = 8) -> float:
    """Binomial-tree broadcast of a small control message."""
    if num_ranks <= 0:
        raise ValueError("num_ranks must be positive")
    if message_bytes < 0:
        raise ValueError("message_bytes must be non-negative")
    return _rounds(num_ranks) * network.message_time(message_bytes)


def local_aggregation_time(
    frame_bytes: int,
    num_local_frames: int,
    memory_bandwidth: float,
) -> float:
    """Shared-memory aggregation of ``num_local_frames`` frames of the given size.

    Models both the per-node pre-reduction over the local communicator
    (Section IV-E) and the thread-frame aggregation of the epoch framework.
    """
    if frame_bytes < 0 or num_local_frames < 0:
        raise ValueError("sizes must be non-negative")
    if memory_bandwidth <= 0:
        raise ValueError("memory_bandwidth must be positive")
    return num_local_frames * frame_bytes / memory_bandwidth
