"""Per-sample cost model.

Each KADABRA sample is one (bidirectional) BFS; its cost is essentially the
number of adjacency entries touched times the per-edge traversal time of the
machine.  Two ways to obtain the edges-touched figure:

* :func:`measure_edges_per_sample` runs the actual sampler on the (proxy)
  graph and averages the ``edges_touched`` counter of the returned samples —
  the most faithful option, used when a concrete :class:`CSRGraph` exists;
* :func:`estimate_edges_per_sample` is an analytic estimate from ``|V|``,
  ``|E|`` and the diameter, used for the paper-scale instances of Table I/II
  whose billion-edge graphs cannot be instantiated here: on complex networks
  the bidirectional search is dominated by its last frontier
  (≈ ``4·(2m)^(2/3)`` adjacency entries with a Graph500-like degree skew),
  while on sparse road networks (average degree below ~8) the two BFS balls
  cover essentially the whole graph — with poor locality — before they meet.

The constants were fitted so that the implied per-sample times on the paper's
instances match the throughputs that can be derived from Table II within a
small factor (orkut ≈ 6 ms, roadNet-PA ≈ 25-30 ms, uk-2007 ≈ 45-55 ms per
sample and thread).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.machine import MachineSpec
from repro.graph.csr import CSRGraph
from repro.sampling.base import PathSampler

__all__ = [
    "measure_edges_per_sample",
    "estimate_edges_per_sample",
    "sample_seconds",
]

#: Average degree below which a graph is treated as a road-network-like
#: instance (near-planar, high diameter, poor BFS locality) by the analytic
#: estimate.  Road networks have average degree < 4; the complex networks of
#: Table I all exceed 30.
ROAD_AVG_DEGREE_THRESHOLD = 8.0


def measure_edges_per_sample(
    sampler: PathSampler,
    *,
    num_probes: int = 64,
    seed: int | None = 0,
) -> float:
    """Average adjacency entries touched per sample, measured empirically."""
    if num_probes <= 0:
        raise ValueError("num_probes must be positive")
    rng = np.random.default_rng(seed)
    total = 0
    for _ in range(num_probes):
        total += sampler.sample(rng).edges_touched
    return total / float(num_probes)


def estimate_edges_per_sample(num_vertices: int, num_edges: int, diameter: int) -> float:
    """Analytic estimate of adjacency entries touched per bidirectional sample."""
    if num_vertices <= 0 or num_edges < 0 or diameter < 0:
        raise ValueError("graph statistics must be non-negative (and n > 0)")
    directed_entries = 2.0 * num_edges
    avg_degree = directed_entries / num_vertices
    if avg_degree <= ROAD_AVG_DEGREE_THRESHOLD and diameter > 32:
        # Road networks: both BFS balls traverse essentially the whole graph
        # with poor cache locality and hundreds of frontier levels; the
        # effective cost corresponds to about two full adjacency scans.
        return 2.0 * directed_entries
    # Complex networks: the bidirectional search stops after covering roughly
    # the last frontier, which grows like the 2/3 power of the edge count.
    return float(min(directed_entries, 4.0 * directed_entries ** (2.0 / 3.0)))


def sample_seconds(
    edges_per_sample: float,
    machine: MachineSpec,
    *,
    numa_local: bool = True,
) -> float:
    """Wall-clock seconds one thread needs for one sample."""
    if edges_per_sample < 0:
        raise ValueError("edges_per_sample must be non-negative")
    penalty = 1.0 if numa_local else machine.numa_remote_penalty
    return edges_per_sample * machine.edge_traversal_seconds * penalty
