"""Cluster performance model: machine/network specs and epoch-level simulation."""

from repro.cluster.machine import MachineSpec, NetworkSpec, ClusterConfig, PAPER_CLUSTER
from repro.cluster.collectives import (
    reduce_time,
    barrier_time,
    broadcast_time,
    local_aggregation_time,
)
from repro.cluster.sampling_cost import (
    measure_edges_per_sample,
    estimate_edges_per_sample,
    sample_seconds,
)
from repro.cluster.workload import InstanceProfile
from repro.cluster.trace import SimulatedRun, PHASE_ORDER
from repro.cluster.kadabra_model import (
    simulate_epoch_mpi,
    simulate_shared_memory,
    simulate_mpi_only,
)

__all__ = [
    "MachineSpec",
    "NetworkSpec",
    "ClusterConfig",
    "PAPER_CLUSTER",
    "reduce_time",
    "barrier_time",
    "broadcast_time",
    "local_aggregation_time",
    "measure_edges_per_sample",
    "estimate_edges_per_sample",
    "sample_seconds",
    "InstanceProfile",
    "SimulatedRun",
    "PHASE_ORDER",
    "simulate_epoch_mpi",
    "simulate_shared_memory",
    "simulate_mpi_only",
]
