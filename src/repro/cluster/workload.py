"""Workload profiles consumed by the cluster performance model.

An :class:`InstanceProfile` bundles everything the performance model needs to
know about one betweenness-approximation run on one input graph:

* the graph's size statistics (``|V|``, ``|E|``, diameter), which determine
  the state-frame size, the stopping-condition check cost and the per-sample
  BFS cost;
* the *workload*: how many samples the adaptive algorithm takes before
  terminating (``target_samples``) and how many calibration samples precede
  them;
* the sequential phase costs (diameter computation, the sequential part of the
  calibration).

Profiles are created either from an actual :class:`~repro.graph.csr.CSRGraph`
(measuring the per-sample cost empirically — used for the proxy instances) or
purely from statistics (used for the paper's billion-edge instances of
Table I/II, which cannot be instantiated in this environment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.cluster.machine import MachineSpec
from repro.cluster.sampling_cost import (
    estimate_edges_per_sample,
    measure_edges_per_sample,
)
from repro.core.stopping import compute_omega
from repro.core.calibration import default_calibration_samples
from repro.graph.csr import CSRGraph

__all__ = ["InstanceProfile"]

#: Number of BFS-equivalent graph sweeps charged to the sequential diameter
#: computation (the SumSweep-style algorithm of Borassi et al. needs a few
#: dozen BFS invocations on complex networks).
DIAMETER_SWEEPS = 30.0

#: Sequential per-vertex cost of the calibration's binary search (seconds).
CALIBRATION_SECONDS_PER_VERTEX = 4.0e-8


@dataclass(frozen=True)
class InstanceProfile:
    """Workload description of one instance for the performance model."""

    name: str
    num_vertices: int
    num_edges: int
    diameter: int
    target_samples: int
    edges_per_sample: float
    calibration_samples: int
    eps: float = 0.001
    delta: float = 0.1
    kind: str = "complex"  # "complex" or "road"

    def __post_init__(self) -> None:
        if self.num_vertices <= 0 or self.num_edges < 0:
            raise ValueError("graph statistics must be positive")
        if self.target_samples <= 0:
            raise ValueError("target_samples must be positive")
        if self.edges_per_sample <= 0:
            raise ValueError("edges_per_sample must be positive")
        if self.calibration_samples < 0:
            raise ValueError("calibration_samples must be non-negative")

    # ------------------------------------------------------------------ #
    @property
    def frame_bytes(self) -> int:
        """Serialized size of one state frame (8 bytes per vertex + counter)."""
        return 8 * self.num_vertices + 8

    @property
    def graph_bytes(self) -> int:
        """Approximate CSR footprint: indptr (8 B/vertex) + 2 directed entries
        of 4 B per undirected edge, for graph + transpose access."""
        return 8 * (self.num_vertices + 1) + 8 * self.num_edges

    @property
    def vertex_diameter(self) -> int:
        return self.diameter + 1

    def omega(self) -> int:
        """The static maximum number of samples for this instance's eps/delta."""
        return compute_omega(self.eps, self.delta, max(self.vertex_diameter, 3))

    def diameter_seconds(self, machine: MachineSpec) -> float:
        """Sequential diameter-phase cost (a few dozen BFS sweeps)."""
        return DIAMETER_SWEEPS * 2.0 * self.num_edges * machine.edge_traversal_seconds

    def calibration_sequential_seconds(self, machine: MachineSpec) -> float:
        """Sequential part of the calibration (per-vertex binary search)."""
        return CALIBRATION_SECONDS_PER_VERTEX * self.num_vertices

    def check_seconds(self, machine: MachineSpec) -> float:
        """Cost of one stopping-condition evaluation at rank 0."""
        return machine.check_seconds_per_vertex * self.num_vertices

    # ------------------------------------------------------------------ #
    @classmethod
    def from_statistics(
        cls,
        name: str,
        num_vertices: int,
        num_edges: int,
        diameter: int,
        *,
        target_samples: int,
        eps: float = 0.001,
        delta: float = 0.1,
        calibration_samples: Optional[int] = None,
        kind: Optional[str] = None,
    ) -> "InstanceProfile":
        """Create a profile from published statistics (Table I / Table II)."""
        edges_per_sample = estimate_edges_per_sample(num_vertices, num_edges, diameter)
        omega = compute_omega(eps, delta, max(diameter + 1, 3))
        if calibration_samples is None:
            calibration_samples = default_calibration_samples(omega, num_vertices)
        if kind is None:
            kind = "road" if (2.0 * num_edges / num_vertices) <= 8.0 else "complex"
        return cls(
            name=name,
            num_vertices=num_vertices,
            num_edges=num_edges,
            diameter=diameter,
            target_samples=target_samples,
            edges_per_sample=edges_per_sample,
            calibration_samples=calibration_samples,
            eps=eps,
            delta=delta,
            kind=kind,
        )

    @classmethod
    def from_graph(
        cls,
        name: str,
        graph: CSRGraph,
        *,
        diameter: int,
        target_samples: int,
        eps: float = 0.001,
        delta: float = 0.1,
        calibration_samples: Optional[int] = None,
        measure_cost: bool = True,
        seed: int = 0,
        kind: Optional[str] = None,
    ) -> "InstanceProfile":
        """Create a profile from a concrete (proxy) graph.

        When ``measure_cost`` is true the per-sample cost is measured by
        running the bidirectional sampler on the graph; otherwise the analytic
        estimate is used.
        """
        if measure_cost and graph.num_vertices >= 2 and graph.num_edges > 0:
            from repro.sampling import BidirectionalBFSSampler

            edges_per_sample = measure_edges_per_sample(
                BidirectionalBFSSampler(graph), num_probes=32, seed=seed
            )
            edges_per_sample = max(edges_per_sample, 1.0)
        else:
            edges_per_sample = estimate_edges_per_sample(
                graph.num_vertices, graph.num_edges, diameter
            )
        omega = compute_omega(eps, delta, max(diameter + 1, 3))
        if calibration_samples is None:
            calibration_samples = default_calibration_samples(omega, graph.num_vertices)
        if kind is None:
            avg_degree = 2.0 * graph.num_edges / max(graph.num_vertices, 1)
            kind = "road" if avg_degree <= 8.0 else "complex"
        return cls(
            name=name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            diameter=diameter,
            target_samples=target_samples,
            edges_per_sample=edges_per_sample,
            calibration_samples=calibration_samples,
            eps=eps,
            delta=delta,
            kind=kind,
        )

    def scaled(self, factor: float, *, name: Optional[str] = None) -> "InstanceProfile":
        """A profile with the graph size scaled by ``factor`` (workload kept)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        new_vertices = max(2, int(round(self.num_vertices * factor)))
        new_edges = max(1, int(round(self.num_edges * factor)))
        return replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            num_vertices=new_vertices,
            num_edges=new_edges,
            edges_per_sample=estimate_edges_per_sample(new_vertices, new_edges, self.diameter),
        )
