"""Machine and interconnect specifications for the cluster performance model.

The paper's testbed: 16 compute nodes, each with two Intel Xeon Gold 6126
sockets (12 cores per socket, one application thread per core), 192 GiB RAM
per node (96 GiB per NUMA domain), connected by Intel OmniPath, MPICH 3.2.
The dataclasses below capture the parameters of that installation that the
performance model needs; all of them can be overridden to model other
clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MachineSpec", "NetworkSpec", "ClusterConfig", "PAPER_CLUSTER"]

GIB = 1024 ** 3


@dataclass(frozen=True)
class MachineSpec:
    """A homogeneous cluster of multi-socket compute nodes.

    Attributes
    ----------
    num_nodes:
        Number of compute nodes available.
    sockets_per_node:
        NUMA domains (sockets) per node.
    cores_per_socket:
        Physical cores per socket; the paper runs one application thread per
        core.
    memory_per_node_bytes:
        RAM per compute node.
    edge_traversal_seconds:
        Time for one adjacency-entry traversal during sampling when the
        memory is NUMA-local (the inverse of the per-core traversal rate).
    numa_remote_penalty:
        Multiplicative slowdown of edge traversals when a process spans both
        sockets (remote-socket cache misses); the paper measures a 20-30 %
        gain from avoiding this, i.e. a penalty around 1.25.
    check_seconds_per_vertex:
        Cost of evaluating the stopping condition per vertex (rank 0 only).
    memory_copy_bandwidth:
        Shared-memory bandwidth used for node-local frame aggregation.
    """

    num_nodes: int = 16
    sockets_per_node: int = 2
    cores_per_socket: int = 12
    memory_per_node_bytes: int = 192 * GIB
    edge_traversal_seconds: float = 4.0e-9
    numa_remote_penalty: float = 1.25
    check_seconds_per_vertex: float = 2.0e-9
    memory_copy_bandwidth: float = 8.0e9

    def __post_init__(self) -> None:
        if self.num_nodes <= 0 or self.sockets_per_node <= 0 or self.cores_per_socket <= 0:
            raise ValueError("machine dimensions must be positive")
        if self.edge_traversal_seconds <= 0:
            raise ValueError("edge_traversal_seconds must be positive")
        if self.numa_remote_penalty < 1.0:
            raise ValueError("numa_remote_penalty must be >= 1.0")

    @property
    def cores_per_node(self) -> int:
        return self.sockets_per_node * self.cores_per_socket

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.cores_per_node

    @property
    def memory_per_socket_bytes(self) -> int:
        return self.memory_per_node_bytes // self.sockets_per_node

    def fits_in_socket_memory(self, graph_bytes: int, *, reserve_fraction: float = 0.5) -> bool:
        """Whether a replicated graph of the given size fits next to one
        process per socket (the paper's constraint in Section IV)."""
        return graph_bytes <= self.memory_per_socket_bytes * reserve_fraction


@dataclass(frozen=True)
class NetworkSpec:
    """Point-to-point interconnect parameters (Intel OmniPath defaults).

    Attributes
    ----------
    latency_seconds:
        One-way small-message latency.
    bandwidth_bytes_per_second:
        Per-link large-message bandwidth (OmniPath: 100 Gbit/s).
    per_message_software_overhead:
        MPI software overhead added to every message.
    """

    latency_seconds: float = 1.5e-6
    bandwidth_bytes_per_second: float = 12.5e9
    per_message_software_overhead: float = 2.0e-6

    def __post_init__(self) -> None:
        if self.latency_seconds < 0 or self.per_message_software_overhead < 0:
            raise ValueError("latencies must be non-negative")
        if self.bandwidth_bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")

    def message_time(self, num_bytes: int) -> float:
        """Time to move one message of ``num_bytes`` between two nodes."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return (
            self.latency_seconds
            + self.per_message_software_overhead
            + num_bytes / self.bandwidth_bytes_per_second
        )


@dataclass(frozen=True)
class ClusterConfig:
    """A machine plus its interconnect."""

    machine: MachineSpec = field(default_factory=MachineSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)


#: The configuration used throughout the paper's evaluation.
PAPER_CLUSTER = ClusterConfig(machine=MachineSpec(), network=NetworkSpec())
