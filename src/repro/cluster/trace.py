"""Result objects and phase accounting of the cluster performance model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["SimulatedRun", "PHASE_ORDER"]

#: Order in which phases are stacked in Fig. 2b of the paper.
PHASE_ORDER = [
    "diameter",
    "calibration",
    "epoch_transition",
    "ibarrier",
    "reduce",
    "check",
]


@dataclass
class SimulatedRun:
    """Outcome of one simulated betweenness-approximation run.

    Attributes
    ----------
    instance:
        Name of the instance profile.
    algorithm:
        ``"shared-memory"``, ``"epoch-mpi"`` or ``"mpi-only"``.
    num_nodes, processes_per_node, threads_per_process:
        The simulated placement.
    phase_seconds:
        Simulated wall-clock seconds per phase (keys of :data:`PHASE_ORDER`
        plus ``"sampling"`` for the thread-0 sampling portion of each epoch).
    num_epochs:
        Number of aggregation rounds until termination.
    total_samples:
        Samples accumulated when the algorithm terminates.
    communication_bytes_per_epoch:
        Total reduction payload per epoch summed over all processes (the
        "Com." column of Table II).
    barrier_seconds:
        Simulated time spent in the non-blocking barrier (the "B" column).
    """

    instance: str
    algorithm: str
    num_nodes: int
    processes_per_node: int
    threads_per_process: int
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    num_epochs: int = 0
    total_samples: int = 0
    communication_bytes_per_epoch: float = 0.0
    barrier_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    @property
    def num_processes(self) -> int:
        return self.num_nodes * self.processes_per_node

    @property
    def total_threads(self) -> int:
        return self.num_processes * self.threads_per_process

    @property
    def total_seconds(self) -> float:
        return float(sum(self.phase_seconds.values()))

    @property
    def adaptive_sampling_seconds(self) -> float:
        """Duration of the adaptive-sampling phase (everything after calibration)."""
        sequential = self.phase_seconds.get("diameter", 0.0) + self.phase_seconds.get(
            "calibration", 0.0
        )
        return self.total_seconds - sequential

    @property
    def calibration_seconds(self) -> float:
        return self.phase_seconds.get("calibration", 0.0)

    @property
    def samples_per_second_per_node(self) -> float:
        """The y-axis of Fig. 3b: samples / (ADS time * compute nodes)."""
        ads = self.adaptive_sampling_seconds
        if ads <= 0.0 or self.num_nodes <= 0:
            return 0.0
        return self.total_samples / ads / self.num_nodes

    def phase_fractions(self) -> Dict[str, float]:
        """Per-phase fraction of the total run time (Fig. 2b bars)."""
        total = self.total_seconds
        if total <= 0.0:
            return {k: 0.0 for k in self.phase_seconds}
        return {k: v / total for k, v in self.phase_seconds.items()}

    def stacked_breakdown(self) -> List[float]:
        """Fractions in the fixed :data:`PHASE_ORDER` (sampling folded into
        ``epoch_transition`` as in the paper, where thread-0 sampling time is
        part of the overlapped epoch machinery)."""
        fractions = self.phase_fractions()
        merged = dict(fractions)
        merged["epoch_transition"] = merged.get("epoch_transition", 0.0) + merged.pop(
            "sampling", 0.0
        )
        return [merged.get(phase, 0.0) for phase in PHASE_ORDER]
