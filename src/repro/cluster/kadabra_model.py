"""Epoch-level simulation of the paper's algorithms on a modelled cluster.

The functions below replay the control flow of the shared-memory baseline
(Ref. [24]), of Algorithm 1 and of Algorithm 2 at *epoch granularity*: each
iteration advances simulated time by the duration of one epoch (thread-0
sampling, epoch transition, frame aggregation, barrier, reduction, stop check,
broadcast), credits the samples taken by all threads during the overlapped
parts, and stops once the instance's target sample count is reached.  This is
the substitution for the 16-node cluster the paper measures on: the model
reproduces the mechanisms that determine the published scaling shapes
(overlap of communication and computation, sequential diameter/calibration
phases, NUMA placement, epoch-length rule) without requiring the hardware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.cluster.collectives import (
    barrier_time,
    broadcast_time,
    local_aggregation_time,
    reduce_time,
)
from repro.cluster.machine import PAPER_CLUSTER, ClusterConfig
from repro.cluster.trace import SimulatedRun
from repro.cluster.workload import InstanceProfile
from repro.cluster.sampling_cost import sample_seconds
from repro.parallel.epoch_length import thread_zero_samples_per_epoch

__all__ = [
    "simulate_epoch_mpi",
    "simulate_shared_memory",
    "simulate_mpi_only",
    "MODEL_REFERENCE_WORKERS",
]

#: Worker count at which the epoch-length rule yields ``n0 = base`` in the
#: performance model (one full compute node of the paper's cluster).
MODEL_REFERENCE_WORKERS = 24

#: Hard cap on simulated epochs (safety against misconfigured profiles).
MAX_SIMULATED_EPOCHS = 2_000_000


def _epoch_rule(num_processes: int, num_threads: int) -> int:
    return thread_zero_samples_per_epoch(
        num_processes,
        num_threads,
        reference_workers=MODEL_REFERENCE_WORKERS,
    )


def simulate_epoch_mpi(
    profile: InstanceProfile,
    cluster: ClusterConfig = PAPER_CLUSTER,
    *,
    num_nodes: int,
    processes_per_node: Optional[int] = None,
    threads_per_process: Optional[int] = None,
) -> SimulatedRun:
    """Simulate Algorithm 2 (epoch-based MPI) on ``num_nodes`` compute nodes.

    The default placement follows Section IV-E: one process per NUMA socket,
    one thread per core.
    """
    machine = cluster.machine
    network = cluster.network
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if num_nodes > machine.num_nodes:
        raise ValueError(f"cluster only has {machine.num_nodes} nodes")
    if processes_per_node is None:
        processes_per_node = machine.sockets_per_node
    if threads_per_process is None:
        threads_per_process = machine.cores_per_node // processes_per_node
    P = num_nodes * processes_per_node
    T = threads_per_process
    numa_local = processes_per_node >= machine.sockets_per_node
    per_sample = sample_seconds(profile.edges_per_sample, machine, numa_local=numa_local)
    frame_bytes = profile.frame_bytes
    n0 = _epoch_rule(P, T)

    phases = {
        "diameter": profile.diameter_seconds(machine),
        "calibration": 0.0,
        "sampling": 0.0,
        "epoch_transition": 0.0,
        "ibarrier": 0.0,
        "reduce": 0.0,
        "check": 0.0,
    }

    # ---------------- calibration phase -------------------------------- #
    calib_sampling = profile.calibration_samples * per_sample / (P * T)
    calib_local_agg = local_aggregation_time(
        frame_bytes, T + max(processes_per_node - 1, 0), machine.memory_copy_bandwidth
    )
    calib_reduce = reduce_time(network, num_nodes, frame_bytes)
    phases["calibration"] = (
        profile.calibration_sequential_seconds(machine)
        + calib_sampling
        + calib_local_agg
        + calib_reduce
    )

    # ---------------- adaptive sampling -------------------------------- #
    total_samples = profile.calibration_samples
    target = max(profile.target_samples, profile.calibration_samples + 1)
    num_epochs = 0
    barrier_total = 0.0

    # Per-epoch phase components (constant across epochs in this model).
    t_sampling = n0 * per_sample
    t_transition = per_sample  # transition acknowledged at the next sample boundary
    t_local_agg = local_aggregation_time(
        frame_bytes, T + max(processes_per_node - 1, 0), machine.memory_copy_bandwidth
    )
    # The non-blocking barrier only progresses when thread 0 polls it between
    # samples, so its completion is quantised in units of the per-sample time.
    t_ibarrier = barrier_time(network, num_nodes) + per_sample * max(
        math.ceil(math.log2(num_nodes)) if num_nodes > 1 else 0, 0
    )
    t_reduce = reduce_time(network, num_nodes, frame_bytes) if num_nodes > 1 else 0.0
    t_check = profile.check_seconds(machine)
    t_bcast = broadcast_time(network, P) + (per_sample if P > 1 else 0.0)
    epoch_wall = (
        t_sampling + t_transition + t_local_agg + t_ibarrier + t_reduce + t_check + t_bcast
    )
    overlapped_thread0 = t_sampling + t_transition + t_ibarrier + t_bcast

    while total_samples < target and num_epochs < MAX_SIMULATED_EPOCHS:
        worker_threads = P * T - P
        samples_this_epoch = (
            worker_threads * epoch_wall + P * overlapped_thread0
        ) / per_sample
        total_samples += int(math.ceil(samples_this_epoch))
        num_epochs += 1
        phases["sampling"] += t_sampling
        phases["epoch_transition"] += t_transition + t_local_agg
        phases["ibarrier"] += t_ibarrier + t_bcast
        phases["reduce"] += t_reduce
        phases["check"] += t_check
        barrier_total += t_ibarrier

    return SimulatedRun(
        instance=profile.name,
        algorithm="epoch-mpi",
        num_nodes=num_nodes,
        processes_per_node=processes_per_node,
        threads_per_process=T,
        phase_seconds=phases,
        num_epochs=num_epochs,
        total_samples=int(total_samples),
        communication_bytes_per_epoch=float(P * frame_bytes),
        barrier_seconds=barrier_total,
    )


def simulate_shared_memory(
    profile: InstanceProfile,
    cluster: ClusterConfig = PAPER_CLUSTER,
    *,
    num_threads: Optional[int] = None,
) -> SimulatedRun:
    """Simulate the shared-memory state of the art (Ref. [24]) on one node.

    A single process spans both sockets of the node, so sampling pays the
    NUMA-remote penalty — the effect the paper removes by placing one MPI
    process per socket (Section IV-E).
    """
    machine = cluster.machine
    if num_threads is None:
        num_threads = machine.cores_per_node
    if num_threads <= 0:
        raise ValueError("num_threads must be positive")
    per_sample = sample_seconds(profile.edges_per_sample, machine, numa_local=False)
    frame_bytes = profile.frame_bytes
    n0 = _epoch_rule(1, num_threads)

    phases = {
        "diameter": profile.diameter_seconds(machine),
        "calibration": profile.calibration_sequential_seconds(machine)
        + profile.calibration_samples * per_sample / num_threads,
        "sampling": 0.0,
        "epoch_transition": 0.0,
        "ibarrier": 0.0,
        "reduce": 0.0,
        "check": 0.0,
    }

    total_samples = profile.calibration_samples
    target = max(profile.target_samples, profile.calibration_samples + 1)
    num_epochs = 0

    t_sampling = n0 * per_sample
    t_transition = per_sample
    t_local_agg = local_aggregation_time(frame_bytes, num_threads, machine.memory_copy_bandwidth)
    t_check = profile.check_seconds(machine)
    epoch_wall = t_sampling + t_transition + t_local_agg + t_check
    overlapped_thread0 = t_sampling + t_transition

    while total_samples < target and num_epochs < MAX_SIMULATED_EPOCHS:
        worker_threads = num_threads - 1
        samples_this_epoch = (
            worker_threads * epoch_wall + overlapped_thread0
        ) / per_sample
        total_samples += int(math.ceil(samples_this_epoch))
        num_epochs += 1
        phases["sampling"] += t_sampling
        phases["epoch_transition"] += t_transition + t_local_agg
        phases["check"] += t_check

    return SimulatedRun(
        instance=profile.name,
        algorithm="shared-memory",
        num_nodes=1,
        processes_per_node=1,
        threads_per_process=num_threads,
        phase_seconds=phases,
        num_epochs=num_epochs,
        total_samples=int(total_samples),
        communication_bytes_per_epoch=float(frame_bytes),
        barrier_seconds=0.0,
    )


def simulate_mpi_only(
    profile: InstanceProfile,
    cluster: ClusterConfig = PAPER_CLUSTER,
    *,
    num_nodes: int,
    processes_per_node: Optional[int] = None,
) -> SimulatedRun:
    """Simulate Algorithm 1 (one single-threaded MPI process per core).

    Used by the ablation benchmark: it exposes the memory blow-up (every
    process replicates the graph) and the larger reduction fan-in that
    motivate the epoch-based Algorithm 2.
    """
    machine = cluster.machine
    network = cluster.network
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if processes_per_node is None:
        processes_per_node = machine.cores_per_node
    P = num_nodes * processes_per_node
    per_sample = sample_seconds(profile.edges_per_sample, machine, numa_local=True)
    frame_bytes = profile.frame_bytes
    n0 = _epoch_rule(P, 1)

    phases = {
        "diameter": profile.diameter_seconds(machine),
        "calibration": profile.calibration_sequential_seconds(machine)
        + profile.calibration_samples * per_sample / P
        + reduce_time(network, P, frame_bytes),
        "sampling": 0.0,
        "epoch_transition": 0.0,
        "ibarrier": 0.0,
        "reduce": 0.0,
        "check": 0.0,
    }

    total_samples = profile.calibration_samples
    target = max(profile.target_samples, profile.calibration_samples + 1)
    num_epochs = 0

    t_sampling = n0 * per_sample
    t_snapshot = frame_bytes / machine.memory_copy_bandwidth
    t_reduce = reduce_time(network, P, frame_bytes)
    t_check = profile.check_seconds(machine)
    t_bcast = broadcast_time(network, P) + per_sample
    epoch_wall = t_sampling + t_snapshot + t_reduce + t_check + t_bcast
    overlapped = t_sampling + t_reduce + t_bcast  # Algorithm 1 samples during both

    while total_samples < target and num_epochs < MAX_SIMULATED_EPOCHS:
        samples_this_epoch = P * overlapped / per_sample
        total_samples += int(math.ceil(samples_this_epoch))
        num_epochs += 1
        phases["sampling"] += t_sampling
        phases["epoch_transition"] += t_snapshot
        phases["ibarrier"] += t_bcast
        phases["reduce"] += t_reduce
        phases["check"] += t_check

    return SimulatedRun(
        instance=profile.name,
        algorithm="mpi-only",
        num_nodes=num_nodes,
        processes_per_node=processes_per_node,
        threads_per_process=1,
        phase_seconds=phases,
        num_epochs=num_epochs,
        total_samples=int(total_samples),
        communication_bytes_per_epoch=float(P * frame_bytes),
        barrier_seconds=0.0,
    )
