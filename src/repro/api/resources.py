"""Execution-resource description consumed by the backend registry."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["Resources"]


@dataclass(frozen=True)
class Resources:
    """How much parallel hardware a run may use.

    The facade passes one ``Resources`` object to every backend; backends that
    do not support a dimension simply ignore it (the result still records the
    requested configuration, so runs remain comparable).

    Attributes
    ----------
    processes:
        MPI-style ranks ``P`` (the paper's distributed dimension).
    threads:
        Sampling threads ``T`` per rank / shared-memory threads.
    processes_per_node:
        If set, enables the NUMA-aware node-local pre-aggregation of
        Section IV-E for backends that support processes.
    """

    processes: int = 1
    threads: int = 1
    processes_per_node: Optional[int] = None

    def __post_init__(self) -> None:
        if self.processes <= 0:
            raise ValueError("processes must be positive")
        if self.threads <= 0:
            raise ValueError("threads must be positive")
        if self.processes_per_node is not None and self.processes_per_node <= 0:
            raise ValueError("processes_per_node must be positive when given")

    @property
    def total_workers(self) -> int:
        """Total sampling workers ``P * T``."""
        return self.processes * self.threads

    def as_dict(self) -> Dict[str, int]:
        """The resource configuration as a plain dict (for result metadata)."""
        out = {"processes": self.processes, "threads": self.threads}
        if self.processes_per_node is not None:
            out["processes_per_node"] = self.processes_per_node
        return out
