"""Execution-resource description consumed by the backend registry."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

__all__ = ["Resources"]


@dataclass(frozen=True)
class Resources:
    """How much parallel hardware a run may use.

    The facade passes one ``Resources`` object to every backend; backends that
    do not support a dimension simply ignore it (the result still records the
    requested configuration, so runs remain comparable).

    Attributes
    ----------
    processes:
        MPI-style ranks ``P`` (the paper's distributed dimension).
    threads:
        Sampling threads ``T`` per rank / shared-memory threads.
    processes_per_node:
        If set, enables the NUMA-aware node-local pre-aggregation of
        Section IV-E for backends that support processes.
    batch_size:
        Sampling batch size for kernel-backed backends: ``"auto"`` (default,
        adaptive ramp — small batches near stopping-condition checks, large
        batches mid-epoch; see :mod:`repro.kernels.policy`) or a positive int
        for a fixed batch size (``1`` reproduces per-sample driving).
        Epoch-framework *worker threads* always clamp their batches to at
        most :data:`repro.kernels.WORKER_BATCH` (16) so pending epoch
        transitions are acknowledged promptly — an explicit larger value
        only affects thread 0's bulk sampling and the non-epoch drivers.
        Backends without batching support ignore it.
    kernel:
        Force a specific registered sampling kernel (see
        :mod:`repro.kernels.abi` and ``repro.cli --list-kernels``) instead of
        the ABI's automatic routing.  ``None`` (default) routes by graph
        size/dtype; unknown names raise at construction time.  Backends
        without kernel support ignore it.
    """

    processes: int = 1
    threads: int = 1
    processes_per_node: Optional[int] = None
    batch_size: Union[int, str] = "auto"
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.processes <= 0:
            raise ValueError("processes must be positive")
        if self.threads <= 0:
            raise ValueError("threads must be positive")
        if self.processes_per_node is not None and self.processes_per_node <= 0:
            raise ValueError("processes_per_node must be positive when given")
        from repro.kernels import resolve_batch_size

        # Validates and normalises (e.g. None -> "auto"); frozen dataclass.
        object.__setattr__(self, "batch_size", resolve_batch_size(self.batch_size))
        if self.kernel is not None:
            from repro.kernels import get_kernel

            get_kernel(self.kernel)  # unknown names fail fast, availability later

    @property
    def total_workers(self) -> int:
        """Total sampling workers ``P * T``."""
        return self.processes * self.threads

    def as_dict(self) -> Dict[str, Union[int, str]]:
        """The resource configuration as a plain dict (for result metadata)."""
        out: Dict[str, Union[int, str]] = {
            "processes": self.processes,
            "threads": self.threads,
        }
        if self.processes_per_node is not None:
            out["processes_per_node"] = self.processes_per_node
        if self.batch_size != "auto":
            out["batch_size"] = self.batch_size
        if self.kernel is not None:
            out["kernel"] = self.kernel
        return out
