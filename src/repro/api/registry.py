"""Pluggable backend registry for betweenness estimation.

Every execution mode of the paper — sequential KADABRA, the epoch-based
shared-memory parallelization, the MPI-style distributed algorithms, the RK
and source-sampling baselines and exact Brandes — is one :class:`BackendSpec`
in a process-global registry.  The facade (:func:`repro.api.facade.
estimate_betweenness`) and the CLI derive their ``algorithm`` choices from the
registry, so adding a backend (sharded, cached, async, ...) is a single
:func:`register_backend` call instead of a fork of the dispatch code.  The
query service goes one step further and derives its cache-reuse *algorithm
families* from the capability metadata (``exact`` + ``cost_hint``; see
:mod:`repro.service.dominance`), so registered backends participate in
dominance-aware result reuse automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.api.resources import Resources
from repro.core.result import BetweennessResult

__all__ = [
    "AUTO",
    "BackendSpec",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "backend_names",
    "list_backends",
    "select_backend",
    "format_backend_table",
]

AUTO = "auto"
"""Reserved algorithm name: let :func:`select_backend` pick the backend."""

#: Largest graph (in vertices) for which ``algorithm="auto"`` may pick an
#: exact O(|V||E|) backend.
EXACT_AUTO_VERTEX_LIMIT = 256


@dataclass(frozen=True)
class BackendSpec:
    """Registry entry: one betweenness backend plus capability metadata.

    Attributes
    ----------
    name:
        Registry key; also the CLI ``--algorithm`` choice.
    runner:
        ``runner(graph, options, resources, progress) -> BetweennessResult``.
    description:
        One line for ``--list-backends`` and the docs table.
    exact:
        True for exact algorithms (no eps/delta guarantee needed).
    supports_threads / supports_processes:
        Which dimensions of :class:`~repro.api.resources.Resources` the
        backend honours.
    supports_batching:
        Whether the backend honours ``Resources.batch_size`` (i.e. samples
        through the batch-oriented kernels of :mod:`repro.kernels`).
    supports_kernels:
        Whether the backend honours ``Resources.kernel`` — a forced sampling
        kernel from the ABI registry (:mod:`repro.kernels.abi`).  Backends
        that do their own traversal (exact Brandes, source sampling) ignore
        the field and leave this False.
    supports_refinement:
        Whether :func:`repro.session.open_session` can drive the backend as
        a fully resumable session (``refine``/``checkpoint``/``restore``).
        Only set this for backends whose sampling is performed by the native
        incremental sequential engine; the session layer uses the flag to
        decide between the native engine and one-shot delegation, and the
        query service uses it to decide which cached results may carry a
        refinable checkpoint.
    supports_updates:
        Whether the backend's session checkpoints can be carried across an
        edge delta by the incremental estimator (:mod:`repro.evolve`) —
        requires the per-sample path log only the native sequential engine
        records, so this implies (and is stricter than)
        ``supports_refinement``.
    cost_hint:
        Coarse cost model: ``"adaptive-sampling"`` (KADABRA-style),
        ``"fixed-sampling"`` (a-priori bound) or ``"n-sssp"`` (per-source
        traversals).
    auto_rank:
        Tie-break for ``algorithm="auto"``: among capable backends the lowest
        rank wins (deterministically).
    max_auto_vertices:
        Auto-selection considers the backend only for graphs up to this many
        vertices (``None`` = no limit).  Used to keep exact backends off
        large graphs.
    """

    name: str
    runner: Callable[..., BetweennessResult] = field(repr=False)
    description: str = ""
    exact: bool = False
    supports_threads: bool = False
    supports_processes: bool = False
    supports_batching: bool = False
    supports_kernels: bool = False
    supports_refinement: bool = False
    supports_updates: bool = False
    cost_hint: str = "adaptive-sampling"
    auto_rank: int = 100
    max_auto_vertices: Optional[int] = None


_REGISTRY: Dict[str, BackendSpec] = {}


def register_backend(
    name: str,
    runner: Callable[..., BetweennessResult],
    *,
    description: str = "",
    exact: bool = False,
    supports_threads: bool = False,
    supports_processes: bool = False,
    supports_batching: bool = False,
    supports_kernels: bool = False,
    supports_refinement: bool = False,
    supports_updates: bool = False,
    cost_hint: str = "adaptive-sampling",
    auto_rank: int = 100,
    max_auto_vertices: Optional[int] = None,
    replace: bool = False,
) -> BackendSpec:
    """Register a betweenness backend and return its spec.

    Raises :class:`ValueError` for the reserved name ``"auto"`` and for
    duplicate registrations unless ``replace=True``.
    """
    if not name or not isinstance(name, str):
        raise ValueError("backend name must be a non-empty string")
    if name == AUTO:
        raise ValueError(f"{AUTO!r} is reserved for automatic selection")
    if not callable(runner):
        raise TypeError("runner must be callable")
    if name in _REGISTRY and not replace:
        raise ValueError(f"backend {name!r} is already registered (pass replace=True)")
    spec = BackendSpec(
        name=name,
        runner=runner,
        description=description,
        exact=exact,
        supports_threads=supports_threads,
        supports_processes=supports_processes,
        supports_batching=supports_batching,
        supports_kernels=supports_kernels,
        supports_refinement=supports_refinement,
        supports_updates=supports_updates,
        cost_hint=cost_hint,
        auto_rank=auto_rank,
        max_auto_vertices=max_auto_vertices,
    )
    _REGISTRY[name] = spec
    return spec


def unregister_backend(name: str) -> None:
    """Remove a backend (mostly useful for tests of the registry itself)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> BackendSpec:
    """Look up a backend by name, with a helpful error for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(backend_names()) or "<none>"
        raise ValueError(f"unknown backend {name!r}; registered backends: {known}") from None


def backend_names() -> Tuple[str, ...]:
    """Registered backend names in registration order."""
    return tuple(_REGISTRY)


def list_backends() -> Tuple[BackendSpec, ...]:
    """All registered backend specs in registration order."""
    return tuple(_REGISTRY.values())


def select_backend(num_vertices: int, resources: Resources) -> BackendSpec:
    """Deterministically pick a backend from graph size and resources.

    The rule mirrors how the paper chooses an execution mode: multiple
    processes demand a distributed backend, multiple threads a shared-memory
    one, and a single worker runs exact Brandes on tiny graphs (where it is
    both fastest and error-free) or sequential KADABRA otherwise.  Ties are
    broken by ``auto_rank`` then name, so the choice is a pure function of
    ``(num_vertices, resources, registry contents)``.
    """
    specs = list_backends()
    if not specs:
        raise ValueError("no backends registered")

    def size_ok(spec: BackendSpec) -> bool:
        return spec.max_auto_vertices is None or num_vertices <= spec.max_auto_vertices

    if resources.processes > 1:
        pool = [s for s in specs if s.supports_processes and size_ok(s)]
        requirement = "supports_processes"
    elif resources.threads > 1:
        pool = [s for s in specs if s.supports_threads and size_ok(s)]
        requirement = "supports_threads"
    else:
        pool = [s for s in specs if s.exact and size_ok(s)]
        requirement = "single-worker"
        if not pool:
            pool = [s for s in specs if not s.exact and size_ok(s)]
    if not pool:
        raise ValueError(
            f"no registered backend satisfies {requirement} for a graph of "
            f"{num_vertices} vertices"
        )
    return min(pool, key=lambda s: (s.auto_rank, s.name))


def format_backend_table() -> str:
    """A plain-text capability table of all registered backends."""
    headers = ("name", "kind", "threads", "processes", "batching", "kernels", "refine", "updates", "cost", "description")
    rows = [
        (
            spec.name,
            "exact" if spec.exact else "approx",
            "yes" if spec.supports_threads else "no",
            "yes" if spec.supports_processes else "no",
            "yes" if spec.supports_batching else "no",
            "yes" if spec.supports_kernels else "no",
            "yes" if spec.supports_refinement else "no",
            "yes" if spec.supports_updates else "no",
            spec.cost_hint,
            spec.description,
        )
        for spec in list_backends()
    ]
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i]) for i in range(len(headers))]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
    return "\n".join(lines)
