"""Unified betweenness API: one facade, a pluggable backend registry.

The paper's point is that *one* adaptive-sampling algorithm scales from a
single core to an MPI cluster; this package gives the reproduction one stable
surface to match.  Call :func:`estimate_betweenness` with an ``algorithm``
name (or ``"auto"``), a :class:`Resources` description and optional progress
``callbacks`` — every execution mode is a :class:`BackendSpec` entry in the
registry, and new backends (sharded, cached, async, ...) are added with
:func:`register_backend` instead of a fork of the dispatch code.

Results carry a uniform schema (:class:`~repro.core.result.BetweennessResult`)
that serializes to the JSON documented in ``docs/serving.md``; the query
service (:mod:`repro.service`) builds its dominance-aware result cache on
exactly this surface — the registry supplies its ``algorithm`` choices and
capability metadata, the facade runs its jobs, and the result schema is its
wire format.

>>> from repro.api import estimate_betweenness, Resources
>>> from repro.graph.generators import barabasi_albert
>>> graph = barabasi_albert(500, 3, seed=0)
>>> result = estimate_betweenness(graph, algorithm="shared-memory",
...                               eps=0.05, seed=0, resources=Resources(threads=4))
>>> result.backend
'shared-memory'
"""

from repro.api.facade import estimate_betweenness
from repro.api.registry import (
    AUTO,
    BackendSpec,
    backend_names,
    format_backend_table,
    get_backend,
    list_backends,
    register_backend,
    select_backend,
    unregister_backend,
)
from repro.api.resources import Resources
from repro.util.progress import ProgressCallback, ProgressEvent

__all__ = [
    "AUTO",
    "BackendSpec",
    "ProgressCallback",
    "ProgressEvent",
    "Resources",
    "backend_names",
    "estimate_betweenness",
    "format_backend_table",
    "get_backend",
    "list_backends",
    "register_backend",
    "select_backend",
    "unregister_backend",
]
