"""The single high-level entry point: :func:`estimate_betweenness`.

One call runs any registered backend — sequential KADABRA, the shared-memory
epoch parallelization, the MPI-style distributed algorithms, the RK and
source-sampling baselines or exact Brandes — behind a uniform signature and a
uniform :class:`~repro.core.result.BetweennessResult` schema (backend name,
resource configuration and phase timings are always populated).

Since the session redesign this function is a thin compatibility shim over
:func:`repro.session.open_session`: it opens a single-use
:class:`~repro.session.EstimationSession`, runs it to the requested target
and stamps the uniform schema.  Callers that keep the session instead gain
incremental refinement, checkpoint/resume and confidence-aware queries; the
``checkpoint_path``/``resume_from`` keywords below expose the two
session capabilities that make sense for one-shot calls (producing a
refinable checkpoint, and serving a tighter request from one).  A third
keyword family (``update_from``/``graph_delta``/``update_threshold``) serves
requests on a *mutated* graph from a parent checkpoint via the incremental
estimator of :mod:`repro.evolve`.
"""

from __future__ import annotations

import time
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.api import backends as _backends  # noqa: F401  (populates the registry)
from repro.api.registry import AUTO
from repro.api.resources import Resources
from repro.core.options import KadabraOptions
from repro.core.result import BetweennessResult
from repro.graph.csr import CSRGraph
from repro.obs import trace as obs_trace
from repro.util.progress import (
    ProgressCallback,
    ProgressEvent,
    combine_callbacks,
    tag_backend,
)

__all__ = ["estimate_betweenness"]

_UNSET = object()

_VALID_OPTION_FIELDS = frozenset(f.name for f in dataclass_fields(KadabraOptions))


def _build_options(
    options: Optional[KadabraOptions],
    eps,
    delta,
    seed,
    option_overrides,
) -> KadabraOptions:
    """Validate all accuracy/sampling options once, up front."""
    unknown = set(option_overrides) - _VALID_OPTION_FIELDS
    if unknown:
        raise ValueError(
            f"unknown option(s) {sorted(unknown)}; valid options: "
            f"{sorted(_VALID_OPTION_FIELDS)}"
        )
    changes = dict(option_overrides)
    if eps is not _UNSET:
        changes["eps"] = eps
    if delta is not _UNSET:
        changes["delta"] = delta
    if seed is not _UNSET:
        changes["seed"] = seed
    base = options if options is not None else KadabraOptions()
    return base.with_(**changes) if changes else base


def _finalize_result(
    result: BetweennessResult,
    *,
    backend: str,
    resources: Resources,
    eps: float,
    delta: float,
    elapsed: float,
    progress: Optional[ProgressCallback],
) -> BetweennessResult:
    """Stamp the uniform facade schema onto a backend result."""
    result.backend = backend
    result.resources = resources.as_dict()
    result.eps = eps
    result.delta = delta
    result.phase_seconds.setdefault("total", elapsed)
    # One-shot runs drew everything they used; session refinement fills the
    # split itself.  Normalising here keeps the accounting readable for every
    # backend, exact ones included (0 drawn, 0 reused).
    if result.samples_drawn == 0 and result.samples_reused == 0:
        result.samples_drawn = int(result.num_samples)
    if progress is not None:
        progress(
            ProgressEvent(
                phase="done",
                epoch=result.num_epochs,
                num_samples=result.num_samples,
                omega=result.omega,
                ts=elapsed,
            )
        )
    return result


def _resume_estimate(
    graph,
    opts: KadabraOptions,
    resources: Resources,
    callbacks,
    resume_from,
    checkpoint_path,
) -> BetweennessResult:
    """Serve the request by restoring a session checkpoint and refining it.

    A checkpoint that cannot be restored (truncated, corrupted, or written
    against different graph contents) degrades to a cold run at the requested
    target instead of failing the call: resuming is an optimization, and a
    bad snapshot on disk must not turn a correctly answerable request into an
    error.  A *seed mismatch* after a successful restore still raises — that
    is a contract violation by the caller, not bad cache state.
    """
    import warnings

    from repro.session import EstimationSession, SnapshotError

    progress = tag_backend(combine_callbacks(callbacks), "sequential")
    start = time.perf_counter()
    try:
        session = EstimationSession.restore(
            resume_from,
            graph=graph,
            progress=progress,
            batch_size=resources.batch_size if resources.batch_size != "auto" else None,
        )
    except (SnapshotError, OSError) as exc:
        warnings.warn(
            f"cannot resume from {resume_from} ({exc}); running cold instead",
            RuntimeWarning,
            stacklevel=3,
        )
        return _cold_estimate(
            graph, "sequential", opts, resources, callbacks, checkpoint_path
        )
    if opts.seed is not None and session.seed is not None and opts.seed != session.seed:
        raise ValueError(
            f"seed mismatch: requested seed {opts.seed} but the checkpoint was "
            f"produced with seed {session.seed}"
        )
    # Refine to the tightest of (request, checkpoint) per dimension: the
    # result then dominates the request, and monotonicity keeps the refine
    # sound even when the request is tighter in only one dimension.
    eff_eps = min(opts.eps, session.eps) if session.eps is not None else opts.eps
    eff_delta = (
        min(opts.delta, session.delta) if session.delta is not None else opts.delta
    )
    result = session.refine(eff_eps, eff_delta)
    if checkpoint_path is not None:
        session.checkpoint(checkpoint_path)
    return _finalize_result(
        result,
        backend=session.algorithm,
        resources=resources,
        eps=eff_eps,
        delta=eff_delta,
        elapsed=time.perf_counter() - start,
        progress=progress,
    )


def estimate_betweenness(
    graph: Union[CSRGraph, str, Path],
    *,
    algorithm: str = AUTO,
    eps=_UNSET,
    delta=_UNSET,
    seed=_UNSET,
    resources: Optional[Resources] = None,
    callbacks: Union[ProgressCallback, Iterable[ProgressCallback], None] = None,
    options: Optional[KadabraOptions] = None,
    checkpoint_path: Union[str, Path, None] = None,
    resume_from: Union[str, Path, None] = None,
    update_from: Union[str, Path, None] = None,
    graph_delta=None,
    update_threshold: float = 0.5,
    **option_overrides,
) -> BetweennessResult:
    """Estimate (or compute exactly) the betweenness of every vertex.

    Parameters
    ----------
    graph:
        The input :class:`~repro.graph.csr.CSRGraph` (undirected, unweighted;
        replicated on every rank, as in the paper) — or a path / registered
        dataset name, resolved through the :class:`~repro.store.GraphCatalog`:
        ``.rcsr`` files open zero-copy via :func:`numpy.memmap`, text edge
        lists are converted into the catalog cache on first touch, and
        multi-worker backends re-open the memory map per worker.  Path inputs
        are estimated on the stored graph *as is*; unlike the CLI, no
        largest-connected-component reduction is applied (pass
        ``largest_connected_component(load_graph(path))`` explicitly to match
        the paper's evaluation protocol on disconnected inputs).
    algorithm:
        A registered backend name (see :func:`repro.api.backend_names`) or
        ``"auto"`` to pick one deterministically from the graph size and the
        resource configuration: multiple processes select the distributed
        backend, multiple threads the shared-memory one, and a single worker
        runs exact Brandes on tiny graphs or sequential KADABRA otherwise.
    eps, delta:
        Absolute error bound and failure probability (defaults 0.01 / 0.1).
        Echoed into the result for every backend, exact ones included.
    seed:
        Master RNG seed; per-rank/thread streams are derived from it.
    resources:
        :class:`~repro.api.resources.Resources` describing how many
        processes/threads the backend may use; backends without the
        capability ignore the extra dimensions.
    callbacks:
        One progress callback or an iterable of them.  Each receives
        :class:`~repro.util.progress.ProgressEvent` objects (tagged with the
        resolved backend name) during the diameter, calibration and sampling
        phases, plus a final ``"done"`` event.  Callbacks may be invoked from
        a worker thread and should be fast and exception-free.
    options:
        A pre-built :class:`~repro.core.options.KadabraOptions`; explicit
        ``eps``/``delta``/``seed`` and keyword overrides are layered on top.
    checkpoint_path:
        If set and the resolved backend supports refinement (see
        ``supports_refinement`` in the registry), the finished session is
        snapshotted there — a later call can then serve a *tighter* request
        via ``resume_from`` instead of resampling from zero.
    resume_from:
        Path to a session checkpoint (from ``checkpoint_path`` or
        :meth:`repro.session.EstimationSession.checkpoint`).  The call
        restores the session and refines it to the tightest of the requested
        and checkpointed ``(eps, delta)`` — drawing only the additional
        samples, bit-identical to a fresh run at that target with the same
        seed.  ``algorithm`` is ignored (the checkpoint pins the engine) and
        an explicitly different ``seed`` is rejected.  An *unreadable*
        checkpoint (truncated, corrupted, stale graph) degrades to a cold
        run with a ``RuntimeWarning`` instead of failing — resuming is an
        optimization, never a correctness dependency.
    update_from:
        Path to a session checkpoint taken on a *parent* of ``graph`` — the
        same graph before an edge delta was applied.  The call restores the
        parent session, invalidates exactly the samples the delta touched,
        re-samples those pairs on ``graph`` and re-certifies the requested
        guarantee (see :func:`repro.evolve.update_session`), reusing every
        untouched sample.  Mutually exclusive with ``resume_from``.  Like
        resuming, updating is an optimization: an unusable checkpoint, a
        delta that invalidates more than ``update_threshold`` of the
        samples, or a missing lineage record degrades to a cold run with a
        ``RuntimeWarning``; a *seed mismatch* still raises.
    graph_delta:
        The edge delta connecting the parent to ``graph``: a
        :class:`~repro.store.GraphDelta`, its ``as_dict()`` payload, or the
        path of a delta JSON file.  When omitted, the delta is looked up in
        the :class:`~repro.store.GraphCatalog` lineage sidecar by ``graph``'s
        content checksum (which requires ``graph`` to have been produced by
        :meth:`~repro.store.GraphCatalog.apply_delta`).
    update_threshold:
        Invalidation-fraction ceiling for the incremental path, in
        ``(0, 1]``.  Past it, surgery plus re-certification costs more than
        sampling from zero, so the call falls back cold.
    **option_overrides:
        Any further :class:`~repro.core.options.KadabraOptions` field (e.g.
        ``calibration_samples=200``, ``max_samples_override=5000``).

    Returns
    -------
    BetweennessResult
        With the uniform facade schema: ``backend``, ``resources``, a
        ``"total"`` phase timing and the ``samples_drawn``/``samples_reused``
        accounting are always populated and ``eps``/``delta`` echo the
        request.  The result serializes to the stable JSON schema of
        ``docs/serving.md`` via
        :meth:`~repro.core.result.BetweennessResult.to_json` — the same
        representation the query service (:mod:`repro.service`) caches,
        reuses under (eps, delta) dominance, and returns over HTTP.
    """
    if isinstance(graph, (str, Path)):
        from repro.store import load_graph

        graph = load_graph(graph)
    if not hasattr(graph, "num_vertices"):
        raise TypeError(f"graph must be a CSRGraph-like object, got {type(graph).__name__}")
    opts = _build_options(options, eps, delta, seed, option_overrides)
    resources = resources if resources is not None else Resources()
    if not isinstance(resources, Resources):
        raise TypeError("resources must be a repro.api.Resources instance")

    if update_from is not None and resume_from is not None:
        raise ValueError("update_from and resume_from are mutually exclusive")
    # One root span per facade call; the session/driver/store spans nest
    # under it, so a traced run exports a single tree covering
    # diameter -> calibration -> sampling -> stopping.
    with obs_trace.span("estimate") as root:
        if update_from is not None:
            root.set("mode", "update")
            result = _update_estimate(
                graph,
                opts,
                resources,
                callbacks,
                update_from,
                graph_delta,
                update_threshold,
                checkpoint_path,
            )
        elif resume_from is not None:
            root.set("mode", "resume")
            result = _resume_estimate(
                graph, opts, resources, callbacks, resume_from, checkpoint_path
            )
        else:
            result = _cold_estimate(
                graph, algorithm, opts, resources, callbacks, checkpoint_path
            )
            root.set("mode", "cold")
        root.set("backend", result.backend)
        root.set("num_samples", int(result.num_samples))
    if root:
        result.extra["trace"] = root.summary()
    return result


def _resolve_graph_delta(graph, graph_delta):
    """Normalise the ``graph_delta`` keyword to a :class:`GraphDelta`.

    Accepts a ``GraphDelta``, an ``as_dict()`` payload, a delta JSON path, or
    ``None`` — the last resolved through the catalog lineage sidecar by the
    child graph's content checksum.  Raises :class:`LookupError` when no
    delta can be determined (the caller degrades to a cold run).
    """
    from repro.store import GraphDelta

    if isinstance(graph_delta, GraphDelta):
        return graph_delta
    if isinstance(graph_delta, dict):
        return GraphDelta.from_dict(graph_delta)
    if isinstance(graph_delta, (str, Path)):
        return GraphDelta.load(graph_delta)
    if graph_delta is not None:
        raise TypeError(
            "graph_delta must be a GraphDelta, a payload dict, or a path, "
            f"got {type(graph_delta).__name__}"
        )
    source = getattr(graph, "source_path", None)
    if source is None:
        raise LookupError(
            "graph_delta omitted and the graph has no source path to look "
            "lineage up by"
        )
    from repro.store import GraphCatalog

    catalog = GraphCatalog()
    lineage = catalog.lineage(catalog.checksum(source))
    if lineage is None or not isinstance(lineage.get("delta"), dict):
        raise LookupError(f"no lineage record for {source}")
    return GraphDelta.from_dict(lineage["delta"])


def _update_estimate(
    graph,
    opts: KadabraOptions,
    resources: Resources,
    callbacks,
    update_from,
    graph_delta,
    update_threshold: float,
    checkpoint_path,
) -> BetweennessResult:
    """Serve a mutated-graph request from a parent checkpoint (repro.evolve).

    Degrades to a cold run (with a ``RuntimeWarning``) for everything that
    makes the *optimization* unavailable — unreadable checkpoint, missing
    lineage, delta/graph mismatch, threshold exceeded — but still raises for
    caller contract violations (seed mismatch, bad ``update_threshold``).
    """
    import warnings

    from repro.evolve import EvolveError, update_session
    from repro.session import EstimationSession, SnapshotError
    from repro.store import DeltaError

    if not 0.0 < update_threshold <= 1.0:
        raise ValueError(f"update_threshold must be in (0, 1], got {update_threshold}")
    progress = tag_backend(combine_callbacks(callbacks), "sequential")
    start = time.perf_counter()

    def cold(reason: str) -> BetweennessResult:
        warnings.warn(
            f"cannot update from {update_from} ({reason}); running cold instead",
            RuntimeWarning,
            stacklevel=4,
        )
        return _cold_estimate(
            graph, "sequential", opts, resources, callbacks, checkpoint_path
        )

    try:
        delta_obj = _resolve_graph_delta(graph, graph_delta)
    except LookupError as exc:
        return cold(str(exc))
    try:
        session = EstimationSession.restore(
            update_from,
            progress=progress,
            batch_size=resources.batch_size if resources.batch_size != "auto" else None,
        )
    except (SnapshotError, OSError) as exc:
        return cold(str(exc))
    if opts.seed is not None and session.seed is not None and opts.seed != session.seed:
        raise ValueError(
            f"seed mismatch: requested seed {opts.seed} but the checkpoint was "
            f"produced with seed {session.seed}"
        )
    # Re-certify at the tightest of (request, parent) per dimension, so the
    # result dominates the request and the cache entry it becomes is at
    # least as valuable as the parent's.
    eff_eps = min(opts.eps, session.eps) if session.eps is not None else opts.eps
    eff_delta = (
        min(opts.delta, session.delta) if session.delta is not None else opts.delta
    )
    try:
        session, report = update_session(
            session,
            graph,
            delta_obj,
            eps=eff_eps,
            delta=eff_delta,
            threshold=update_threshold,
        )
    except (EvolveError, DeltaError) as exc:
        return cold(str(exc))
    if checkpoint_path is not None:
        session.checkpoint(checkpoint_path)
    return _finalize_result(
        report.result,
        backend=session.algorithm,
        resources=resources,
        eps=eff_eps,
        delta=eff_delta,
        elapsed=time.perf_counter() - start,
        progress=progress,
    )


def _cold_estimate(
    graph,
    algorithm: str,
    opts: KadabraOptions,
    resources: Resources,
    callbacks,
    checkpoint_path,
) -> BetweennessResult:
    """Run a fresh single-use session (the classic one-shot code path)."""
    from repro.session import open_session

    session = open_session(
        graph,
        algorithm=algorithm,
        options=opts,
        resources=resources,
        callbacks=callbacks,
    )
    start = time.perf_counter()
    result = session.run()
    elapsed = time.perf_counter() - start
    if checkpoint_path is not None and session.supports_refinement:
        session.checkpoint(checkpoint_path)
    return _finalize_result(
        result,
        backend=session.algorithm,
        resources=resources,
        eps=opts.eps,
        delta=opts.delta,
        elapsed=elapsed,
        progress=session.progress,
    )
