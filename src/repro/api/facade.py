"""The single high-level entry point: :func:`estimate_betweenness`.

One call runs any registered backend — sequential KADABRA, the shared-memory
epoch parallelization, the MPI-style distributed algorithms, the RK and
source-sampling baselines or exact Brandes — behind a uniform signature and a
uniform :class:`~repro.core.result.BetweennessResult` schema (backend name,
resource configuration and phase timings are always populated).
"""

from __future__ import annotations

import time
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.api import backends as _backends  # noqa: F401  (populates the registry)
from repro.api.registry import AUTO, BackendSpec, get_backend, select_backend
from repro.api.resources import Resources
from repro.core.options import KadabraOptions
from repro.core.result import BetweennessResult
from repro.graph.csr import CSRGraph
from repro.util.progress import (
    ProgressCallback,
    ProgressEvent,
    combine_callbacks,
    tag_backend,
)

__all__ = ["estimate_betweenness"]

_UNSET = object()

_VALID_OPTION_FIELDS = frozenset(f.name for f in dataclass_fields(KadabraOptions))


def _build_options(
    options: Optional[KadabraOptions],
    eps,
    delta,
    seed,
    option_overrides,
) -> KadabraOptions:
    """Validate all accuracy/sampling options once, up front."""
    unknown = set(option_overrides) - _VALID_OPTION_FIELDS
    if unknown:
        raise ValueError(
            f"unknown option(s) {sorted(unknown)}; valid options: "
            f"{sorted(_VALID_OPTION_FIELDS)}"
        )
    changes = dict(option_overrides)
    if eps is not _UNSET:
        changes["eps"] = eps
    if delta is not _UNSET:
        changes["delta"] = delta
    if seed is not _UNSET:
        changes["seed"] = seed
    base = options if options is not None else KadabraOptions()
    return base.with_(**changes) if changes else base


def estimate_betweenness(
    graph: Union[CSRGraph, str, Path],
    *,
    algorithm: str = AUTO,
    eps=_UNSET,
    delta=_UNSET,
    seed=_UNSET,
    resources: Optional[Resources] = None,
    callbacks: Union[ProgressCallback, Iterable[ProgressCallback], None] = None,
    options: Optional[KadabraOptions] = None,
    **option_overrides,
) -> BetweennessResult:
    """Estimate (or compute exactly) the betweenness of every vertex.

    Parameters
    ----------
    graph:
        The input :class:`~repro.graph.csr.CSRGraph` (undirected, unweighted;
        replicated on every rank, as in the paper) — or a path / registered
        dataset name, resolved through the :class:`~repro.store.GraphCatalog`:
        ``.rcsr`` files open zero-copy via :func:`numpy.memmap`, text edge
        lists are converted into the catalog cache on first touch, and
        multi-worker backends re-open the memory map per worker.  Path inputs
        are estimated on the stored graph *as is*; unlike the CLI, no
        largest-connected-component reduction is applied (pass
        ``largest_connected_component(load_graph(path))`` explicitly to match
        the paper's evaluation protocol on disconnected inputs).
    algorithm:
        A registered backend name (see :func:`repro.api.backend_names`) or
        ``"auto"`` to pick one deterministically from the graph size and the
        resource configuration: multiple processes select the distributed
        backend, multiple threads the shared-memory one, and a single worker
        runs exact Brandes on tiny graphs or sequential KADABRA otherwise.
    eps, delta:
        Absolute error bound and failure probability (defaults 0.01 / 0.1).
        Echoed into the result for every backend, exact ones included.
    seed:
        Master RNG seed; per-rank/thread streams are derived from it.
    resources:
        :class:`~repro.api.resources.Resources` describing how many
        processes/threads the backend may use; backends without the
        capability ignore the extra dimensions.
    callbacks:
        One progress callback or an iterable of them.  Each receives
        :class:`~repro.util.progress.ProgressEvent` objects (tagged with the
        resolved backend name) during the diameter, calibration and sampling
        phases, plus a final ``"done"`` event.  Callbacks may be invoked from
        a worker thread and should be fast and exception-free.
    options:
        A pre-built :class:`~repro.core.options.KadabraOptions`; explicit
        ``eps``/``delta``/``seed`` and keyword overrides are layered on top.
    **option_overrides:
        Any further :class:`~repro.core.options.KadabraOptions` field (e.g.
        ``calibration_samples=200``, ``max_samples_override=5000``).

    Returns
    -------
    BetweennessResult
        With the uniform facade schema: ``backend``, ``resources`` and a
        ``"total"`` phase timing are always populated and ``eps``/``delta``
        echo the request.  The result serializes to the stable JSON schema
        of ``docs/serving.md`` via
        :meth:`~repro.core.result.BetweennessResult.to_json` — the same
        representation the query service (:mod:`repro.service`) caches,
        reuses under (eps, delta) dominance, and returns over HTTP.
    """
    if isinstance(graph, (str, Path)):
        from repro.store import load_graph

        graph = load_graph(graph)
    if not hasattr(graph, "num_vertices"):
        raise TypeError(f"graph must be a CSRGraph-like object, got {type(graph).__name__}")
    opts = _build_options(options, eps, delta, seed, option_overrides)
    resources = resources if resources is not None else Resources()
    if not isinstance(resources, Resources):
        raise TypeError("resources must be a repro.api.Resources instance")

    spec: BackendSpec
    if algorithm == AUTO:
        spec = select_backend(graph.num_vertices, resources)
    else:
        spec = get_backend(algorithm)

    progress = tag_backend(combine_callbacks(callbacks), spec.name)
    start = time.perf_counter()
    result = spec.runner(graph, opts, resources, progress)
    elapsed = time.perf_counter() - start

    # Uniform result schema, regardless of which backend ran.
    result.backend = spec.name
    result.resources = resources.as_dict()
    result.eps = opts.eps
    result.delta = opts.delta
    result.phase_seconds.setdefault("total", elapsed)
    if progress is not None:
        progress(
            ProgressEvent(
                phase="done",
                epoch=result.num_epochs,
                num_samples=result.num_samples,
                omega=result.omega,
            )
        )
    return result
