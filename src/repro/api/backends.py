"""Default backend registrations for :func:`repro.api.estimate_betweenness`.

Each runner adapts one driver to the uniform registry signature

    runner(graph, options, resources, progress) -> BetweennessResult

where ``options`` is a validated :class:`~repro.core.options.KadabraOptions`,
``resources`` a :class:`~repro.api.resources.Resources` and ``progress`` an
optional :data:`~repro.util.progress.ProgressCallback`.  Importing this module
(which :mod:`repro.api` does) populates the registry with the paper's five
execution modes plus the older source-sampling baseline.
"""

from __future__ import annotations

from typing import Optional

from repro.api.registry import EXACT_AUTO_VERTEX_LIMIT, register_backend
from repro.baselines.brandes import brandes_betweenness
from repro.baselines.rk import _RKBetweenness
from repro.baselines.source_sampling import _SourceSamplingBetweenness, source_sample_size
from repro.core.kadabra import _SequentialKadabra
from repro.core.options import KadabraOptions
from repro.core.result import BetweennessResult
from repro.epoch.shared_memory import _SharedMemoryKadabra
from repro.graph.csr import CSRGraph
from repro.parallel.driver import _DistributedKadabra
from repro.util.progress import ProgressCallback, ProgressEvent
from repro.util.timer import PhaseTimer

from repro.api.resources import Resources

__all__ = ["register_default_backends"]


def _run_sequential(
    graph: CSRGraph,
    options: KadabraOptions,
    resources: Resources,
    progress: Optional[ProgressCallback],
) -> BetweennessResult:
    return _SequentialKadabra(
        graph,
        options,
        progress=progress,
        batch_size=resources.batch_size,
        kernel=resources.kernel,
    ).run()


def _run_shared_memory(
    graph: CSRGraph,
    options: KadabraOptions,
    resources: Resources,
    progress: Optional[ProgressCallback],
) -> BetweennessResult:
    return _SharedMemoryKadabra(
        graph,
        options,
        num_threads=resources.threads,
        progress=progress,
        batch_size=resources.batch_size,
        kernel=resources.kernel,
    ).run()


def _run_distributed(
    graph: CSRGraph,
    options: KadabraOptions,
    resources: Resources,
    progress: Optional[ProgressCallback],
) -> BetweennessResult:
    return _DistributedKadabra(
        graph,
        options,
        num_processes=resources.processes,
        threads_per_process=resources.threads,
        processes_per_node=resources.processes_per_node,
        algorithm="epoch",
        progress=progress,
        batch_size=resources.batch_size,
        kernel=resources.kernel,
    ).run()


def _run_mpi_only(
    graph: CSRGraph,
    options: KadabraOptions,
    resources: Resources,
    progress: Optional[ProgressCallback],
) -> BetweennessResult:
    return _DistributedKadabra(
        graph,
        options,
        num_processes=resources.processes,
        threads_per_process=1,
        algorithm="mpi-only",
        progress=progress,
        batch_size=resources.batch_size,
        kernel=resources.kernel,
    ).run()


def _run_rk(
    graph: CSRGraph,
    options: KadabraOptions,
    resources: Resources,
    progress: Optional[ProgressCallback],
) -> BetweennessResult:
    return _RKBetweenness(
        graph,
        options,
        progress=progress,
        batch_size=resources.batch_size,
        kernel=resources.kernel,
    ).run()


def _run_exact(
    graph: CSRGraph,
    options: KadabraOptions,
    resources: Resources,
    progress: Optional[ProgressCallback],
) -> BetweennessResult:
    on_source = None
    if progress is not None:
        def on_source(done: int, total: int) -> None:
            progress(ProgressEvent(phase="sssp", num_samples=done, omega=total))

    timer = PhaseTimer()
    with timer.phase("sssp"):
        result = brandes_betweenness(graph, progress=on_source)
    result.phase_seconds = timer.as_dict()
    return result


def _run_source_sampling(
    graph: CSRGraph,
    options: KadabraOptions,
    resources: Resources,
    progress: Optional[ProgressCallback],
) -> BetweennessResult:
    num_sources = None
    if options.max_samples_override is not None and graph.num_vertices >= 2:
        num_sources = min(
            source_sample_size(options.eps, options.delta, graph.num_vertices),
            int(options.max_samples_override),
        )
    return _SourceSamplingBetweenness(
        graph,
        eps=options.eps,
        delta=options.delta,
        seed=options.seed,
        num_sources=num_sources,
        progress=progress,
    ).run()


def register_default_backends(*, replace: bool = False) -> None:
    """Register the built-in backends (idempotent when ``replace=True``)."""
    register_backend(
        "sequential",
        _run_sequential,
        description="Sequential KADABRA adaptive sampling (Section III)",
        supports_batching=True,
        supports_kernels=True,
        supports_refinement=True,
        supports_updates=True,
        cost_hint="adaptive-sampling",
        auto_rank=10,
        replace=replace,
    )
    register_backend(
        "shared-memory",
        _run_shared_memory,
        description="Epoch-based shared-memory KADABRA (state-of-the-art competitor)",
        supports_threads=True,
        supports_batching=True,
        supports_kernels=True,
        cost_hint="adaptive-sampling",
        auto_rank=20,
        replace=replace,
    )
    register_backend(
        "distributed",
        _run_distributed,
        description="Epoch-based MPI KADABRA, Algorithm 2 (optionally NUMA-aware)",
        supports_threads=True,
        supports_processes=True,
        supports_batching=True,
        supports_kernels=True,
        cost_hint="adaptive-sampling",
        auto_rank=30,
        replace=replace,
    )
    register_backend(
        "mpi-only",
        _run_mpi_only,
        description="MPI-only KADABRA without multithreading, Algorithm 1",
        supports_processes=True,
        supports_batching=True,
        supports_kernels=True,
        cost_hint="adaptive-sampling",
        auto_rank=40,
        replace=replace,
    )
    register_backend(
        "rk",
        _run_rk,
        description="Riondato-Kornaropoulos fixed-sample-size approximation",
        supports_batching=True,
        supports_kernels=True,
        cost_hint="fixed-sampling",
        auto_rank=50,
        replace=replace,
    )
    register_backend(
        "exact",
        _run_exact,
        description="Exact betweenness via Brandes' algorithm",
        exact=True,
        cost_hint="n-sssp",
        auto_rank=0,
        max_auto_vertices=EXACT_AUTO_VERTEX_LIMIT,
        replace=replace,
    )
    register_backend(
        "source-sampling",
        _run_source_sampling,
        description="Bader/Brandes-Pich style sampled-sources extrapolation",
        cost_hint="n-sssp",
        auto_rank=60,
        replace=replace,
    )


register_default_backends(replace=True)
