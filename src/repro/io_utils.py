"""Persistence of betweenness results (scores + metadata).

Allows long approximation runs to be saved and reloaded for later analysis —
the counterpart of the score files the NetworKit/KADABRA tooling writes.  Two
formats:

* JSON (``save_result`` / ``load_result``): full metadata plus the score
  vector, self-describing and diff-friendly;
* CSV (``save_scores_csv``): one ``vertex,score`` row per vertex, convenient
  for spreadsheets and plotting tools.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.core.result import BetweennessResult

__all__ = ["save_result", "load_result", "save_scores_csv", "load_scores_csv"]

PathLike = Union[str, Path]

def save_result(result: BetweennessResult, path: PathLike) -> None:
    """Serialize a result (scores and metadata) to a JSON file.

    The file holds exactly :meth:`BetweennessResult.to_json_dict` — the same
    schema the query service caches and returns (see ``docs/serving.md``).
    """
    Path(path).write_text(result.to_json())


def load_result(path: PathLike) -> BetweennessResult:
    """Load a result previously written by :func:`save_result`."""
    return BetweennessResult.from_json(Path(path).read_text())


def save_scores_csv(result: BetweennessResult, path: PathLike, *, header: bool = True) -> None:
    """Write ``vertex,score`` rows (one per vertex, in vertex order)."""
    lines = []
    if header:
        lines.append("vertex,betweenness")
    lines.extend(f"{v},{score!r}" for v, score in enumerate(result.scores.tolist()))
    Path(path).write_text("\n".join(lines) + "\n")


def load_scores_csv(path: PathLike) -> np.ndarray:
    """Read a score vector written by :func:`save_scores_csv`."""
    scores = {}
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("vertex"):
            continue
        vertex_str, score_str = line.split(",")
        scores[int(vertex_str)] = float(score_str)
    if not scores:
        return np.zeros(0, dtype=np.float64)
    n = max(scores) + 1
    out = np.zeros(n, dtype=np.float64)
    for vertex, score in scores.items():
        out[vertex] = score
    return out
