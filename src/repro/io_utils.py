"""Persistence of betweenness results (scores + metadata).

Allows long approximation runs to be saved and reloaded for later analysis —
the counterpart of the score files the NetworKit/KADABRA tooling writes.  Two
formats:

* JSON (``save_result`` / ``load_result``): full metadata plus the score
  vector, self-describing and diff-friendly;
* CSV (``save_scores_csv``): one ``vertex,score`` row per vertex, convenient
  for spreadsheets and plotting tools.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.result import BetweennessResult

__all__ = ["save_result", "load_result", "save_scores_csv", "load_scores_csv"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_result(result: BetweennessResult, path: PathLike) -> None:
    """Serialize a result (scores and metadata) to a JSON file."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "scores": result.scores.tolist(),
        "num_samples": result.num_samples,
        "eps": result.eps,
        "delta": result.delta,
        "omega": result.omega,
        "vertex_diameter": result.vertex_diameter,
        "num_epochs": result.num_epochs,
        "phase_seconds": result.phase_seconds,
        "extra": result.extra,
        "backend": result.backend,
        "resources": result.resources,
    }
    Path(path).write_text(json.dumps(payload))


def load_result(path: PathLike) -> BetweennessResult:
    """Load a result previously written by :func:`save_result`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported result format version {version!r}")
    return BetweennessResult(
        scores=np.asarray(payload["scores"], dtype=np.float64),
        num_samples=int(payload["num_samples"]),
        eps=payload.get("eps"),
        delta=payload.get("delta"),
        omega=payload.get("omega"),
        vertex_diameter=payload.get("vertex_diameter"),
        num_epochs=int(payload.get("num_epochs", 0)),
        phase_seconds=dict(payload.get("phase_seconds", {})),
        extra=dict(payload.get("extra", {})),
        backend=payload.get("backend"),
        resources=dict(payload.get("resources", {})),
    )


def save_scores_csv(result: BetweennessResult, path: PathLike, *, header: bool = True) -> None:
    """Write ``vertex,score`` rows (one per vertex, in vertex order)."""
    lines = []
    if header:
        lines.append("vertex,betweenness")
    lines.extend(f"{v},{score!r}" for v, score in enumerate(result.scores.tolist()))
    Path(path).write_text("\n".join(lines) + "\n")


def load_scores_csv(path: PathLike) -> np.ndarray:
    """Read a score vector written by :func:`save_scores_csv`."""
    scores = {}
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line or line.startswith("vertex"):
            continue
        vertex_str, score_str = line.split(",")
        scores[int(vertex_str)] = float(score_str)
    if not scores:
        return np.zeros(0, dtype=np.float64)
    n = max(scores) + 1
    out = np.zeros(n, dtype=np.float64)
    for vertex, score in scores.items():
        out[vertex] = score
    return out
