"""repro.obs — stdlib-only observability for the whole estimation stack.

Three pieces, one import:

* **Metrics** (:mod:`repro.obs.metrics`) — :class:`MetricsRegistry` with
  lock-protected :class:`Counter`/:class:`Gauge`/:class:`Histogram` families
  (labels supported), a picklable ``snapshot()``/``merge()`` round-trip for
  shipping worker-process counters home, and Prometheus text exposition
  (``render()`` / :func:`render_metrics`) behind the service's
  ``GET /metrics``.  Hot-path instrumentation is gated on
  :func:`metrics_enabled` (``$REPRO_METRICS=1`` or :func:`enable_metrics`).
* **Tracing** (:mod:`repro.obs.trace`) — the :func:`span` context manager
  builds nested monotonic-clock span trees across the facade, the drivers,
  the kernel batch loops, the store and the session layer; finished trees
  append as JSONL to ``$REPRO_TRACE`` and summarize into
  ``BetweennessResult.extra["trace"]``.  Off by default; disabled spans are
  a shared no-op singleton.
* **Exposition** — the query service serves ``GET /metrics``
  (``docs/serving.md``) and ``repro-betweenness obs`` pretty-prints traces
  (``docs/observability.md``).

The package imports only the standard library, so any layer — including
modules imported during ``repro`` package initialization — can instrument
itself without import cycles.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    render_metrics,
)
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    current_span,
    disable_tracing,
    enable_tracing,
    span,
    trace_path,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "current_span",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "get_registry",
    "metrics_enabled",
    "render_metrics",
    "span",
    "trace_path",
    "tracing_enabled",
]
