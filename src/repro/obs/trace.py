"""Phase tracing: nested, monotonic-clock span trees with JSONL export.

A :class:`Span` is a context manager timing one phase of a run; spans nest
through a thread-local stack, so the facade's root ``estimate`` span collects
the session's ``diameter``/``calibration``/``adaptive_sampling`` children
(and their ``sampling``/``stopping`` grandchildren) without any explicit
plumbing.  When the outermost span of a thread closes, the finished tree is
flushed to every registered sink — by default one ``json.dumps`` line per
tree appended to the ``$REPRO_TRACE`` path, which is how a whole run becomes
a greppable JSONL trace file.

Tracing is **off by default** and :func:`span` then returns a shared no-op
singleton: the disabled cost of an instrumentation point is one attribute
load, one call and a ``with`` enter/exit on an empty object
(``benchmarks/bench_obs.py`` keeps the instrumented hot paths honest).  The
no-op span is falsy, so callers can gate follow-up work on ``if sp:`` —
e.g. the facade only attaches ``result.extra["trace"]`` when a real span
tree was recorded.

Durations use :func:`time.perf_counter` (monotonic, high resolution);
``start_unix`` is wall-clock and only for correlating trees across
processes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Span",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "span",
    "trace_path",
    "tracing_enabled",
]

_ENV_TRACE = "REPRO_TRACE"

_local = threading.local()
_flush_lock = threading.Lock()

_enabled: bool = False
_path: Optional[str] = None
_sinks: List[Callable[[dict], None]] = []


def _stack() -> List["Span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


class Span:
    """One timed phase; nests under whatever span is open on this thread."""

    __slots__ = ("name", "attrs", "children", "seconds", "start_unix", "_t0")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = str(name)
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List[Span] = []
        self.seconds: float = 0.0
        self.start_unix: float = 0.0
        self._t0: Optional[float] = None

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute (JSON-serializable values only)."""
        self.attrs[str(key)] = value

    def __bool__(self) -> bool:
        return True

    def __enter__(self) -> "Span":
        self.start_unix = time.time()
        _stack().append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - (self._t0 or 0.0)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            stack[-1].children.append(self)
        else:
            _flush_root(self)
        return False

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, seconds={self.seconds:.6f}, "
            f"children={len(self.children)})"
        )

    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict:
        """The span tree as a plain JSON-serializable dict."""
        out: Dict[str, Any] = {
            "name": self.name,
            "seconds": round(self.seconds, 9),
            "start_unix": self.start_unix,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.as_dict() for child in self.children]
        return out

    def summary(self) -> dict:
        """A flat per-phase time breakdown of the tree rooted here.

        ``phases`` maps dotted paths (relative to this span, e.g.
        ``"session.run.diameter"``) to accumulated seconds — repeated spans
        on the same path add up, so a loop of ``stopping`` spans becomes one
        aggregate entry.  This is what the facade stores in
        ``result.extra["trace"]`` and what ``repro-betweenness obs``
        pretty-prints.
        """
        phases: Dict[str, float] = {}
        count = [1]

        def walk(node: "Span", prefix: str) -> None:
            for child in node.children:
                path = f"{prefix}.{child.name}" if prefix else child.name
                phases[path] = phases.get(path, 0.0) + child.seconds
                count[0] += 1
                walk(child, path)

        walk(self, "")
        return {
            "name": self.name,
            "seconds": round(self.seconds, 9),
            "num_spans": count[0],
            "phases": {path: round(s, 9) for path, s in phases.items()},
        }


class _NoopSpan:
    """The shared disabled span: every operation is free and it is falsy."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        return None

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def as_dict(self) -> dict:
        return {}

    def summary(self) -> None:
        return None


NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs: Any):
    """Open a span named ``name`` (a no-op singleton when tracing is off)."""
    if not _enabled:
        return NOOP_SPAN
    return Span(name, attrs)


def current_span():
    """The innermost open :class:`Span` on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def tracing_enabled() -> bool:
    return _enabled


def trace_path() -> Optional[str]:
    """The JSONL file finished trees append to, or ``None``."""
    return _path


def enable_tracing(
    path: Optional[str] = None, sink: Optional[Callable[[dict], None]] = None
) -> None:
    """Turn tracing on; ``path`` appends JSONL trees, ``sink`` receives dicts.

    Both outputs are optional and additive: with neither, spans still record
    (useful for :meth:`Span.summary` via the facade) but nothing is written.
    Calling again replaces ``path`` (when given) and adds ``sink``.
    """
    global _enabled, _path
    _enabled = True
    if path is not None:
        _path = str(path)
    if sink is not None:
        _sinks.append(sink)


def disable_tracing() -> None:
    """Turn tracing off and drop the configured path and sinks."""
    global _enabled, _path
    _enabled = False
    _path = None
    _sinks.clear()


def _flush_root(root: Span) -> None:
    """Write one finished root tree to every sink (best-effort, never raises)."""
    payload = root.as_dict()
    path = _path
    if path is not None:
        try:
            line = json.dumps(payload, sort_keys=True, default=str)
            with _flush_lock, open(path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        except (OSError, TypeError, ValueError):
            pass
    for sink in list(_sinks):
        try:
            sink(payload)
        except Exception:  # noqa: BLE001 - sinks must not break the traced run
            pass


# $REPRO_TRACE=<path> turns tracing on at import, so any entry point (CLI,
# service worker, pytest) traces without code changes.
_env_path = os.environ.get(_ENV_TRACE, "").strip()
if _env_path:
    enable_tracing(_env_path)
del _env_path
