"""Process-wide metrics: counters, gauges and histograms with labels.

A deliberately small, stdlib-only subset of the Prometheus data model, built
for three consumers:

* **hot paths** (the kernel batch loops, the session check/draw loop) bump
  counters behind the :func:`metrics_enabled` gate so a disabled process pays
  one attribute load per batch and nothing else — ``benchmarks/bench_obs.py``
  holds the enabled path to <= 5% samples/sec overhead;
* **worker processes** (the service's ``ProcessPoolExecutor`` jobs) call
  :meth:`MetricsRegistry.snapshot` and ship the plain-dict result back with
  their estimation result, where the parent :meth:`MetricsRegistry.merge`\\ s
  it — counters and histograms add, gauges overwrite;
* **exposition** — :meth:`MetricsRegistry.render` emits the Prometheus text
  format (``# HELP``/``# TYPE``, ``_bucket{le=...}``/``_sum``/``_count``)
  that ``GET /metrics`` on the query service serves, and
  :func:`render_metrics` merges several registries into one page without
  duplicating metric families.

All mutation goes through one :class:`threading.RLock` per registry, so the
service's progress-drain thread and its request handlers cannot lose
increments to each other (the bug the old ad-hoc ``JobManager.counters`` dict
had).
"""

from __future__ import annotations

import bisect
import os
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "disable_metrics",
    "enable_metrics",
    "get_registry",
    "metrics_enabled",
    "render_metrics",
]

#: Default histogram bucket upper bounds (seconds), mirroring the Prometheus
#: client defaults; ``+Inf`` is implicit.
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_ENV_FLAG = "REPRO_METRICS"


def _env_truthy(value: Optional[str]) -> bool:
    return (value or "").strip().lower() not in ("", "0", "false", "no", "off")


#: Whether hot-path instrumentation records.  Mutated only through
#: :func:`enable_metrics` / :func:`disable_metrics`; hot loops may read the
#: module attribute directly, everyone else should call
#: :func:`metrics_enabled`.
ENABLED: bool = _env_truthy(os.environ.get(_ENV_FLAG))


def metrics_enabled() -> bool:
    """Whether gated (hot-path) instrumentation currently records."""
    return ENABLED


def enable_metrics() -> None:
    """Turn gated instrumentation on (also done by ``$REPRO_METRICS=1``)."""
    global ENABLED
    ENABLED = True


def disable_metrics() -> None:
    """Turn gated instrumentation off (the default)."""
    global ENABLED
    ENABLED = False


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _Metric:
    """Shared family machinery: name, help text and the labelled children.

    A family with no label names *is* its only series: ``inc``/``set``/
    ``observe`` act on the default (empty-label) child directly, which is the
    common case for process-level metrics.  Labelled families hand out bound
    children via :meth:`labels`.
    """

    kind = "untyped"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str], lock: threading.RLock
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} for metric {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._series: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            self._default = self._new_series()
            self._series[()] = self._default
        else:
            self._default = None

    def _new_series(self):
        raise NotImplementedError

    def labels(self, **labelvalues):
        """The child series for one concrete label assignment (created lazily)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._new_series()
                self._series[key] = series
        return series

    def _require_default(self):
        if self._default is None:
            raise ValueError(
                f"metric {self.name!r} has labels {self.labelnames}; "
                "use .labels(...) first"
            )
        return self._default

    def clear(self) -> None:
        """Zero every series (families and label children stay registered)."""
        with self._lock:
            for series in self._series.values():
                series._reset()

    def _snapshot_series(self) -> List[List[object]]:
        with self._lock:
            return [
                [list(key), series._snapshot_value()]
                for key, series in sorted(self._series.items())
            ]


class _CounterSeries:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0

    def _snapshot_value(self) -> float:
        return self._value

    def _merge_value(self, value) -> None:
        self._value += float(value)


class _GaugeSeries:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0

    def _snapshot_value(self) -> float:
        return self._value

    def _merge_value(self, value) -> None:
        # Gauges are "last writer wins": a worker snapshot overwrites.
        self._value = float(value)


class _HistogramSeries:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.RLock, bounds: Tuple[float, ...]) -> None:
        self._lock = lock
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # one per bound + overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def _reset(self) -> None:
        self._counts = [0] * (len(self._bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def _snapshot_value(self) -> Dict[str, object]:
        return {
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
        }

    def _merge_value(self, value) -> None:
        counts = value.get("counts", [])
        if len(counts) != len(self._counts):
            raise ValueError("histogram bucket layout mismatch")
        for i, c in enumerate(counts):
            self._counts[i] += int(c)
        self._sum += float(value.get("sum", 0.0))
        self._count += int(value.get("count", 0))


class Counter(_Metric):
    """A monotonically increasing count (``..._total`` by convention)."""

    kind = "counter"

    def _new_series(self) -> _CounterSeries:
        return _CounterSeries(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    @property
    def value(self) -> float:
        return self._require_default().value


class Gauge(_Metric):
    """A value that can go up and down (in-flight jobs, last-seen rates)."""

    kind = "gauge"

    def _new_series(self) -> _GaugeSeries:
        return _GaugeSeries(self._lock)

    def set(self, value: float) -> None:
        self._require_default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_default().dec(amount)

    @property
    def value(self) -> float:
        return self._require_default().value


class Histogram(_Metric):
    """Bucketed observations (latencies); cumulative on exposition."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        lock: threading.RLock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        self.bounds = bounds
        super().__init__(name, help, labelnames, lock)

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(self._lock, self.bounds)

    def observe(self, value: float) -> None:
        self._require_default().observe(value)

    @property
    def sum(self) -> float:
        return self._require_default().sum

    @property
    def count(self) -> int:
        return self._require_default().count


class MetricsRegistry:
    """A named collection of metric families behind one lock.

    ``counter``/``gauge``/``histogram`` are get-or-create and idempotent —
    re-registering the same name with the same type returns the existing
    family (so module-level handles survive :meth:`clear`), while a type
    conflict raises.  :meth:`snapshot` returns a plain, picklable dict that
    :meth:`merge` on any other registry consumes; that round-trip is how
    worker processes ship their counters home.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                if existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {labelnames}"
                    )
                return existing
            metric = cls(name, help, labelnames, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=tuple(buckets)
        )

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def clear(self) -> None:
        """Zero every series in every family (handles stay valid)."""
        with self._lock:
            for metric in self._metrics.values():
                metric.clear()

    # ------------------------------------------------------------------ #
    # Snapshot / merge (the worker -> parent transport)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, dict]:
        """All families and series as a plain JSON/pickle-safe dict."""
        with self._lock:
            out: Dict[str, dict] = {}
            for name, metric in self._metrics.items():
                entry: Dict[str, object] = {
                    "type": metric.kind,
                    "help": metric.help,
                    "labelnames": list(metric.labelnames),
                    "series": metric._snapshot_series(),
                }
                if isinstance(metric, Histogram):
                    entry["buckets"] = list(metric.bounds)
                out[name] = entry
            return out

    def merge(self, snapshot: Dict[str, dict]) -> None:
        """Fold a :meth:`snapshot` in: counters/histograms add, gauges overwrite."""
        for name, entry in snapshot.items():
            kind = entry.get("type")
            labelnames = tuple(entry.get("labelnames", ()))
            help = str(entry.get("help", ""))
            if kind == "counter":
                metric = self.counter(name, help, labelnames)
            elif kind == "gauge":
                metric = self.gauge(name, help, labelnames)
            elif kind == "histogram":
                metric = self.histogram(
                    name, help, labelnames, buckets=entry.get("buckets", DEFAULT_BUCKETS)
                )
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")
            for labelvalues, value in entry.get("series", []):
                key = tuple(str(v) for v in labelvalues)
                if metric.labelnames:
                    series = metric.labels(**dict(zip(metric.labelnames, key)))
                else:
                    series = metric._require_default()
                with self._lock:
                    series._merge_value(value)

    # ------------------------------------------------------------------ #
    # Exposition
    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """The registry in the Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} {metric.kind}")
                for labelvalues, value in metric._snapshot_series():
                    key = tuple(str(v) for v in labelvalues)
                    if isinstance(metric, Histogram):
                        cumulative = 0
                        counts = value["counts"]
                        for bound, count in zip(metric.bounds, counts):
                            cumulative += count
                            labels = _format_labels(
                                (*metric.labelnames, "le"),
                                (*key, _format_value(bound)),
                            )
                            lines.append(f"{name}_bucket{labels} {cumulative}")
                        cumulative += counts[-1]
                        labels = _format_labels(
                            (*metric.labelnames, "le"), (*key, "+Inf")
                        )
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                        plain = _format_labels(metric.labelnames, key)
                        lines.append(f"{name}_sum{plain} {_format_value(value['sum'])}")
                        lines.append(f"{name}_count{plain} {value['count']}")
                    else:
                        labels = _format_labels(metric.labelnames, key)
                        lines.append(f"{name}{labels} {_format_value(value)}")
        return "\n".join(lines) + "\n"


#: The process-global registry; hot-path instrumentation and anything that
#: has no better home records here.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global :data:`REGISTRY`."""
    return REGISTRY


def render_metrics(*registries: MetricsRegistry) -> str:
    """Render several registries as one exposition page.

    Snapshots are merged into a scratch registry first, so a family present
    in more than one input (e.g. the service's per-manager registry and the
    process-global one) is emitted once with summed series instead of as
    duplicate ``# TYPE`` blocks — which Prometheus parsers reject.
    """
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry.snapshot())
    return merged.render()
