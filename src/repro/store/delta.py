"""Edge deltas over stored graphs: the ingestion unit of ``repro.evolve``.

A :class:`GraphDelta` is a canonicalized batch of undirected edge insertions
and deletions against a fixed vertex set.  Deltas are the unit the evolving-
graph pipeline moves around: the catalog applies one to a parent ``.rcsr``
container to produce a versioned child container (recording the connection in
its lineage sidecar, see :meth:`repro.store.GraphCatalog.apply_delta`), and
the incremental estimator (:mod:`repro.evolve.incremental`) uses the *same*
delta to decide which accumulated path samples a mutation invalidated.

Canonical form
--------------
Construction normalises every edge to ``u < v``, sorts lexicographically and
deduplicates, so two deltas describing the same mutation compare equal and
hash to the same lineage digest regardless of input order.  Self-loops, an
edge listed both as insertion and deletion, and negative endpoints are
rejected up front (:class:`DeltaError`) — a delta that validates is applicable
to *some* graph; :meth:`GraphDelta.validate_against` checks applicability to a
concrete one (deletions must exist, insertions must not, endpoints in range).
Deltas never grow the vertex set: the incremental estimator's accumulators are
sized by ``n``, and the paper's serving story mutates edges, not identities.

The JSON file format (``repro-betweenness evolve apply --delta-file``) is::

    {"version": 1, "insert": [[u, v], ...], "delete": [[u, v], ...]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["DELTA_FORMAT_VERSION", "DeltaError", "GraphDelta", "apply_delta"]

PathLike = Union[str, Path]

DELTA_FORMAT_VERSION = 1


class DeltaError(ValueError):
    """Raised for malformed deltas or deltas inapplicable to a graph."""


def _canonical_edges(edges, *, kind: str) -> np.ndarray:
    """Coerce an edge collection to a sorted, deduplicated ``(k, 2)`` int64
    array with ``u < v`` per row (the canonical undirected form)."""
    array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if array.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    if array.ndim != 2 or array.shape[1] != 2:
        raise DeltaError(f"{kind} edges must be (k, 2) shaped, got {array.shape}")
    if not np.issubdtype(array.dtype, np.integer):
        converted = array.astype(np.int64)
        if not np.array_equal(converted, array):
            raise DeltaError(f"{kind} edges must be integer vertex pairs")
        array = converted
    array = array.astype(np.int64, copy=True)
    if int(array.min()) < 0:
        raise DeltaError(f"{kind} edges contain negative vertex ids")
    if np.any(array[:, 0] == array[:, 1]):
        raise DeltaError(f"{kind} edges contain self-loops")
    array.sort(axis=1)
    order = np.lexsort((array[:, 1], array[:, 0]))
    array = array[order]
    keep = np.ones(array.shape[0], dtype=bool)
    keep[1:] = np.any(array[1:] != array[:-1], axis=1)
    return np.ascontiguousarray(array[keep])


def _edge_keys(edges: np.ndarray, num_vertices: int) -> np.ndarray:
    """Collision-free int64 key per canonical edge (``u * n + v``)."""
    return edges[:, 0] * np.int64(num_vertices) + edges[:, 1]


@dataclass(frozen=True)
class GraphDelta:
    """A canonical batch of undirected edge insertions and deletions."""

    insertions: np.ndarray = field(default_factory=lambda: np.zeros((0, 2), np.int64))
    deletions: np.ndarray = field(default_factory=lambda: np.zeros((0, 2), np.int64))

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "insertions", _canonical_edges(self.insertions, kind="insert")
        )
        object.__setattr__(
            self, "deletions", _canonical_edges(self.deletions, kind="delete")
        )
        if self.insertions.size and self.deletions.size:
            bound = (
                int(max(self.insertions.max(), self.deletions.max())) + 1
            )
            overlap = np.intersect1d(
                _edge_keys(self.insertions, bound), _edge_keys(self.deletions, bound)
            )
            if overlap.size:
                u, v = divmod(int(overlap[0]), bound)
                raise DeltaError(
                    f"edge ({u}, {v}) appears in both insert and delete"
                )

    # ------------------------------------------------------------------ #
    @property
    def num_insertions(self) -> int:
        return int(self.insertions.shape[0])

    @property
    def num_deletions(self) -> int:
        return int(self.deletions.shape[0])

    @property
    def num_edges(self) -> int:
        """Total edges touched by the delta."""
        return self.num_insertions + self.num_deletions

    @property
    def is_empty(self) -> bool:
        return self.num_edges == 0

    def endpoints(self) -> np.ndarray:
        """Sorted unique vertices incident to any delta edge."""
        if self.is_empty:
            return np.zeros(0, dtype=np.int64)
        return np.unique(
            np.concatenate([self.insertions.ravel(), self.deletions.ravel()])
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphDelta):
            return NotImplemented
        return np.array_equal(self.insertions, other.insertions) and np.array_equal(
            self.deletions, other.deletions
        )

    def __repr__(self) -> str:
        return (
            f"GraphDelta(+{self.num_insertions} edges, -{self.num_deletions} edges)"
        )

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate_against(self, graph: CSRGraph) -> None:
        """Check applicability: endpoints in range, deletions present in the
        graph, insertions absent from it.  Raises :class:`DeltaError`."""
        n = graph.num_vertices
        endpoints = self.endpoints()
        if endpoints.size and int(endpoints.max()) >= n:
            raise DeltaError(
                f"delta references vertex {int(endpoints.max())} but the graph "
                f"has only {n} vertices (deltas cannot grow the vertex set)"
            )
        for u, v in self.deletions:
            if not graph.has_edge(int(u), int(v)):
                raise DeltaError(
                    f"cannot delete edge ({int(u)}, {int(v)}): not present in the graph"
                )
        for u, v in self.insertions:
            if graph.has_edge(int(u), int(v)):
                raise DeltaError(
                    f"cannot insert edge ({int(u)}, {int(v)}): already present in the graph"
                )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        """The canonical JSON payload (stable across equal deltas)."""
        return {
            "version": DELTA_FORMAT_VERSION,
            "insert": self.insertions.tolist(),
            "delete": self.deletions.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "GraphDelta":
        if not isinstance(payload, dict):
            raise DeltaError(f"delta payload must be a JSON object, got {type(payload).__name__}")
        version = payload.get("version", DELTA_FORMAT_VERSION)
        if version != DELTA_FORMAT_VERSION:
            raise DeltaError(f"unsupported delta format version {version!r}")
        unknown = set(payload) - {"version", "insert", "delete"}
        if unknown:
            raise DeltaError(f"unknown delta keys {sorted(unknown)}")
        return cls(
            insertions=payload.get("insert", []), deletions=payload.get("delete", [])
        )

    def save(self, path: PathLike) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: PathLike) -> "GraphDelta":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise DeltaError(f"cannot read delta file {path}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise DeltaError(f"{path} is not valid delta JSON: {exc}") from None
        return cls.from_dict(payload)


def apply_delta(
    graph: CSRGraph, delta: GraphDelta, *, validate: bool = True
) -> CSRGraph:
    """The child graph ``graph - deletions + insertions`` (same vertex set).

    With ``validate=True`` (default) the delta must be exactly applicable
    (every deletion present, no insertion already there) — the strictness is
    what keeps lineage records invertible and the incremental estimator's
    invalidation test exact.  The result is a fresh in-memory
    :class:`~repro.graph.csr.CSRGraph`; persist it through
    :meth:`repro.store.GraphCatalog.apply_delta` to obtain a versioned
    ``.rcsr`` with lineage.
    """
    if validate:
        delta.validate_against(graph)
    n = graph.num_vertices
    edges = graph.edge_array()
    if delta.num_deletions:
        keep = ~np.isin(_edge_keys(edges, n), _edge_keys(delta.deletions, n))
        edges = edges[keep]
    if delta.num_insertions:
        edges = np.vstack([edges, delta.insertions]) if edges.size else delta.insertions
    return CSRGraph.from_edges(edges, num_vertices=n)
