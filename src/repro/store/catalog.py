"""Dataset catalog: name/path resolution, auto-conversion and metadata cache.

The catalog is the piece that lets every experiment driver say "give me
``roadNet-PA``" (or a file path) and get a memory-mapped
:class:`~repro.graph.csr.CSRGraph` back:

* paths ending in ``.rcsr`` open directly (zero-copy, O(ms));
* text edge lists / METIS files are converted into the cache directory on
  first touch and opened from the ``.rcsr`` from then on — the text is parsed
  exactly once per (path, mtime, size);
* registered names (``catalog.json`` in the cache directory) resolve to their
  recorded ``.rcsr`` files.

Every cached graph carries a JSON sidecar (``<file>.rcsr.json``) holding the
statistics experiment drivers keep recomputing — vertex/edge counts, max
degree, component count, a double-sweep diameter estimate and the container
checksum — so ``repro info`` and instance resolution are metadata reads, not
graph traversals.

The cache directory defaults to ``$REPRO_GRAPH_CACHE`` or
``~/.cache/repro/graphs``.
"""

from __future__ import annotations

import difflib
import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.obs import trace as obs_trace
from repro.store.convert import ConversionReport, convert_any
from repro.store.delta import GraphDelta, apply_delta
from repro.store.format import (
    RcsrHeader,
    StoreFormatError,
    atomic_replace,
    open_rcsr,
    read_header,
    write_rcsr,
)

__all__ = [
    "CACHE_ENV_VAR",
    "RESULT_CACHE_ENV_VAR",
    "GraphCatalog",
    "GraphInfo",
    "default_cache_dir",
    "default_result_cache_dir",
    "load_graph",
    "graph_info",
]

PathLike = Union[str, Path]

CACHE_ENV_VAR = "REPRO_GRAPH_CACHE"
RESULT_CACHE_ENV_VAR = "REPRO_RESULT_CACHE"

_SIDECAR_VERSION = 1


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_GRAPH_CACHE`` or ``~/.cache/repro/graphs``."""
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "graphs"


def default_result_cache_dir() -> Path:
    """Where the query service caches betweenness results.

    ``$REPRO_RESULT_CACHE`` when set; otherwise a ``results`` directory *next
    to* the graph cache (``<graph-cache>/../results``, i.e.
    ``~/.cache/repro/results`` in the default layout) so relocating
    ``$REPRO_GRAPH_CACHE`` carries the result cache along with it.
    """
    env = os.environ.get(RESULT_CACHE_ENV_VAR)
    if env:
        return Path(env)
    return default_cache_dir().parent / "results"


@dataclass
class GraphInfo:
    """Sidecar metadata of one stored graph."""

    name: str
    path: str
    num_vertices: int
    num_edges: int
    max_degree: int
    num_components: int
    diameter_estimate: int
    checksum: str
    source: Optional[str] = None
    source_size: Optional[int] = None
    source_mtime_ns: Optional[int] = None
    #: semantic conversion parameters (fmt / zero_indexed / num_vertices plus
    #: the detected index base); a cached conversion is only reused when a new
    #: request asks for the same semantics.
    conversion: Optional[Dict[str, object]] = None

    @property
    def is_connected(self) -> bool:
        return self.num_components <= 1

    def as_dict(self) -> Dict[str, object]:
        return {"sidecar_version": _SIDECAR_VERSION, **asdict(self)}


def _sidecar_path(rcsr_path: Path) -> Path:
    return rcsr_path.with_name(rcsr_path.name + ".json")


def _header_checksum(header: RcsrHeader) -> str:
    return f"crc32:{header.crc_indptr:08x}{header.crc_indices:08x}"


def _read_valid_sidecar(rcsr_path: Path) -> Optional[GraphInfo]:
    """The sidecar of ``rcsr_path`` — only if it describes the current file.

    The recorded checksum is compared against the container header (one cheap
    header read): a sidecar left behind by an interrupted conversion, or by a
    ``CSRGraph.save()`` over a cataloged path, must not be trusted (the CLI
    uses the component count to skip the largest-component pass).
    """
    info = _read_sidecar(rcsr_path)
    if info is None:
        return None
    try:
        header = read_header(rcsr_path)
    except (OSError, StoreFormatError):
        return None
    if info.checksum != _header_checksum(header):
        return None
    return info


def _compute_info(rcsr_path: Path, *, name: str, source: Optional[Path]) -> GraphInfo:
    """Derive the sidecar statistics from a stored graph (one-off, at convert
    time; opens the graph memory-mapped so peak memory stays O(n))."""
    from repro.diameter import double_sweep_estimate
    from repro.graph.components import connected_components

    header = read_header(rcsr_path)
    graph = open_rcsr(rcsr_path)
    if graph.num_vertices > 0:
        max_degree = int(np.diff(graph.indptr).max())
        components = connected_components(graph)
        num_components = components.num_components
        if graph.num_edges > 0:
            diameter_estimate = int(double_sweep_estimate(graph, seed=0).lower)
        else:
            diameter_estimate = 0
    else:
        max_degree = 0
        num_components = 0
        diameter_estimate = 0
    info = GraphInfo(
        name=name,
        path=str(rcsr_path),
        num_vertices=header.num_vertices,
        num_edges=header.num_edges,
        max_degree=max_degree,
        num_components=num_components,
        diameter_estimate=diameter_estimate,
        checksum=_header_checksum(header),
    )
    if source is not None:
        stat = source.stat()
        info.source = str(source)
        info.source_size = stat.st_size
        info.source_mtime_ns = stat.st_mtime_ns
    return info


def _read_sidecar(rcsr_path: Path) -> Optional[GraphInfo]:
    sidecar = _sidecar_path(rcsr_path)
    if not sidecar.exists():
        return None
    try:
        payload = json.loads(sidecar.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if payload.get("sidecar_version") != _SIDECAR_VERSION:
        return None
    payload.pop("sidecar_version", None)
    try:
        return GraphInfo(**payload)
    except TypeError:
        return None


class GraphCatalog:
    """Resolves graph names and paths to memory-mapped ``.rcsr`` graphs.

    Parameters
    ----------
    cache_dir:
        Where converted graphs, sidecars and the name registry live.  Defaults
        to :func:`default_cache_dir`.  All catalog state is on disk, so
        multiple :class:`GraphCatalog` instances over the same directory see
        the same datasets.
    """

    def __init__(self, cache_dir: Optional[PathLike] = None) -> None:
        self._cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()

    # ------------------------------------------------------------------ #
    @property
    def cache_dir(self) -> Path:
        return self._cache_dir

    @property
    def _registry_path(self) -> Path:
        return self._cache_dir / "catalog.json"

    def _read_registry(self) -> Dict[str, str]:
        try:
            payload = json.loads(self._registry_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        return {str(k): str(v) for k, v in payload.get("datasets", {}).items()}

    def _write_registry(self, registry: Dict[str, str]) -> None:
        self._cache_dir.mkdir(parents=True, exist_ok=True)
        with atomic_replace(self._registry_path) as tmp:
            tmp.write_text(
                json.dumps({"version": 1, "datasets": registry}, indent=2, sort_keys=True)
            )

    @contextmanager
    def _registry_lock(self):
        """Serialize read-modify-write cycles on ``catalog.json``.

        Concurrent processes sharing a cache directory register datasets; a
        plain read-modify-write would let the last writer drop the other's
        entry.  Uses ``flock`` where available, degrades to unlocked
        elsewhere.
        """
        self._cache_dir.mkdir(parents=True, exist_ok=True)
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX platform
            yield
            return
        with open(self._cache_dir / "catalog.lock", "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    # ------------------------------------------------------------------ #
    # Name registry
    # ------------------------------------------------------------------ #
    def register(self, name: str, path: PathLike) -> None:
        """Record ``name`` as an alias for a stored ``.rcsr`` file."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"cannot register {name!r}: {path} does not exist")
        with self._registry_lock():
            registry = self._read_registry()
            registry[name] = str(path)
            self._write_registry(registry)

    def names(self) -> List[str]:
        """Registered dataset names, sorted."""
        return sorted(self._read_registry())

    # ------------------------------------------------------------------ #
    # Conversion / resolution
    # ------------------------------------------------------------------ #
    def rcsr_path_for(self, source: PathLike) -> Path:
        """Deterministic cache location for a text input's converted form."""
        source = Path(source).resolve()
        digest = hashlib.sha1(str(source).encode()).hexdigest()[:10]
        stem = source.name
        for suffix in (".gz", ".txt", ".tsv", ".csv", ".edges", ".el", ".metis", ".graph"):
            if stem.lower().endswith(suffix):
                stem = stem[: -len(suffix)]
        return self._cache_dir / f"{stem or 'graph'}-{digest}.rcsr"

    def _fresh_cached_info(
        self, rcsr_path: Path, source: Path, requested: Optional[Dict[str, object]] = None
    ) -> Optional[GraphInfo]:
        """The validated sidecar of a conversion that is still fresh, or None.

        Fresh means: the container matches its sidecar checksum, the recorded
        source fingerprint (path, size, mtime) matches the file on disk, and
        the recorded semantic conversion parameters match ``requested``.
        Returning the info (not a bool) lets the caller reuse it without a
        re-read that could race with a concurrent writer.
        """
        if not rcsr_path.exists():
            return None
        info = _read_valid_sidecar(rcsr_path)
        if info is None or info.source is None:
            return None
        try:
            stat = source.stat()
        except OSError:
            return None
        if requested is not None:
            recorded = info.conversion or {}
            if any(recorded.get(key) != value for key, value in requested.items()):
                return None
        if (
            info.source == str(source.resolve())
            and info.source_size == stat.st_size
            and info.source_mtime_ns == stat.st_mtime_ns
        ):
            return info
        return None

    def convert(
        self,
        source: PathLike,
        dest: Optional[PathLike] = None,
        *,
        force: bool = False,
        fmt: str = "auto",
        **convert_kwargs,
    ) -> ConversionReport:
        """Convert a text input to ``.rcsr`` and write its sidecar.

        Without ``dest`` the output goes to the cache directory.  A fresh
        cached conversion (same source path, size, mtime *and* semantic
        conversion parameters) is reused unless ``force=True``; the report has
        ``cache_hit=True`` and ``num_input_edges == 0`` on a cache hit.
        """
        source = Path(source)
        dest = Path(dest) if dest is not None else self.rcsr_path_for(source)
        with obs_trace.span("store.convert", source=str(source)) as sp:
            report = self._convert_impl(source, dest, force, fmt, convert_kwargs)
            if sp:
                sp.set("cache_hit", bool(report.cache_hit))
                sp.set("num_edges", int(report.num_edges))
        return report

    def _convert_impl(
        self,
        source: Path,
        dest: Path,
        force: bool,
        fmt: str,
        convert_kwargs: Dict[str, object],
    ) -> ConversionReport:
        from repro.store.convert import resolve_format

        requested: Dict[str, object] = {
            # Record the *concrete* format: fmt='auto' and fmt='edgelist' on
            # the same file are the same conversion and must share the cache.
            "fmt": resolve_format(source, fmt),
            "zero_indexed": convert_kwargs.get("zero_indexed"),
            "num_vertices": convert_kwargs.get("num_vertices"),
        }
        cached = None if force else self._fresh_cached_info(dest, source, requested)
        if cached is not None:
            header = read_header(dest)
            return ConversionReport(
                source=str(source),
                dest=str(dest),
                num_vertices=cached.num_vertices,
                num_edges=cached.num_edges,
                num_input_edges=0,
                indices_dtype=str(header.indices_dtype),
                output_bytes=dest.stat().st_size,
                zero_indexed=bool(
                    (cached.conversion or {}).get("detected_zero_indexed", True)
                ),
                cache_hit=True,
            )
        report = convert_any(source, dest, fmt=fmt, **convert_kwargs)
        self._write_sidecar(
            dest,
            name=source.name,
            source=source,
            conversion={**requested, "detected_zero_indexed": report.zero_indexed},
        )
        return report

    def _write_sidecar(
        self,
        rcsr_path: Path,
        *,
        name: str,
        source: Optional[Path],
        conversion: Optional[Dict[str, object]] = None,
    ) -> GraphInfo:
        info = _compute_info(rcsr_path, name=name, source=source.resolve() if source else None)
        info.conversion = conversion
        try:
            with atomic_replace(_sidecar_path(rcsr_path)) as tmp:
                tmp.write_text(json.dumps(info.as_dict(), indent=2, sort_keys=True))
        except OSError:
            # Read-only dataset location: the computed stats are still valid
            # and usable this run — they just cannot be cached next to the
            # container.  (Conversions never hit this: they already wrote the
            # .rcsr to the same directory.)
            pass
        return info

    def store_graph(self, graph: CSRGraph, name: str, *, path: Optional[PathLike] = None) -> Path:
        """Persist an in-memory graph into the catalog under ``name``."""
        path = Path(path) if path is not None else self._cache_dir / f"{name}.rcsr"
        write_rcsr(graph, path)
        self._write_sidecar(path, name=name, source=None)
        self.register(name, path)
        return path

    def resolve(self, spec: PathLike) -> Path:
        """Resolve a name or path to an ``.rcsr`` file, converting on first touch."""
        with obs_trace.span("store.resolve", spec=str(spec)):
            return self._resolve_impl(spec)

    def _resolve_impl(self, spec: PathLike) -> Path:
        path = Path(spec)
        if path.suffix == ".rcsr" and path.exists():
            return path
        if path.exists():
            return Path(self.convert(path).dest)
        registry = self._read_registry()
        key = str(spec)
        if key in registry:
            recorded = Path(registry[key])
            if not recorded.exists():
                raise FileNotFoundError(
                    f"catalog entry {key!r} points to missing file {recorded} "
                    f"(registered datasets: {', '.join(self.names()) or 'none'})"
                )
            return recorded
        known = self.names()
        close = difflib.get_close_matches(key, known, n=3, cutoff=0.6)
        hint = f"; did you mean {', '.join(repr(c) for c in close)}?" if close else ""
        raise FileNotFoundError(
            f"graph not found: {spec!r} is neither an existing file nor a "
            f"registered dataset (known: {', '.join(known) or 'none'}){hint}"
        )

    # ------------------------------------------------------------------ #
    # Evolving graphs: delta application + lineage
    # ------------------------------------------------------------------ #
    @property
    def _lineage_path(self) -> Path:
        return self._cache_dir / "lineage.json"

    def _read_lineage(self) -> Dict[str, dict]:
        try:
            payload = json.loads(self._lineage_path.read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        children = payload.get("children", {})
        return {str(k): dict(v) for k, v in children.items() if isinstance(v, dict)}

    def _write_lineage(self, children: Dict[str, dict]) -> None:
        self._cache_dir.mkdir(parents=True, exist_ok=True)
        with atomic_replace(self._lineage_path) as tmp:
            tmp.write_text(
                json.dumps(
                    {"version": 1, "children": children}, indent=2, sort_keys=True
                )
            )

    def record_lineage(
        self,
        *,
        child_checksum: str,
        parent_checksum: str,
        parent_path: PathLike,
        child_path: PathLike,
        delta: GraphDelta,
    ) -> None:
        """Record that ``child`` was produced from ``parent`` by ``delta``.

        Entries are keyed by the *child* checksum — the direction a query
        walks: a request against a mutated graph looks its own checksum up to
        find the parent whose cached session checkpoint can serve it
        incrementally (``repro.evolve``).  Re-deriving the same child
        overwrites the record idempotently.
        """
        entry = {
            "parent_checksum": parent_checksum,
            "parent_path": str(parent_path),
            "child_path": str(child_path),
            "delta": delta.as_dict(),
            "created_at": time.time(),
        }
        with self._registry_lock():
            children = self._read_lineage()
            children[child_checksum] = entry
            self._write_lineage(children)

    def lineage(self, child_checksum: str) -> Optional[Dict[str, object]]:
        """The lineage record of a graph checksum, or ``None`` for roots.

        The record carries ``parent_checksum``, ``parent_path``,
        ``child_path``, the connecting ``delta`` payload
        (:meth:`~repro.store.delta.GraphDelta.as_dict`) and ``created_at``.
        """
        return self._read_lineage().get(child_checksum)

    def apply_delta(
        self,
        spec: PathLike,
        delta: GraphDelta,
        *,
        name: Optional[str] = None,
        output: Optional[PathLike] = None,
    ) -> Path:
        """Apply ``delta`` to a stored graph, producing a versioned child.

        The parent resolves like any other graph spec; the child is written
        as a new ``.rcsr`` (by default into the cache directory, named after
        the parent plus a digest of the delta so identical derivations share
        one file), gets a metadata sidecar, and the parent -> child edge is
        recorded in the lineage sidecar.  Pass ``name`` to also register the
        child as a dataset.  Returns the child path.
        """
        parent_path = self.resolve(spec)
        parent = open_rcsr(parent_path)
        child = apply_delta(parent, delta)
        parent_checksum = _header_checksum(read_header(parent_path))
        if output is None:
            digest = hashlib.sha1(
                (parent_checksum + json.dumps(delta.as_dict(), sort_keys=True)).encode()
            ).hexdigest()[:10]
            output = self._cache_dir / f"{parent_path.stem}+{digest}.rcsr"
        output = Path(output)
        write_rcsr(child, output)
        self._write_sidecar(output, name=name or output.stem, source=None)
        if name is not None:
            self.register(name, output)
        self.record_lineage(
            child_checksum=_header_checksum(read_header(output)),
            parent_checksum=parent_checksum,
            parent_path=parent_path,
            child_path=output,
            delta=delta,
        )
        return output

    # ------------------------------------------------------------------ #
    # Loading / metadata
    # ------------------------------------------------------------------ #
    def load(self, spec: PathLike, *, mmap: bool = True) -> CSRGraph:
        """Open a graph by name or path (memory-mapped by default)."""
        return open_rcsr(self.resolve(spec), mmap=mmap)

    def partition(self, spec: PathLike, num_parts: int, *, force: bool = False):
        """Partition a stored graph into ``num_parts`` shards (idempotent).

        Resolves (converting text inputs on first touch, like :meth:`load`),
        then delegates to :func:`repro.store.partition.partition_rcsr`: an
        up-to-date manifest whose shards validate is reused without rewriting
        anything, so distributed launchers may call this on every run.
        """
        from repro.store.partition import partition_rcsr

        rcsr_path = self.resolve(spec)
        with obs_trace.span(
            "store.partition", spec=str(spec), num_parts=int(num_parts)
        ):
            return partition_rcsr(rcsr_path, num_parts, force=force)

    def partitioned_view(
        self, spec: PathLike, num_parts: int, own_part: int, *, mmap: bool = True
    ):
        """A rank's :class:`~repro.store.partition.PartitionedGraphView`.

        Partitions on demand (no-op when the shards already exist), then maps
        only shard ``own_part`` eagerly.
        """
        from repro.store.partition import PartitionedGraphView

        manifest = self.partition(spec, num_parts)
        return PartitionedGraphView(manifest, own_part, mmap=mmap)

    def info(self, spec: PathLike) -> GraphInfo:
        """Sidecar metadata for a graph, computing (and caching) it if absent
        or stale (checksum mismatch with the container)."""
        rcsr_path = self.resolve(spec)
        info = _read_valid_sidecar(rcsr_path)
        if info is not None:
            return info
        return self._write_sidecar(rcsr_path, name=rcsr_path.stem, source=None)

    def checksum(self, spec: PathLike) -> str:
        """The content checksum of a stored graph (``"crc32:<16 hex>"``).

        One header read of the resolved ``.rcsr`` container — no sidecar, no
        graph traversal.  This is the key the query-service result cache uses
        to tie cached betweenness scores to exact graph contents: re-convert a
        changed source file and the checksum (hence the cache key) changes.
        """
        return _header_checksum(read_header(self.resolve(spec)))

    def cached_checksum(self, spec: PathLike) -> Optional[str]:
        """Like :meth:`checksum`, but **never converts** — ``None`` instead.

        Resolution is limited to what already exists: an ``.rcsr`` path, a
        registered name, or a text input whose converted form is already in
        the cache.  Callers that only need the checksum *if* the graph is
        stored (e.g. ``repro-betweenness cache evict --graph``) use this so
        an eviction can never trigger a multi-gigabyte conversion.
        """
        candidates: List[Path] = []
        path = Path(spec)
        if path.exists():
            candidates.append(path if path.suffix == ".rcsr" else self.rcsr_path_for(path))
        else:
            recorded = self._read_registry().get(str(spec))
            if recorded is not None:
                candidates.append(Path(recorded))
        for candidate in candidates:
            if candidate.exists():
                try:
                    return _header_checksum(read_header(candidate))
                except (OSError, StoreFormatError):
                    return None
        return None

    def cached_info(self, rcsr_path: PathLike) -> Optional[GraphInfo]:
        """The sidecar of a stored graph if a valid one exists — never computes.

        Cheap by construction (one JSON read plus one header read); callers
        that only *benefit* from the metadata (e.g. the CLI's
        connected-component skip) use this so a bare ``.rcsr`` input never
        pays for whole-graph statistics, and a stale sidecar returns ``None``
        rather than wrong answers.
        """
        return _read_valid_sidecar(Path(rcsr_path))


def load_graph(
    spec: PathLike, *, catalog: Optional[GraphCatalog] = None, mmap: bool = True
) -> CSRGraph:
    """Module-level convenience: load a graph through a (default) catalog."""
    return (catalog or GraphCatalog()).load(spec, mmap=mmap)


def graph_info(spec: PathLike, *, catalog: Optional[GraphCatalog] = None) -> GraphInfo:
    """Module-level convenience: sidecar metadata through a (default) catalog."""
    return (catalog or GraphCatalog()).info(spec)
