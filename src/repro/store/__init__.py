"""``repro.store`` — memory-mapped binary graph store and dataset catalog.

Three pieces (see ``docs/formats.md`` for the on-disk specification):

* :mod:`repro.store.format` — the versioned ``.rcsr`` container: one header,
  page-aligned ``indptr``/``indices`` sections, opened zero-copy with
  :func:`numpy.memmap` so that every worker shares one read-only CSR at
  page-cache cost (the substrate the paper's scaling argument assumes).
* :mod:`repro.store.convert` — out-of-core ingestion: streams KONECT/SNAP/
  METIS text in bounded-memory chunks through a spill file and a two-pass
  degree-count/fill build, so graphs larger than RAM can be converted.
* :mod:`repro.store.catalog` — :class:`GraphCatalog`: name/path resolution
  against a cache directory, auto-conversion of text inputs on first touch,
  and JSON metadata sidecars (n, m, max degree, components, diameter
  estimate, checksum).
"""

from repro.store.catalog import (
    CACHE_ENV_VAR,
    RESULT_CACHE_ENV_VAR,
    GraphCatalog,
    GraphInfo,
    default_cache_dir,
    default_result_cache_dir,
    graph_info,
    load_graph,
)
from repro.store.convert import (
    ConversionReport,
    convert_any,
    convert_edge_list,
    convert_metis,
    resolve_format,
)
from repro.store.delta import (
    DELTA_FORMAT_VERSION,
    DeltaError,
    GraphDelta,
    apply_delta,
)
from repro.store.format import (
    FORMAT_VERSION,
    MAGIC,
    PAGE_SIZE,
    RcsrHeader,
    StoreFormatError,
    open_rcsr,
    read_header,
    write_rcsr,
)
from repro.store.partition import (
    PARTITION_MANIFEST_VERSION,
    PartitionError,
    PartitionManifest,
    PartitionedGraphView,
    ShardInfo,
    ShardedPathSampler,
    find_manifests,
    manifest_path_for,
    partition_boundaries,
    partition_rcsr,
)

__all__ = [
    "CACHE_ENV_VAR",
    "RESULT_CACHE_ENV_VAR",
    "ConversionReport",
    "DELTA_FORMAT_VERSION",
    "DeltaError",
    "FORMAT_VERSION",
    "GraphCatalog",
    "GraphDelta",
    "GraphInfo",
    "MAGIC",
    "PAGE_SIZE",
    "PARTITION_MANIFEST_VERSION",
    "PartitionError",
    "PartitionManifest",
    "PartitionedGraphView",
    "RcsrHeader",
    "ShardInfo",
    "ShardedPathSampler",
    "StoreFormatError",
    "apply_delta",
    "convert_any",
    "convert_edge_list",
    "convert_metis",
    "default_cache_dir",
    "default_result_cache_dir",
    "find_manifests",
    "graph_info",
    "load_graph",
    "manifest_path_for",
    "open_rcsr",
    "partition_boundaries",
    "partition_rcsr",
    "read_header",
    "resolve_format",
    "write_rcsr",
]
