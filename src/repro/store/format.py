"""The ``.rcsr`` binary CSR container: one header, two page-aligned sections.

The paper's algorithms assume that every worker shares one read-only CSR graph
at near-zero cost.  Re-parsing a whitespace edge list on every run (and on
every rank) makes graph load dominate end-to-end time long before sampling
does; the ``.rcsr`` container removes that cost.  A file holds exactly the two
arrays of :class:`~repro.graph.csr.CSRGraph`:

========  ======================  =========================================
offset    field                   meaning
========  ======================  =========================================
0         ``magic``               ``b"RCSR"``
4         ``version`` (u16)       format version, currently 1
6         ``indptr_dtype`` (u8)   dtype code of ``indptr`` (1 = int64)
7         ``indices_dtype`` (u8)  dtype code of ``indices`` (0 = uint32,
                                  1 = int64)
8         ``num_vertices`` (u64)  ``n``
16        ``num_arcs`` (u64)      ``len(indices)`` = ``2 m``
24        ``indptr_offset`` (u64) file offset of the ``indptr`` section
32        ``indices_offset``      file offset of the ``indices`` section
          (u64)
40        ``file_size`` (u64)     expected total file size in bytes
48        ``crc_indptr`` (u32)    CRC-32 of the ``indptr`` section
52        ``crc_indices`` (u32)   CRC-32 of the ``indices`` section
========  ======================  =========================================

Both array sections start on a 4096-byte page boundary so that
:func:`numpy.memmap` maps them without copying and the OS page cache shares
the (read-only) pages across every process that opens the same file —
including workers forked after the open.  Opening is O(header): no text
parsing, no array copy, independent of graph size.
"""

from __future__ import annotations

import os
import struct
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.graph.csr import CSRGraph

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "PAGE_SIZE",
    "RcsrHeader",
    "StoreFormatError",
    "open_rcsr",
    "read_header",
    "write_rcsr",
]

PathLike = Union[str, Path]

MAGIC = b"RCSR"
FORMAT_VERSION = 1
PAGE_SIZE = 4096

#: struct layout of the fixed part of the header (see module docstring).
_HEADER_STRUCT = struct.Struct("<4sHBBQQQQQII")
#: the header occupies one page; array sections start page-aligned after it.
HEADER_SIZE = PAGE_SIZE

_DTYPE_CODES = {0: np.dtype(np.uint32), 1: np.dtype(np.int64)}
_CODE_FOR_DTYPE = {dtype: code for code, dtype in _DTYPE_CODES.items()}

#: chunk size for streaming CRC computation (bytes).
_CRC_CHUNK = 1 << 24


class StoreFormatError(ValueError):
    """Raised for files that are not valid ``.rcsr`` containers."""


@dataclass(frozen=True)
class RcsrHeader:
    """Decoded ``.rcsr`` header."""

    version: int
    indptr_dtype: np.dtype
    indices_dtype: np.dtype
    num_vertices: int
    num_arcs: int
    indptr_offset: int
    indices_offset: int
    file_size: int
    crc_indptr: int
    crc_indices: int

    @property
    def num_edges(self) -> int:
        return self.num_arcs // 2

    @property
    def indptr_nbytes(self) -> int:
        return (self.num_vertices + 1) * self.indptr_dtype.itemsize

    @property
    def indices_nbytes(self) -> int:
        return self.num_arcs * self.indices_dtype.itemsize


def _align_up(offset: int, alignment: int = PAGE_SIZE) -> int:
    return (offset + alignment - 1) // alignment * alignment


def unique_tmp_path(dest: Path) -> Path:
    """A writer-unique sibling temp path for atomic ``os.replace`` writes.

    Every writer must get its own temp file: concurrent conversions of the
    same source (two CLI runs, two benchmark workers sharing a cache) would
    otherwise interleave writes into one ``.tmp`` and promote garbage.
    """
    return dest.with_name(f"{dest.name}.{os.getpid()}.{os.urandom(4).hex()}.tmp")


@contextmanager
def atomic_replace(dest: Path):
    """Write-then-rename: yields a unique temp path, promotes it on success.

    On any failure the temp file is removed, so interrupted writers never
    litter a shared cache directory with unreclaimable ``.tmp`` files.
    """
    tmp = unique_tmp_path(dest)
    try:
        yield tmp
        os.replace(tmp, dest)
    finally:
        if tmp.exists():
            tmp.unlink()


def _crc32_array(array: np.ndarray) -> int:
    """CRC-32 of an array's raw bytes, streamed to bound peak memory."""
    view = memoryview(np.ascontiguousarray(array)).cast("B")
    crc = 0
    for start in range(0, len(view), _CRC_CHUNK):
        crc = zlib.crc32(view[start : start + _CRC_CHUNK], crc)
    return crc & 0xFFFFFFFF


def pack_header(header: RcsrHeader) -> bytes:
    """Encode a header into its fixed-size on-disk representation."""
    fixed = _HEADER_STRUCT.pack(
        MAGIC,
        header.version,
        _CODE_FOR_DTYPE[np.dtype(header.indptr_dtype)],
        _CODE_FOR_DTYPE[np.dtype(header.indices_dtype)],
        header.num_vertices,
        header.num_arcs,
        header.indptr_offset,
        header.indices_offset,
        header.file_size,
        header.crc_indptr,
        header.crc_indices,
    )
    return fixed + b"\x00" * (HEADER_SIZE - len(fixed))


def read_header(path: PathLike) -> RcsrHeader:
    """Read and validate the header of an ``.rcsr`` file.

    Raises :class:`StoreFormatError` for wrong magic/version, inconsistent
    section offsets, or a file shorter than the header declares.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        raw = handle.read(_HEADER_STRUCT.size)
    if len(raw) < _HEADER_STRUCT.size:
        raise StoreFormatError(f"{path}: file too short to hold an .rcsr header")
    (
        magic,
        version,
        indptr_code,
        indices_code,
        num_vertices,
        num_arcs,
        indptr_offset,
        indices_offset,
        file_size,
        crc_indptr,
        crc_indices,
    ) = _HEADER_STRUCT.unpack(raw)
    if magic != MAGIC:
        raise StoreFormatError(f"{path}: bad magic {magic!r}, not an .rcsr file")
    if version != FORMAT_VERSION:
        raise StoreFormatError(
            f"{path}: unsupported .rcsr version {version} (expected {FORMAT_VERSION})"
        )
    if indptr_code not in _DTYPE_CODES or indices_code not in _DTYPE_CODES:
        raise StoreFormatError(f"{path}: unknown dtype codes ({indptr_code}, {indices_code})")
    header = RcsrHeader(
        version=version,
        indptr_dtype=_DTYPE_CODES[indptr_code],
        indices_dtype=_DTYPE_CODES[indices_code],
        num_vertices=int(num_vertices),
        num_arcs=int(num_arcs),
        indptr_offset=int(indptr_offset),
        indices_offset=int(indices_offset),
        file_size=int(file_size),
        crc_indptr=int(crc_indptr),
        crc_indices=int(crc_indices),
    )
    if header.indptr_offset < HEADER_SIZE:
        raise StoreFormatError(f"{path}: indptr section overlaps the header")
    if header.indices_offset < header.indptr_offset + header.indptr_nbytes:
        raise StoreFormatError(f"{path}: indices section overlaps the indptr section")
    expected_size = header.indices_offset + header.indices_nbytes
    if header.file_size < expected_size:
        raise StoreFormatError(f"{path}: header declares inconsistent section sizes")
    actual = path.stat().st_size
    if actual < expected_size:
        raise StoreFormatError(
            f"{path}: truncated file ({actual} bytes, expected >= {expected_size})"
        )
    return header


def write_rcsr(graph: "CSRGraph", path: PathLike) -> Path:
    """Write a graph as an ``.rcsr`` container (atomically, via a temp file)."""
    path = Path(path)
    indptr = np.ascontiguousarray(graph.indptr, dtype=np.int64)
    indices = graph.indices
    if indices.dtype not in _CODE_FOR_DTYPE:
        indices = np.ascontiguousarray(indices, dtype=np.int64)
    else:
        indices = np.ascontiguousarray(indices)
    indptr_offset = HEADER_SIZE
    indices_offset = _align_up(indptr_offset + indptr.nbytes)
    header = RcsrHeader(
        version=FORMAT_VERSION,
        indptr_dtype=indptr.dtype,
        indices_dtype=indices.dtype,
        num_vertices=graph.num_vertices,
        num_arcs=int(indices.size),
        indptr_offset=indptr_offset,
        indices_offset=indices_offset,
        file_size=indices_offset + indices.nbytes,
        crc_indptr=_crc32_array(indptr),
        crc_indices=_crc32_array(indices),
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    with atomic_replace(path) as tmp:
        with open(tmp, "wb") as handle:
            handle.write(pack_header(header))
            indptr.tofile(handle)
            handle.write(b"\x00" * (indices_offset - indptr_offset - indptr.nbytes))
            indices.tofile(handle)
    return path


def _section_array(
    path: Path, header: RcsrHeader, dtype: np.dtype, offset: int, count: int, mmap: bool
) -> np.ndarray:
    if count == 0:
        return np.zeros(0, dtype=dtype)
    if mmap:
        return np.memmap(path, mode="r", dtype=dtype, offset=offset, shape=(count,))
    with open(path, "rb") as handle:
        handle.seek(offset)
        array = np.fromfile(handle, dtype=dtype, count=count)
    if array.size != count:
        raise StoreFormatError(f"{path}: truncated section at offset {offset}")
    array.setflags(write=False)
    return array


def open_rcsr(
    path: PathLike, *, mmap: bool = True, verify_checksum: bool = False
) -> "CSRGraph":
    """Open an ``.rcsr`` file as a :class:`~repro.graph.csr.CSRGraph`.

    With ``mmap=True`` (default) the arrays are read-only :func:`numpy.memmap`
    views — the open is O(header) and the pages are shared with every other
    process mapping the same file.  ``verify_checksum=True`` additionally
    streams both sections through CRC-32 (a full read; off by default to keep
    opens at page-cache speed).
    """
    from repro.graph.csr import CSRGraph

    path = Path(path)
    header = read_header(path)
    indptr = _section_array(
        path, header, header.indptr_dtype, header.indptr_offset, header.num_vertices + 1, mmap
    )
    indices = _section_array(
        path, header, header.indices_dtype, header.indices_offset, header.num_arcs, mmap
    )
    if verify_checksum:
        if _crc32_array(indptr) != header.crc_indptr:
            raise StoreFormatError(f"{path}: indptr section fails its CRC-32 check")
        if _crc32_array(indices) != header.crc_indices:
            raise StoreFormatError(f"{path}: indices section fails its CRC-32 check")
    if indptr[0] != 0 or indptr[-1] != header.num_arcs:
        raise StoreFormatError(f"{path}: indptr section is not a valid CSR row pointer")
    return CSRGraph.from_validated_arrays(indptr, indices, source_path=path)
