"""Partitioned ``.rcsr`` shards: per-rank adjacency for the distributed runtime.

The paper's scale-out argument assumes each MPI rank holds only a *slice* of
the graph: with ``K`` partitions a rank maps ``~1/K`` of the adjacency arrays
instead of the full CSR.  This module implements that slicing on top of the
existing container format, without a new on-disk format:

* :func:`partition_rcsr` splits a monolithic ``.rcsr`` into ``K`` shard files
  ``{stem}.part{k}of{K}.rcsr`` covering contiguous vertex ranges balanced by
  arc count.  Every shard is itself a *valid standalone* ``.rcsr``: its
  ``indptr`` is rebased to start at 0 while its ``indices`` keep **global**
  vertex ids (the container never range-checks indices against the local
  vertex count, which is exactly what makes this slicing free).  Each shard
  therefore carries its own per-partition CRC-32 sidecars in its header.
* a JSON *manifest* ``{stem}.parts{K}.json`` records the vertex boundaries,
  per-shard checksums, the source container checksum and a precomputed
  vertex-diameter upper bound (so distributed ranks skip the sequential
  diameter phase).
* :class:`PartitionedGraphView` gives a rank a graph-shaped object over the
  shards: its *own* shard is mapped eagerly (and checksum-validated against
  the manifest); sibling shards are memory-mapped lazily on first
  cross-partition adjacency access, so a rank's resident set is its shard
  plus only the remote pages its BFS frontiers actually touch.
* :class:`ShardedPathSampler` samples uniform shortest paths through the view
  (single-sided sigma-BFS + sigma-weighted backward walk, the same algorithm
  as the kernel backends), which is what
  :func:`repro.core.kadabra.make_sampler` picks up via the ``native_sampler``
  hook.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.store.format import (
    RcsrHeader,
    StoreFormatError,
    atomic_replace,
    open_rcsr,
    read_header,
    write_rcsr,
)

__all__ = [
    "PARTITION_MANIFEST_VERSION",
    "PartitionError",
    "ShardInfo",
    "PartitionManifest",
    "PartitionedGraphView",
    "ShardedPathSampler",
    "manifest_path_for",
    "partition_boundaries",
    "partition_rcsr",
    "find_manifests",
    "format_placement",
]

PathLike = Union[str, Path]

PARTITION_MANIFEST_VERSION = 1


class PartitionError(StoreFormatError):
    """Raised for invalid, corrupt or missing partition shards/manifests."""


def _header_checksum(header: RcsrHeader) -> str:
    # Same content key as GraphCatalog sidecars: both section CRCs.
    return f"crc32:{header.crc_indptr:08x}{header.crc_indices:08x}"


def _rcsr_stem(path: Path) -> str:
    name = path.name
    return name[: -len(".rcsr")] if name.endswith(".rcsr") else path.stem


def manifest_path_for(rcsr_path: PathLike, num_parts: int) -> Path:
    """Where the manifest of a ``num_parts``-way partition lives."""
    rcsr_path = Path(rcsr_path)
    return rcsr_path.with_name(f"{_rcsr_stem(rcsr_path)}.parts{int(num_parts)}.json")


def shard_path_for(rcsr_path: PathLike, part: int, num_parts: int) -> Path:
    """The shard file of partition ``part`` of ``num_parts``."""
    rcsr_path = Path(rcsr_path)
    return rcsr_path.with_name(
        f"{_rcsr_stem(rcsr_path)}.part{int(part)}of{int(num_parts)}.rcsr"
    )


def partition_boundaries(indptr: np.ndarray, num_parts: int) -> np.ndarray:
    """Contiguous vertex ranges balanced by arc count.

    Returns an int64 array ``b`` of length ``num_parts + 1`` with ``b[0] = 0``
    and ``b[-1] = n``; partition ``k`` owns vertices ``[b[k], b[k+1])``.  Cuts
    are placed by binary search on the row pointer so every partition carries
    roughly ``num_arcs / num_parts`` adjacency entries; each partition is
    guaranteed at least one vertex (so ``num_parts`` may not exceed ``n``).
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    n = int(indptr.size - 1)
    num_parts = int(num_parts)
    if num_parts <= 0:
        raise PartitionError("num_parts must be positive")
    if num_parts > n:
        raise PartitionError(f"cannot split {n} vertices into {num_parts} partitions")
    total_arcs = int(indptr[-1])
    bounds = np.empty(num_parts + 1, dtype=np.int64)
    bounds[0] = 0
    bounds[num_parts] = n
    for k in range(1, num_parts):
        target = total_arcs * k // num_parts
        cut = int(np.searchsorted(indptr, target, side="left"))
        # Clamp so every partition keeps >= 1 vertex on both sides of the cut.
        bounds[k] = min(max(cut, int(bounds[k - 1]) + 1), n - (num_parts - k))
    return bounds


@dataclass(frozen=True)
class ShardInfo:
    """Manifest record of one shard file."""

    path: str  # file name, relative to the manifest's directory
    vertex_lo: int
    vertex_hi: int
    num_arcs: int
    checksum: str

    @property
    def num_vertices(self) -> int:
        return self.vertex_hi - self.vertex_lo


@dataclass
class PartitionManifest:
    """The ``{stem}.parts{K}.json`` sidecar describing one partitioning."""

    stem: str
    num_parts: int
    num_vertices: int
    num_arcs: int
    source_checksum: str
    vertex_diameter: int
    shards: List[ShardInfo] = field(default_factory=list)
    directory: Optional[Path] = None  # where the manifest (and shards) live

    # ------------------------------------------------------------------ #
    @property
    def boundaries(self) -> np.ndarray:
        bounds = np.empty(self.num_parts + 1, dtype=np.int64)
        for k, shard in enumerate(self.shards):
            bounds[k] = shard.vertex_lo
        bounds[self.num_parts] = self.num_vertices
        return bounds

    def shard_path(self, part: int) -> Path:
        if not (0 <= part < self.num_parts):
            raise PartitionError(f"partition index {part} out of range [0, {self.num_parts})")
        if self.directory is None:
            raise PartitionError("manifest has no directory; load it from disk first")
        return self.directory / self.shards[part].path

    def part_of_vertex(self, v: int) -> int:
        """Which partition owns global vertex ``v``."""
        if not (0 <= v < self.num_vertices):
            raise PartitionError(f"vertex {v} out of range [0, {self.num_vertices})")
        return int(np.searchsorted(self.boundaries, v, side="right") - 1)

    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        return {
            "version": PARTITION_MANIFEST_VERSION,
            "stem": self.stem,
            "num_parts": self.num_parts,
            "num_vertices": self.num_vertices,
            "num_arcs": self.num_arcs,
            "source_checksum": self.source_checksum,
            "vertex_diameter": self.vertex_diameter,
            "shards": [
                {
                    "path": s.path,
                    "vertex_lo": s.vertex_lo,
                    "vertex_hi": s.vertex_hi,
                    "num_arcs": s.num_arcs,
                    "checksum": s.checksum,
                }
                for s in self.shards
            ],
        }

    def save(self, path: PathLike) -> Path:
        path = Path(path)
        with atomic_replace(path) as tmp:
            tmp.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True))
        self.directory = path.parent
        return path

    @classmethod
    def load(cls, path: PathLike) -> "PartitionManifest":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise PartitionError(f"{path}: cannot read partition manifest: {exc}") from None
        except json.JSONDecodeError as exc:
            raise PartitionError(f"{path}: manifest is not valid JSON: {exc}") from None
        if payload.get("version") != PARTITION_MANIFEST_VERSION:
            raise PartitionError(
                f"{path}: unsupported manifest version {payload.get('version')!r}"
            )
        try:
            shards = [
                ShardInfo(
                    path=str(s["path"]),
                    vertex_lo=int(s["vertex_lo"]),
                    vertex_hi=int(s["vertex_hi"]),
                    num_arcs=int(s["num_arcs"]),
                    checksum=str(s["checksum"]),
                )
                for s in payload["shards"]
            ]
            manifest = cls(
                stem=str(payload["stem"]),
                num_parts=int(payload["num_parts"]),
                num_vertices=int(payload["num_vertices"]),
                num_arcs=int(payload["num_arcs"]),
                source_checksum=str(payload["source_checksum"]),
                vertex_diameter=int(payload["vertex_diameter"]),
                shards=shards,
                directory=path.parent,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PartitionError(f"{path}: malformed partition manifest: {exc}") from None
        if len(manifest.shards) != manifest.num_parts:
            raise PartitionError(
                f"{path}: manifest declares {manifest.num_parts} partitions but "
                f"lists {len(manifest.shards)} shards"
            )
        return manifest

    # ------------------------------------------------------------------ #
    def validate_shards(self, *, deep: bool = False) -> None:
        """Verify every shard exists and matches its recorded checksum.

        The default check reads only each shard's header (the header carries
        both section CRCs, so swapping in a *different* valid shard is caught
        cheaply).  ``deep=True`` additionally streams every section through
        CRC-32, catching in-place byte corruption of the array data.
        """
        for k, shard in enumerate(self.shards):
            path = self.shard_path(k)
            if not path.exists():
                raise PartitionError(f"missing partition shard: {path}")
            try:
                header = read_header(path)
            except StoreFormatError as exc:
                raise PartitionError(f"corrupt partition shard {path}: {exc}") from None
            if _header_checksum(header) != shard.checksum:
                raise PartitionError(
                    f"partition shard {path} fails its manifest checksum "
                    f"({_header_checksum(header)} != {shard.checksum})"
                )
            if header.num_vertices != shard.num_vertices or header.num_arcs != shard.num_arcs:
                raise PartitionError(
                    f"partition shard {path} has unexpected shape "
                    f"(n={header.num_vertices}, arcs={header.num_arcs})"
                )
            if deep:
                try:
                    open_rcsr(path, verify_checksum=True)
                except StoreFormatError as exc:
                    raise PartitionError(f"corrupt partition shard {path}: {exc}") from None

    def matches_source(self, rcsr_path: PathLike) -> bool:
        """Whether this manifest describes the current contents of ``rcsr_path``."""
        try:
            return _header_checksum(read_header(Path(rcsr_path))) == self.source_checksum
        except (OSError, StoreFormatError):
            return False


def partition_rcsr(
    rcsr_path: PathLike,
    num_parts: int,
    *,
    force: bool = False,
    vertex_diameter: Optional[int] = None,
) -> PartitionManifest:
    """Split a monolithic ``.rcsr`` into ``num_parts`` shard files + manifest.

    Idempotent: an existing manifest whose source checksum matches the current
    container and whose shards validate is reused as-is (no shard rewrite)
    unless ``force=True``.  The manifest records a vertex-diameter upper bound
    computed once on the monolithic graph (pass ``vertex_diameter`` to skip
    the computation), which distributed ranks inject as
    ``vertex_diameter_override`` so no rank ever needs the full adjacency for
    the diameter phase.
    """
    rcsr_path = Path(rcsr_path)
    num_parts = int(num_parts)
    manifest_path = manifest_path_for(rcsr_path, num_parts)
    if not force and manifest_path.exists():
        try:
            manifest = PartitionManifest.load(manifest_path)
            if manifest.matches_source(rcsr_path):
                manifest.validate_shards()
                return manifest
        except PartitionError:
            pass  # stale or broken: rebuild below

    graph = open_rcsr(rcsr_path)
    header = read_header(rcsr_path)
    indptr = np.asarray(graph.indptr, dtype=np.int64)
    indices = graph.indices
    bounds = partition_boundaries(indptr, num_parts)

    if vertex_diameter is None:
        from repro.diameter import vertex_diameter_upper_bound

        vertex_diameter = max(vertex_diameter_upper_bound(graph, seed=0), 2)

    stem = _rcsr_stem(rcsr_path)
    shards: List[ShardInfo] = []
    for k in range(num_parts):
        lo, hi = int(bounds[k]), int(bounds[k + 1])
        shard_indptr = np.ascontiguousarray(indptr[lo : hi + 1] - indptr[lo])
        shard_indices = np.ascontiguousarray(indices[indptr[lo] : indptr[hi]])
        shard = CSRGraph.from_validated_arrays(shard_indptr, shard_indices)
        path = shard_path_for(rcsr_path, k, num_parts)
        write_rcsr(shard, path)
        shards.append(
            ShardInfo(
                path=path.name,
                vertex_lo=lo,
                vertex_hi=hi,
                num_arcs=int(shard_indices.size),
                checksum=_header_checksum(read_header(path)),
            )
        )

    manifest = PartitionManifest(
        stem=stem,
        num_parts=num_parts,
        num_vertices=graph.num_vertices,
        num_arcs=header.num_arcs,
        source_checksum=_header_checksum(header),
        vertex_diameter=int(vertex_diameter),
        shards=shards,
        directory=rcsr_path.parent,
    )
    manifest.save(manifest_path)
    return manifest


def find_manifests(rcsr_path: PathLike) -> List[PartitionManifest]:
    """All valid partition manifests next to a stored graph, by part count."""
    rcsr_path = Path(rcsr_path)
    out: List[PartitionManifest] = []
    for candidate in sorted(rcsr_path.parent.glob(f"{_rcsr_stem(rcsr_path)}.parts*.json")):
        try:
            manifest = PartitionManifest.load(candidate)
        except PartitionError:
            continue
        if manifest.matches_source(rcsr_path):
            out.append(manifest)
    return sorted(out, key=lambda m: m.num_parts)


def format_placement(manifest: PartitionManifest) -> List[str]:
    """Human-readable predicted rank -> shard placement lines (CLI ``info``)."""
    lines = [
        f"partitioned x{manifest.num_parts}: "
        f"{manifest.num_vertices} vertices, {manifest.num_arcs} arcs, "
        f"vertex diameter <= {manifest.vertex_diameter}"
    ]
    for k, shard in enumerate(manifest.shards):
        share = shard.num_arcs / manifest.num_arcs if manifest.num_arcs else 0.0
        lines.append(
            f"  rank {k}: vertices [{shard.vertex_lo}, {shard.vertex_hi}) "
            f"arcs {shard.num_arcs} ({share:.0%})  {shard.path}"
        )
    return lines


class PartitionedGraphView:
    """Graph-shaped view over partition shards, owned by one rank.

    The rank's own shard is opened (memory-mapped) eagerly at construction and
    validated against the manifest checksum — a missing or substituted shard
    is rejected immediately.  Sibling shards are mapped lazily on first
    cross-partition adjacency access; memory maps share the OS page cache, so
    the rank only pays for the remote pages its traversals actually touch.

    The view quacks enough like :class:`~repro.graph.csr.CSRGraph` for the
    samplers and drivers (``num_vertices``, ``num_edges``, ``neighbors``,
    ``degree``) and exposes :meth:`native_sampler`, which
    :func:`repro.core.kadabra.make_sampler` routes to so the unchanged
    calibration/adaptive phases sample through the shards transparently.
    """

    def __init__(self, manifest: PartitionManifest, own_part: int, *, mmap: bool = True) -> None:
        if not (0 <= own_part < manifest.num_parts):
            raise PartitionError(
                f"own_part {own_part} out of range [0, {manifest.num_parts})"
            )
        self._manifest = manifest
        self._own_part = int(own_part)
        self._mmap = mmap
        self._boundaries = manifest.boundaries
        self._shards: List[Optional[CSRGraph]] = [None] * manifest.num_parts
        self._shard(self._own_part)  # eager + validated
        self._eager_parts: Tuple[int, ...] = tuple(
            k for k, s in enumerate(self._shards) if s is not None
        )

    # ------------------------------------------------------------------ #
    @property
    def manifest(self) -> PartitionManifest:
        return self._manifest

    @property
    def own_part(self) -> int:
        return self._own_part

    @property
    def num_vertices(self) -> int:
        return self._manifest.num_vertices

    @property
    def num_edges(self) -> int:
        return self._manifest.num_arcs // 2

    @property
    def source_path(self):
        return None

    def eager_parts(self) -> Tuple[int, ...]:
        """Partitions mapped at construction time (the rank's own shard)."""
        return self._eager_parts

    def loaded_parts(self) -> Tuple[int, ...]:
        """All partitions mapped so far (own + lazily touched siblings)."""
        return tuple(k for k, s in enumerate(self._shards) if s is not None)

    # ------------------------------------------------------------------ #
    def _shard(self, part: int) -> CSRGraph:
        shard = self._shards[part]
        if shard is None:
            info = self._manifest.shards[part]
            path = self._manifest.shard_path(part)
            if not path.exists():
                raise PartitionError(f"missing partition shard: {path}")
            try:
                header = read_header(path)
            except StoreFormatError as exc:
                raise PartitionError(f"corrupt partition shard {path}: {exc}") from None
            if _header_checksum(header) != info.checksum:
                raise PartitionError(
                    f"partition shard {path} fails its manifest checksum"
                )
            shard = open_rcsr(path, mmap=self._mmap)
            self._shards[part] = shard
        return shard

    def neighbors(self, v: int) -> np.ndarray:
        """Global-id adjacency of global vertex ``v`` (read-only slice)."""
        v = int(v)
        part = int(np.searchsorted(self._boundaries, v, side="right") - 1)
        return self._shard(part).neighbors(v - int(self._boundaries[part]))

    def degree(self, v: int) -> int:
        return int(self.neighbors(v).size)

    def native_sampler(self, options, kernel: Optional[str] = None) -> "ShardedPathSampler":
        """The sampler :func:`~repro.core.kadabra.make_sampler` routes to.

        The batched kernel backends need the full contiguous CSR arrays, so a
        forced ``kernel`` cannot be honoured on a sharded view; the sigma-BFS
        below is statistically identical (uniform shortest-path sampling).
        """
        del options, kernel  # sharded sampling has a single implementation
        return ShardedPathSampler(self)

    def __repr__(self) -> str:
        return (
            f"PartitionedGraphView(n={self.num_vertices}, m={self.num_edges}, "
            f"part={self._own_part}/{self._manifest.num_parts})"
        )


class ShardedPathSampler:
    """Uniform shortest-path sampler over a :class:`PartitionedGraphView`.

    Single-sided level-synchronous sigma-BFS from the source until the target
    is settled, followed by a sigma-weighted backward walk — the same uniform
    path distribution as the kernel backends (it mirrors the numba backend's
    algorithm), with every adjacency read going through the view so only the
    touched shard pages fault in.

    Implements the :class:`~repro.sampling.base.PathSampler` surface the
    drivers use (``sample``, ``sample_path``, ``sample_batch``, ``graph``).
    """

    def __init__(self, view: PartitionedGraphView) -> None:
        if view.num_vertices < 2:
            raise ValueError("ShardedPathSampler requires a graph with at least 2 vertices")
        self._view = view
        n = view.num_vertices
        self._dist = np.empty(n, dtype=np.int64)
        self._sigma = np.empty(n, dtype=np.float64)

    @property
    def graph(self) -> PartitionedGraphView:
        return self._view

    # ------------------------------------------------------------------ #
    def sample_path(self, source: int, target: int, rng: np.random.Generator):
        from repro.kernels.weighted import weighted_index
        from repro.sampling.base import PathSample

        view = self._view
        dist = self._dist
        sigma = self._sigma
        dist.fill(-1)
        sigma.fill(0.0)
        dist[source] = 0
        sigma[source] = 1.0
        frontier = np.asarray([source], dtype=np.int64)
        edges = 0
        level = 0
        while frontier.size > 0 and dist[target] < 0:
            level += 1
            next_frontier: List[np.ndarray] = []
            for u in frontier:
                nbrs = view.neighbors(int(u)).astype(np.int64, copy=False)
                edges += int(nbrs.size)
                if nbrs.size == 0:
                    continue
                fresh = nbrs[dist[nbrs] < 0]
                if fresh.size:
                    dist[fresh] = level
                    next_frontier.append(fresh)
                same = nbrs[dist[nbrs] == level]
                if same.size:
                    np.add.at(sigma, same, sigma[int(u)])
            frontier = (
                np.concatenate(next_frontier)
                if next_frontier
                else np.empty(0, dtype=np.int64)
            )
        if dist[target] < 0:
            return PathSample(
                source=source, target=target, connected=False, edges_touched=edges
            )
        length = int(dist[target])
        internal: List[int] = []
        current = int(target)
        for depth in range(length - 1, 0, -1):
            preds = view.neighbors(current).astype(np.int64, copy=False)
            preds = preds[dist[preds] == depth]
            weights = sigma[preds]
            current = int(preds[weighted_index(weights, float(weights.sum()), rng)])
            internal.append(current)
        internal.reverse()
        return PathSample(
            source=source,
            target=target,
            connected=True,
            length=length,
            internal_vertices=np.asarray(internal, dtype=np.int64),
            edges_touched=edges,
        )

    def sample(self, rng: np.random.Generator):
        from repro.sampling.base import sample_vertex_pair

        s, t = sample_vertex_pair(self._view.num_vertices, rng)
        return self.sample_path(s, t, rng)

    def sample_batch(self, batch_size: int, rng: np.random.Generator):
        """Loop of :meth:`sample` packed as a flat-array ``SampleBatch``.

        Same RNG consumption as ``batch_size`` scalar calls, mirroring the
        generic :meth:`~repro.sampling.base.PathSampler.sample_batch`.
        """
        from repro.kernels.batch import _BatchAccumulator

        k = int(batch_size)
        if k <= 0:
            raise ValueError("batch_size must be positive")
        sources = np.empty(k, dtype=np.int64)
        targets = np.empty(k, dtype=np.int64)
        out = _BatchAccumulator(k)
        for i in range(k):
            s = self.sample(rng)
            sources[i] = s.source
            targets[i] = s.target
            out.record(i, (s.connected, s.length, s.internal_vertices, s.edges_touched))
        return out.finish(sources, targets)
