"""Out-of-core edge-list → ``.rcsr`` conversion.

Ingests KONECT/SNAP-style edge lists (and METIS files) whose text form may be
far larger than RAM.  The text is parsed exactly once, by the vectorized
chunked front end :func:`repro.graph.io.iter_edge_chunks`; each chunk is
normalised (self-loops dropped, edges canonicalised to ``(min, max)``,
per-chunk dedup) and spilled to a compact binary scratch file.  The CSR build
then runs over the spill in the classic two passes — degree count, then fill —
followed by a blocked sort/dedup pass that removes duplicates *across* chunks,
so the result is bit-identical to an in-memory
:class:`~repro.graph.builder.GraphBuilder` build.

Peak memory is O(n) for the row pointers plus O(chunk); the edge data only
ever lives on disk (spill + scratch memmap + output), which is what lets
graphs with billions of edges be ingested on a workstation.
"""

from __future__ import annotations

import tempfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.io import DEFAULT_CHUNK_BYTES, iter_edge_chunks
from repro.store.format import (
    FORMAT_VERSION,
    HEADER_SIZE,
    RcsrHeader,
    _align_up,
    atomic_replace,
    pack_header,
    write_rcsr,
)

__all__ = ["ConversionReport", "convert_edge_list", "convert_metis", "convert_any"]

PathLike = Union[str, Path]

#: arcs held in memory at once during the fill and dedup passes.
_DEFAULT_BLOCK_ARCS = 8_000_000

_SPILL_RECORD = np.dtype([("lo", np.int64), ("hi", np.int64)])


@dataclass(frozen=True)
class ConversionReport:
    """What a conversion produced (returned by the converters, shown by the CLI)."""

    source: str
    dest: str
    num_vertices: int
    num_edges: int
    num_input_edges: int
    indices_dtype: str
    output_bytes: int
    zero_indexed: bool
    cache_hit: bool = False


def _indices_dtype_for(num_vertices: int) -> np.dtype:
    # Same convention as CSRGraph: 32-bit ids unless the graph needs int64.
    if num_vertices > 0 and num_vertices - 1 >= np.iinfo(np.uint32).max:
        return np.dtype(np.int64)
    return np.dtype(np.uint32)


def _iter_spill(spill: Path, block_pairs: int) -> Iterator[np.ndarray]:
    with open(spill, "rb") as handle:
        while True:
            chunk = np.fromfile(handle, dtype=_SPILL_RECORD, count=block_pairs)
            if chunk.size == 0:
                return
            yield chunk


def _scatter_fill(
    scratch: np.memmap, cursor: np.ndarray, heads: np.ndarray, tails: np.ndarray
) -> None:
    """Write ``tails`` into per-``head`` CSR segments, advancing ``cursor``."""
    order = np.argsort(heads, kind="stable")
    h = heads[order]
    t = tails[order]
    uniq, first, counts = np.unique(h, return_index=True, return_counts=True)
    within = np.arange(h.size, dtype=np.int64) - np.repeat(first, counts)
    positions = np.repeat(cursor[uniq], counts) + within
    scratch[positions] = t
    cursor[uniq] += counts


def convert_edge_list(
    source: PathLike,
    dest: PathLike,
    *,
    zero_indexed: Optional[bool] = None,
    num_vertices: Optional[int] = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    block_arcs: int = _DEFAULT_BLOCK_ARCS,
) -> ConversionReport:
    """Convert a whitespace edge list to an ``.rcsr`` container, out of core.

    Semantics match :func:`repro.graph.io.read_edge_list` exactly (index-base
    auto-detection, self-loop dropping, duplicate merging) — only the memory
    profile differs.
    """
    source = Path(source)
    dest = Path(dest)
    dest.parent.mkdir(parents=True, exist_ok=True)
    if block_arcs < 2:
        raise ValueError("block_arcs must be at least 2")

    with tempfile.TemporaryDirectory(dir=dest.parent, prefix=".rcsr-build-") as workdir:
        return _convert_edge_list_in(
            source,
            dest,
            Path(workdir),
            zero_indexed=zero_indexed,
            num_vertices=num_vertices,
            chunk_bytes=chunk_bytes,
            block_arcs=block_arcs,
        )


def _convert_edge_list_in(
    source: Path,
    dest: Path,
    workdir: Path,
    *,
    zero_indexed: Optional[bool],
    num_vertices: Optional[int],
    chunk_bytes: int,
    block_arcs: int,
) -> ConversionReport:
    # ---- Pass 1: parse text once; spill normalised pairs to binary. ------- #
    spill = workdir / "pairs.spill"
    min_id = None
    max_id = -1
    num_input_edges = 0
    spilled_pairs = 0
    with open(spill, "wb") as spill_handle:
        for chunk in iter_edge_chunks(source, chunk_bytes=chunk_bytes):
            num_input_edges += chunk.shape[0]
            chunk_min = int(chunk.min())
            chunk_max = int(chunk.max())
            min_id = chunk_min if min_id is None else min(min_id, chunk_min)
            max_id = max(max_id, chunk_max)
            u, v = chunk[:, 0], chunk[:, 1]
            loop_mask = u != v
            if not loop_mask.all():
                u, v = u[loop_mask], v[loop_mask]
            if u.size == 0:
                continue
            pairs = np.empty(u.size, dtype=_SPILL_RECORD)
            np.minimum(u, v, out=pairs["lo"])
            np.maximum(u, v, out=pairs["hi"])
            pairs = np.unique(pairs)  # per-chunk dedup (cross-chunk comes later)
            pairs.tofile(spill_handle)
            spilled_pairs += pairs.size

    # Index-base handling and vertex count, shared by the empty-edge path so
    # that e.g. a self-loops-only file still yields the read_edge_list vertex
    # count (self-loop ids contribute to n even though the edges are dropped).
    if min_id is None:  # no parsed edges at all
        zero_indexed = True if zero_indexed is None else zero_indexed
        shift = 0
        inferred_n = 0
    else:
        if zero_indexed is None:
            zero_indexed = min_id == 0
        shift = 0 if zero_indexed else 1
        if not zero_indexed and min_id < 1:
            raise ValueError("one-indexed edge list contains vertex id < 1")
        if min_id < 0:
            raise ValueError("vertex ids must be non-negative")
        inferred_n = max_id - shift + 1
    if num_vertices is not None:
        if inferred_n > num_vertices:
            raise ValueError(
                f"edge references vertex {inferred_n - 1} but num_vertices={num_vertices}"
            )
        n = num_vertices
    else:
        n = inferred_n

    if spilled_pairs == 0:
        write_rcsr(CSRGraph.empty(n), dest)
        return ConversionReport(
            source=str(source),
            dest=str(dest),
            num_vertices=n,
            num_edges=0,
            num_input_edges=num_input_edges,
            indices_dtype=str(_indices_dtype_for(n)),
            output_bytes=dest.stat().st_size,
            zero_indexed=zero_indexed,
        )

    # ---- Pass 2 (spill): count degrees, build provisional row pointers. --- #
    degrees = np.zeros(n, dtype=np.int64)
    for pairs in _iter_spill(spill, block_arcs // 2):
        degrees += np.bincount(pairs["lo"] - shift, minlength=n)
        degrees += np.bincount(pairs["hi"] - shift, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    num_arcs = int(indptr[-1])

    # ---- Pass 3 (spill): scatter-fill tails into a scratch memmap. -------- #
    scratch_path = workdir / "tails.scratch"
    scratch = np.memmap(scratch_path, mode="w+", dtype=np.int64, shape=(num_arcs,))
    cursor = indptr[:-1].copy()
    for pairs in _iter_spill(spill, block_arcs // 2):
        lo = pairs["lo"] - shift
        hi = pairs["hi"] - shift
        _scatter_fill(
            scratch, cursor, np.concatenate((lo, hi)), np.concatenate((hi, lo))
        )
    scratch.flush()

    # ---- Pass 4: blocked per-vertex sort + cross-chunk dedup, stream out. - #
    indices_dtype = _indices_dtype_for(n)
    indptr_offset = HEADER_SIZE
    indices_offset = _align_up(indptr_offset + (n + 1) * 8)
    final_degrees = np.zeros(n, dtype=np.int64)
    crc_indices = 0
    with atomic_replace(dest) as tmp:
        with open(tmp, "wb") as out:
            # Leave a hole for header + indptr (written after the dedup pass);
            # seeking instead of writing zeros avoids an O(n)-byte allocation.
            out.seek(indices_offset)
            v0 = 0
            while v0 < n:
                v1 = int(
                    np.searchsorted(indptr, indptr[v0] + max(block_arcs, 1), side="right") - 1
                )
                v1 = max(v0 + 1, min(v1, n))
                lo_arc, hi_arc = int(indptr[v0]), int(indptr[v1])
                tails = np.asarray(scratch[lo_arc:hi_arc])
                heads = np.repeat(
                    np.arange(v0, v1, dtype=np.int64), np.diff(indptr[v0 : v1 + 1])
                )
                order = np.lexsort((tails, heads))
                heads = heads[order]
                tails = tails[order]
                keep = np.ones(tails.size, dtype=bool)
                keep[1:] = (heads[1:] != heads[:-1]) | (tails[1:] != tails[:-1])
                heads = heads[keep]
                tails = tails[keep].astype(indices_dtype)
                final_degrees[v0:v1] = np.bincount(heads - v0, minlength=v1 - v0)
                crc_indices = zlib.crc32(memoryview(tails).cast("B"), crc_indices)
                tails.tofile(out)
                v0 = v1

            final_indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(final_degrees, out=final_indptr[1:])
            final_arcs = int(final_indptr[-1])
            crc_indptr = zlib.crc32(memoryview(final_indptr).cast("B")) & 0xFFFFFFFF
            header = RcsrHeader(
                version=FORMAT_VERSION,
                indptr_dtype=np.dtype(np.int64),
                indices_dtype=indices_dtype,
                num_vertices=n,
                num_arcs=final_arcs,
                indptr_offset=indptr_offset,
                indices_offset=indices_offset,
                file_size=indices_offset + final_arcs * indices_dtype.itemsize,
                crc_indptr=crc_indptr,
                crc_indices=crc_indices & 0xFFFFFFFF,
            )
            out.seek(0)
            out.write(pack_header(header))
            out.seek(indptr_offset)
            final_indptr.tofile(out)
        del scratch

    return ConversionReport(
        source=str(source),
        dest=str(dest),
        num_vertices=n,
        num_edges=final_arcs // 2,
        num_input_edges=num_input_edges,
        indices_dtype=str(indices_dtype),
        output_bytes=dest.stat().st_size,
        zero_indexed=zero_indexed,
    )


def convert_metis(source: PathLike, dest: PathLike) -> ConversionReport:
    """Convert a METIS adjacency file to ``.rcsr`` (in-memory; METIS files of
    out-of-core size are not a target of the paper's pipeline)."""
    from repro.graph.io import read_metis

    source = Path(source)
    dest = Path(dest)
    graph = read_metis(source)
    write_rcsr(graph, dest)
    return ConversionReport(
        source=str(source),
        dest=str(dest),
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        num_input_edges=graph.num_edges,
        indices_dtype=str(graph.indices.dtype),
        output_bytes=dest.stat().st_size,
        zero_indexed=True,
    )


def resolve_format(source: PathLike, fmt: str = "auto") -> str:
    """Resolve ``"auto"`` to the concrete input format by file suffix.

    Only the *final* suffix decides (after stripping ``.gz``): ``.metis`` and
    ``.graph`` are METIS, everything else — including ``web.graph.txt`` — is
    an edge list.
    """
    if fmt != "auto":
        if fmt not in ("edgelist", "metis"):
            raise ValueError(
                f"unknown input format {fmt!r} (expected 'edgelist', 'metis' or 'auto')"
            )
        return fmt
    name = Path(source).name.lower()
    if name.endswith(".gz"):
        name = name[:-3]
    return "metis" if name.endswith((".metis", ".graph")) else "edgelist"


def convert_any(
    source: PathLike, dest: PathLike, *, fmt: str = "auto", **kwargs
) -> ConversionReport:
    """Convert ``source`` to ``.rcsr``, sniffing the input format by suffix.

    ``fmt`` may be ``"edgelist"``, ``"metis"`` or ``"auto"`` (see
    :func:`resolve_format`).
    """
    source = Path(source)
    fmt = resolve_format(source, fmt)
    if fmt == "metis":
        semantic = {
            k for k, v in kwargs.items() if k in ("zero_indexed", "num_vertices") and v is not None
        }
        if semantic:
            raise ValueError(
                f"option(s) {sorted(semantic)} are not supported for METIS inputs"
            )
        # chunk_bytes/block_arcs are edge-list streaming knobs; the in-memory
        # METIS path has no use for them.
        return convert_metis(source, dest)
    return convert_edge_list(source, dest, **kwargs)
