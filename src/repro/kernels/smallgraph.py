"""Pure-Python bidirectional kernel for small graphs.

On graphs with a few hundred to a few thousand vertices, a path sample
touches so few edges that the cost of the numpy kernel is dominated by
per-call dispatch overhead (~1 µs per numpy operation, ~35 operations per
sample), not by the traversal itself.  Below
:data:`SMALL_GRAPH_VERTEX_LIMIT` the batch sampler therefore switches to this
kernel, which walks Python-list adjacency with generation-stamped list marks
— no numpy calls at all in the BFS inner loop.

Bit-compatibility with the legacy sampler is preserved exactly:

* integer mark state is exact; sigma values are Python floats, i.e. the same
  IEEE-754 doubles numpy uses, accumulated in the same order the vectorized
  ``np.add.at`` scatter processes them;
* every *weighted pick* still goes through numpy: the weight list is packed
  into an ndarray, summed with ``ndarray.sum()`` (numpy's pairwise summation
  — bitwise what the legacy code computed) and drawn with
  :func:`~repro.kernels.weighted.weighted_index`, consuming one
  ``rng.random()`` exactly like ``Generator.choice``;
* candidate sets are enumerated in the same sorted/CSR order.

The equivalence property tests drive this kernel and the numpy kernel against
the reference sampler on the same streams.
"""

from __future__ import annotations

import zlib
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import List, Tuple

import numpy as np

from repro.kernels.scratch import ScratchPool
from repro.kernels.weighted import weighted_index

__all__ = [
    "SMALL_GRAPH_VERTEX_LIMIT",
    "SMALL_GRAPH_ENTRY_LIMIT",
    "adjacency_lists",
    "adjacency_cache_stats",
    "bidirectional_sample_small",
]

#: Largest graph (vertices) the Python kernel is selected for.
SMALL_GRAPH_VERTEX_LIMIT = 20_000
#: Largest adjacency array (directed entries) the Python kernel is selected
#: for — bounds the one-time ``tolist`` materialisation.
SMALL_GRAPH_ENTRY_LIMIT = 1_000_000

# Memoised tolist adjacency, keyed by a content fingerprint of the CSR
# arrays.  Every BatchPathSampler construction over the same graph (repeated
# sessions, per-thread samplers, service workers) reuses one materialisation
# instead of paying the O(n + m) tolist again; the kernel only reads the
# lists, so sharing is safe.  Keyed by content (sizes + CRC32) rather than
# object identity because CSRGraph uses __slots__ and memmap-backed arrays
# are re-wrapped per sampler.
_ADJ_CACHE: "OrderedDict[tuple, Tuple[List[int], List[int]]]" = OrderedDict()
_ADJ_CACHE_LIMIT = 8
_ADJ_STATS = {"hits": 0, "misses": 0}


def adjacency_cache_stats() -> dict:
    """Hit/miss counts of the adjacency memo (a copy, for tests/metrics)."""
    return dict(_ADJ_STATS)


def adjacency_lists(indptr, indices) -> Tuple[List[int], List[int]]:
    """Python-list CSR arrays for the small-graph kernel, memoised.

    The returned lists are shared across callers and must be treated as
    read-only.
    """
    ip = np.ascontiguousarray(np.asarray(indptr))
    ix = np.ascontiguousarray(np.asarray(indices))
    key = (
        ip.size,
        ix.size,
        zlib.crc32(ip.tobytes()),
        zlib.crc32(ix.tobytes()),
    )
    cached = _ADJ_CACHE.get(key)
    if cached is not None:
        _ADJ_STATS["hits"] += 1
        _ADJ_CACHE.move_to_end(key)
        return cached
    _ADJ_STATS["misses"] += 1
    value = (ip.tolist(), ix.tolist())
    _ADJ_CACHE[key] = value
    while len(_ADJ_CACHE) > _ADJ_CACHE_LIMIT:
        _ADJ_CACHE.popitem(last=False)
    return value


def _weighted_pick(weights: List[float], rng: np.random.Generator) -> int:
    """Index drawn ~ weights; bit-compatible with the legacy ``rng.choice``.

    For fewer than 8 weights the cumulative distribution is built in pure
    Python: ``np.sum`` is a plain sequential accumulation below numpy's
    8-lane unroll threshold and ``np.cumsum`` is sequential at any size, so
    the Python floats match the ndarray computation bit for bit (pinned by
    the weighted-pick equivalence test).  Larger weight lists take the
    ndarray path.
    """
    k = len(weights)
    if k == 1:
        rng.random()  # rng.choice consumes one uniform draw even for k == 1
        return 0
    if k < 8:
        total = 0.0
        for w in weights:
            total += w
        cdf = []
        running = 0.0
        for w in weights:
            running += w / total
            cdf.append(running)
        last = cdf[-1]
        return min(bisect_right([c / last for c in cdf], rng.random()), k - 1)
    arr = np.asarray(weights, dtype=np.float64)
    return weighted_index(arr, float(arr.sum()), rng)


def _walk_to_root(
    indptr: List[int],
    indices: List[int],
    mark: List[int],
    sigma: List[float],
    base: int,
    start: int,
    rng: np.random.Generator,
) -> List[int]:
    """Sigma-weighted backward walk from ``start`` towards the side's root."""
    path: List[int] = []
    current = start
    depth = mark[current] - base
    while depth > 1:
        want = base + depth - 1
        preds = [w for w in indices[indptr[current] : indptr[current + 1]] if mark[w] == want]
        if not preds:  # pragma: no cover - defensive
            raise RuntimeError("inconsistent sigma values during backtracking")
        current = preds[_weighted_pick([sigma[w] for w in preds], rng)]
        path.append(current)
        depth -= 1
    return path


def bidirectional_sample_small(
    indptr: List[int],
    indices: List[int],
    pool: ScratchPool,
    source: int,
    target: int,
    rng: np.random.Generator,
) -> Tuple[bool, int, List[int], int]:
    """Sample one uniform shortest source-target path (Python-list graph).

    Same contract as :func:`~repro.kernels.bidirectional.bidirectional_sample`
    but over ``tolist``-materialised CSR arrays and the pool's Python-list
    scratch state.
    """
    base = pool.begin_sample()
    f_mark, b_mark, f_sigma, b_sigma = pool.python_state()

    s_start = indptr[source]
    s_stop = indptr[source + 1]
    row = indices[s_start:s_stop]
    pos = bisect_left(row, target)
    if pos < len(row) and row[pos] == target:
        return True, 1, [], s_stop - s_start

    f_mark[source] = base
    f_sigma[source] = 1.0
    b_mark[target] = base
    b_sigma[target] = 1.0
    # Side state: [mark, sigma, frontier, level, frontier_degree, levels].
    fwd = [f_mark, f_sigma, [source], 0, s_stop - s_start, [[source]]]
    bwd = [b_mark, b_sigma, [target], 0, indptr[target + 1] - indptr[target], [[target]]]
    edges_touched = 0
    best_length = -1

    while True:
        if 0 <= best_length <= fwd[3] + bwd[3] + 1:
            break
        if not fwd[2] or not bwd[2]:
            break
        side, other = (fwd, bwd) if fwd[4] <= bwd[4] else (bwd, fwd)
        mark, sigma, frontier, level = side[0], side[1], side[2], side[3]
        other_mark = other[0]
        new_level = level + 1
        new_mark = base + new_level
        fresh: List[int] = []
        touched = 0
        for u in frontier:
            su = sigma[u]
            for v in indices[indptr[u] : indptr[u + 1]]:
                touched += 1
                mv = mark[v]
                if mv < base:
                    mark[v] = new_mark
                    sigma[v] = su
                    fresh.append(v)
                elif mv == new_mark:
                    sigma[v] += su
        edges_touched += touched
        if touched == 0:
            side[2] = []
            continue
        fresh.sort()
        side[2] = fresh
        side[3] = new_level
        if not fresh:
            side[4] = 0
            continue
        side[5].append(fresh)

        # Vertex meets among the newly settled vertices and edge meets via
        # their adjacency rows (which also yields the next frontier degree);
        # both only feed a min, so one fused pass is equivalent.
        fresh_degree = 0
        for v in fresh:
            om = other_mark[v]
            if om >= base:
                candidate = new_level + om - base
                if best_length < 0 or candidate < best_length:
                    best_length = candidate
            for w in indices[indptr[v] : indptr[v + 1]]:
                fresh_degree += 1
                om = other_mark[w]
                if om >= base:
                    candidate = new_level + 1 + om - base
                    if best_length < 0 or candidate < best_length:
                        best_length = candidate
        side[4] = fresh_degree
        edges_touched += fresh_degree

    if best_length < 0:
        return False, 0, [], edges_touched

    length = best_length
    level_s, level_t = fwd[3], bwd[3]
    internal: List[int]
    if length <= level_s + level_t:
        # Vertex cut at a fixed split position k.
        k = min(level_s, length)
        if length - k > level_t:
            k = length - level_t
        settled = fwd[5][k] if k < len(fwd[5]) else []
        want = base + (length - k)
        candidates = [v for v in settled if b_mark[v] == want]
        if not candidates:  # pragma: no cover - defensive
            raise RuntimeError("bidirectional search found no cut vertices")
        weights = [f_sigma[v] * b_sigma[v] for v in candidates]
        cut_vertex = candidates[_weighted_pick(weights, rng)]
        prefix = _walk_to_root(indptr, indices, f_mark, f_sigma, base, cut_vertex, rng)
        suffix = _walk_to_root(indptr, indices, b_mark, b_sigma, base, cut_vertex, rng)
        internal = prefix[::-1]
        if cut_vertex != source and cut_vertex != target:
            internal.append(cut_vertex)
        internal.extend(suffix)
    else:
        # Edge cut between the deepest settled levels of the two sides.
        us = fwd[5][level_s] if level_s < len(fwd[5]) else []
        want = base + level_t
        cut_edges: List[Tuple[int, int]] = []
        cut_weights: List[float] = []
        for u in us:
            fu = f_sigma[u]
            for w in indices[indptr[u] : indptr[u + 1]]:
                if b_mark[w] == want:
                    cut_edges.append((u, w))
                    cut_weights.append(fu * b_sigma[w])
        if not cut_edges:  # pragma: no cover - defensive
            raise RuntimeError("bidirectional search found no cut edges")
        u, v = cut_edges[_weighted_pick(cut_weights, rng)]
        prefix = _walk_to_root(indptr, indices, f_mark, f_sigma, base, u, rng)
        suffix = _walk_to_root(indptr, indices, b_mark, b_sigma, base, v, rng)
        internal = prefix[::-1]
        if u != source and u != target:
            internal.append(u)
        if v != source and v != target:
            internal.append(v)
        internal.extend(suffix)

    internal = [x for x in internal if x != source and x != target]
    return True, length, internal, edges_touched
