"""Reusable per-worker search scratch: the zero-allocation core of the kernels.

The legacy samplers allocated four O(n) arrays (``distances``/``sigma`` per
search side) for *every* path sample, so on a 1M-vertex graph each of the
millions of samples paid ~32 MB of allocator traffic before touching a single
edge.  :class:`ScratchPool` removes that cost with two classic tricks:

* **Generation-stamped marks.**  Instead of refilling a distance array with
  ``-1`` between samples, every sample gets a fresh *generation* ``g`` and a
  vertex ``v`` is considered visited iff ``mark[v] >= g * span``.  The mark
  fuses the visited bit and the BFS level into one int64 read:
  ``mark[v] = g * span + dist(v)`` with ``span = n + 2`` (levels are < n + 1).
  Bumping an integer replaces an O(n) ``fill`` per sample; the arrays are
  re-zeroed only when the tag would overflow int64 — once every ~2^62/span
  samples, i.e. never in practice.
* **Buffer reuse.**  The mark and sigma arrays live as long as the pool, so
  steady-state sampling performs zero O(n) heap allocations per sample (the
  property the allocation-counting regression test pins down).

One pool serves one worker (thread) at a time — pools are cheap (6 arrays),
so drivers create one per sampling thread instead of sharing.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ScratchPool", "ScratchSlab", "gather_csr"]

#: Re-zero the mark arrays once ``generation * span`` approaches int64 range.
_RESET_LIMIT = np.int64(2) ** 62


class ScratchPool:
    """Reusable search buffers for one sampling worker.

    Attributes
    ----------
    mark_a, mark_b:
        Generation-stamped distance marks for the two search sides (the
        unidirectional kernels and Brandes use only side ``a``).
    sigma_a, sigma_b:
        Shortest-path counts per side; valid only for vertices whose mark
        carries the current generation.  Brandes reuses ``sigma_b`` as its
        dependency accumulator.
    """

    __slots__ = (
        "num_vertices",
        "span",
        "mark_a",
        "mark_b",
        "sigma_a",
        "sigma_b",
        "_py_state",
        "_generation",
        "generations_started",
    )

    def __init__(self, num_vertices: int) -> None:
        n = int(num_vertices)
        if n < 0:
            raise ValueError("num_vertices must be non-negative")
        self.num_vertices = n
        self.span = n + 2
        self.mark_a = np.zeros(n, dtype=np.int64)
        self.mark_b = np.zeros(n, dtype=np.int64)
        self.sigma_a = np.zeros(n, dtype=np.float64)
        self.sigma_b = np.zeros(n, dtype=np.float64)
        self._py_state = None
        self._generation = 0
        self.generations_started = 0

    def python_state(self):
        """Python-list mirror of the scratch state, for the small-graph kernel.

        Returns ``(mark_a, mark_b, sigma_a, sigma_b)`` as plain lists,
        created lazily on first use.  The lists share the pool's generation
        counter with the ndarray state: both representations only ever hold
        marks from past generations, so a pool may serve either kernel (the
        two views are never required to agree, only to stay below the current
        generation's base).
        """
        if self._py_state is None:
            n = self.num_vertices
            self._py_state = ([0] * n, [0] * n, [0.0] * n, [0.0] * n)
        return self._py_state

    @property
    def generation(self) -> int:
        """The current sample generation (0 before the first sample)."""
        return self._generation

    def begin_sample(self) -> int:
        """Start a new sample; returns its mark base ``generation * span``.

        A vertex is visited in the current sample iff its mark is ``>= base``;
        its BFS level is then ``mark[v] - base``.
        """
        gen = self._generation + 1
        if gen * self.span >= _RESET_LIMIT:  # pragma: no cover - ~2^62 samples
            self.mark_a.fill(0)
            self.mark_b.fill(0)
            if self._py_state is not None:
                n = self.num_vertices
                self._py_state[0][:] = [0] * n
                self._py_state[1][:] = [0] * n
            gen = 1
        self._generation = gen
        self.generations_started += 1
        return gen * self.span


class ScratchSlab:
    """Widened scratch: one mark/sigma slab serving ``lanes`` concurrent pairs.

    The multi-pair wavefront kernel advances the balanced bidirectional
    searches of up to ``lanes`` vertex pairs simultaneously.  Each pair (a
    *lane*) owns two rows of the slab — row ``lane`` for the forward side and
    row ``lanes + lane`` for the backward side — so a flat index
    ``row * num_vertices + vertex`` addresses any (pair, side, vertex) mark or
    sigma cell with one gather/scatter, which is what lets one numpy call per
    BFS level serve the whole batch.

    Generation stamping works exactly as in :class:`ScratchPool`, except the
    generation is bumped once per *round* (one ``begin_round`` covers every
    lane): a cell is visited in the current round iff its mark is
    ``>= base``, and its BFS level is ``mark - base``.
    """

    __slots__ = (
        "num_vertices",
        "lanes",
        "span",
        "mark",
        "sigma",
        "mark_flat",
        "sigma_flat",
        "_generation",
        "rounds_started",
    )

    def __init__(self, num_vertices: int, lanes: int) -> None:
        n = int(num_vertices)
        k = int(lanes)
        if n < 0:
            raise ValueError("num_vertices must be non-negative")
        if k <= 0:
            raise ValueError("lanes must be positive")
        self.num_vertices = n
        self.lanes = k
        self.span = n + 2
        self.mark = np.zeros((2 * k, n), dtype=np.int64)
        self.sigma = np.zeros((2 * k, n), dtype=np.float64)
        self.mark_flat = self.mark.reshape(-1)
        self.sigma_flat = self.sigma.reshape(-1)
        self._generation = 0
        self.rounds_started = 0

    @property
    def generation(self) -> int:
        return self._generation

    def begin_round(self) -> int:
        """Start a new multi-pair round; returns the shared mark base."""
        gen = self._generation + 1
        if gen * self.span >= _RESET_LIMIT:  # pragma: no cover - ~2^62 rounds
            self.mark_flat.fill(0)
            gen = 1
        self._generation = gen
        self.rounds_started += 1
        return gen * self.span


_EMPTY_IDX = np.empty(0, dtype=np.int64)


def gather_csr(indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray):
    """Concatenated adjacency rows of ``frontier``, in frontier order.

    Returns ``(neighbors, degs)`` where ``neighbors`` lists the CSR rows of
    the frontier vertices back to back (exactly the order the legacy
    per-vertex slice loop produced) and ``degs`` the row lengths.  Fully
    vectorized: no per-vertex Python iteration, and a plain slice view for
    the common single-vertex frontier.
    """
    if frontier.size == 1:
        v = int(frontier[0])
        start = int(indptr[v])
        stop = int(indptr[v + 1])
        return indices[start:stop], np.array([stop - start], dtype=np.int64)
    starts = indptr[frontier]
    degs = indptr[frontier + 1] - starts
    total = int(degs.sum())
    if total == 0:
        return indices[:0], degs
    # Global positions: for the j-th slot of vertex i the position is
    # starts[i] + (j - ends_before[i]) where ends_before is the exclusive
    # cumulative degree sum.
    ends = np.cumsum(degs)
    idx = np.arange(total, dtype=np.int64)
    idx += np.repeat(starts - (ends - degs), degs)
    return indices[idx], degs
