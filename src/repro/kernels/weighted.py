"""Weighted random picks, bit-compatible with ``Generator.choice``.

``numpy.random.Generator.choice(a, p=p)`` draws exactly one uniform variate
and selects via ``searchsorted`` on the normalised cumulative weights — but
wraps that in ~10 µs of input validation, which dominates the cost of the
short weighted picks the samplers make (choosing a path cut, choosing a
predecessor during backtracking).  :func:`weighted_index` replicates the
selection *bit for bit* (same cumulative-sum floats, same single
``rng.random()`` consumption, same tie behaviour) without the overhead, so
the pooled kernels stay on the exact RNG stream of the legacy samplers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["weighted_index"]


def weighted_index(weights: np.ndarray, total, rng: np.random.Generator) -> int:
    """Index into ``weights`` drawn proportionally to the (positive) weights.

    Equivalent to ``rng.choice(len(weights), p=weights / total)`` — including
    the exact floating-point normalisation ``Generator.choice`` performs — at
    a fraction of its cost.  ``total`` must be ``weights.sum()`` (passing it
    in avoids a second reduction; callers usually need the sum anyway).
    """
    cdf = np.cumsum(weights / total)
    cdf /= cdf[-1]
    idx = int(cdf.searchsorted(rng.random(), side="right"))
    if idx >= cdf.size:  # pragma: no cover - u < 1 and cdf[-1] == 1 exactly
        idx = cdf.size - 1
    return idx
