"""Pooled balanced bidirectional BFS sampling kernel.

The algorithm is KADABRA's balanced bidirectional sigma-BFS (see
:mod:`repro.sampling.bidirectional` for the full derivation of the canonical
vertex/edge cut decomposition).  This kernel is the zero-allocation
re-implementation on top of :class:`~repro.kernels.scratch.ScratchPool`:

* visited/distance state lives in generation-stamped marks instead of freshly
  allocated O(n) arrays;
* adjacency rows are gathered with the vectorized
  :func:`~repro.kernels.scratch.gather_csr` instead of a per-vertex Python
  slice loop, and the edge-meet gather of one level doubles as the expansion
  gather of the next (the legacy sampler walked those rows twice);
* a neighbour settles on the new level iff it was unvisited before the level
  was processed, so the sigma scatter reuses the freshness mask instead of
  re-reading the marks;
* weighted picks go through :func:`~repro.kernels.weighted.weighted_index`,
  which is bit-compatible with the ``Generator.choice`` calls of the legacy
  sampler.

Because every candidate set is enumerated in the same order and every random
draw consumes the generator identically, the kernel reproduces the legacy
sampler's output *exactly* for a fixed RNG state — the property the
batch/scalar equivalence tests pin down.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.kernels.scratch import ScratchPool, gather_csr
from repro.kernels.weighted import weighted_index

__all__ = ["bidirectional_sample"]


class _Side:
    """State of one directional search over pooled buffers."""

    __slots__ = (
        "mark",
        "sigma",
        "frontier",
        "level",
        "frontier_degree",
        "levels",
        "cached_neighbors",
        "cached_degs",
    )

    def __init__(self, mark, sigma, root: int, base: int, root_degree: int) -> None:
        self.mark = mark
        self.sigma = sigma
        mark[root] = base
        sigma[root] = 1.0
        self.frontier = np.array([root], dtype=np.int64)
        self.level = 0
        self.frontier_degree = int(root_degree)
        self.levels: List[np.ndarray] = [self.frontier]
        # Adjacency rows of ``frontier``, if already gathered by the edge-meet
        # check of the previous expansion of this side.
        self.cached_neighbors = None
        self.cached_degs = None


def _walk_to_root(
    indptr: np.ndarray,
    indices: np.ndarray,
    side: _Side,
    base: int,
    start: int,
    rng: np.random.Generator,
) -> List[int]:
    """Sigma-weighted backward walk from ``start`` towards the side's root."""
    mark = side.mark
    sigma = side.sigma
    path: List[int] = []
    current = int(start)
    depth = int(mark[current] - base)
    while depth > 1:
        nbrs = indices[indptr[current] : indptr[current + 1]]
        preds = nbrs[mark[nbrs] == base + depth - 1]
        weights = sigma[preds]
        total = float(weights.sum())
        if preds.size == 0 or total <= 0.0:  # pragma: no cover - defensive
            raise RuntimeError("inconsistent sigma values during backtracking")
        current = int(preds[weighted_index(weights, total, rng)])
        path.append(current)
        depth -= 1
    return path


def bidirectional_sample(
    indptr: np.ndarray,
    indices: np.ndarray,
    pool: ScratchPool,
    source: int,
    target: int,
    rng: np.random.Generator,
) -> Tuple[bool, int, List[int], int]:
    """Sample one uniform shortest source-target path.

    Returns ``(connected, length, internal_vertices, edges_touched)`` where
    ``internal_vertices`` lists the vertices strictly between the endpoints
    on the sampled path (the vertices whose betweenness counters are bumped).
    """
    base = pool.begin_sample()

    # Special case: adjacent endpoints (sorted adjacency rows, binary search).
    s_start = int(indptr[source])
    s_stop = int(indptr[source + 1])
    source_row = indices[s_start:s_stop]
    pos = int(np.searchsorted(source_row, target))
    if pos < source_row.size and int(source_row[pos]) == target:
        return True, 1, [], s_stop - s_start

    fwd = _Side(pool.mark_a, pool.sigma_a, source, base, s_stop - s_start)
    bwd = _Side(
        pool.mark_b, pool.sigma_b, target, base, int(indptr[target + 1] - indptr[target])
    )
    edges_touched = 0
    best_length = -1  # -1 encodes "no meet found yet"

    while True:
        # If a shortest length has been established and no shorter path can
        # still be discovered, stop expanding.
        if 0 <= best_length <= fwd.level + bwd.level + 1:
            break
        if fwd.frontier.size == 0 or bwd.frontier.size == 0:
            break
        # Balanced expansion: grow the cheaper side.
        side, other = (fwd, bwd) if fwd.frontier_degree <= bwd.frontier_degree else (bwd, fwd)
        new_level = side.level + 1
        frontier = side.frontier
        if side.cached_neighbors is not None:
            neighbors, degs = side.cached_neighbors, side.cached_degs
            side.cached_neighbors = None
            side.cached_degs = None
        else:
            neighbors, degs = gather_csr(indptr, indices, frontier)
        total = int(neighbors.size)
        edges_touched += total
        if total == 0:
            side.frontier = neighbors[:0]
            continue
        mark = side.mark
        sigma = side.sigma
        # A neighbour lies on the new level iff it was unvisited before this
        # level was processed, so the freshness mask doubles as the sigma
        # scatter mask.
        fresh_mask = mark[neighbors] < base
        fresh = np.unique(neighbors[fresh_mask])
        side.frontier = fresh
        side.level = new_level
        if fresh.size == 0:
            side.frontier_degree = 0
            continue
        mark[fresh] = base + new_level
        sigma[fresh] = 0.0
        origin_sigma = np.repeat(sigma[frontier], degs)
        np.add.at(sigma, neighbors[fresh_mask], origin_sigma[fresh_mask])
        side.levels.append(fresh)

        # Check for meets involving the newly settled vertices.
        other_marks = other.mark[fresh]
        met = other_marks >= base
        if met.any():
            candidate = new_level + int((other_marks[met] - base).min())
            if best_length < 0 or candidate < best_length:
                best_length = candidate
        # Edge meets: neighbours of fresh vertices settled on the other side.
        # The gathered rows are exactly the next expansion of this side, so
        # they are cached instead of being walked twice.
        fresh_neighbors, fresh_degs = gather_csr(indptr, indices, fresh)
        side.cached_neighbors = fresh_neighbors
        side.cached_degs = fresh_degs
        side.frontier_degree = int(fresh_neighbors.size)
        edges_touched += int(fresh_neighbors.size)
        reach_marks = other.mark[fresh_neighbors]
        crossing = reach_marks >= base
        if crossing.any():
            candidate = new_level + 1 + int((reach_marks[crossing] - base).min())
            if best_length < 0 or candidate < best_length:
                best_length = candidate

    if best_length < 0:
        return False, 0, [], edges_touched

    length = best_length
    level_s, level_t = fwd.level, bwd.level
    internal: List[int]
    if length <= level_s + level_t:
        # Vertex cut at a fixed split position k.
        k = min(level_s, length)
        if length - k > level_t:
            k = length - level_t
        settled = fwd.levels[k] if k < len(fwd.levels) else fwd.frontier[:0]
        candidates = settled[bwd.mark[settled] == base + (length - k)]
        weights = fwd.sigma[candidates] * bwd.sigma[candidates]
        total_weight = weights.sum()
        if candidates.size == 0 or float(total_weight) <= 0.0:  # pragma: no cover
            raise RuntimeError("bidirectional search found no cut vertices")
        cut_vertex = int(candidates[weighted_index(weights, float(total_weight), rng)])
        prefix = _walk_to_root(indptr, indices, fwd, base, cut_vertex, rng)
        suffix = _walk_to_root(indptr, indices, bwd, base, cut_vertex, rng)
        internal = prefix[::-1]
        if cut_vertex != source and cut_vertex != target:
            internal.append(cut_vertex)
        internal.extend(suffix)
    else:
        # Edge cut between the deepest settled levels of the two sides.
        us = fwd.levels[level_s] if level_s < len(fwd.levels) else fwd.frontier[:0]
        u_neighbors, u_degs = gather_csr(indptr, indices, us)
        cut_mask = bwd.mark[u_neighbors] == base + level_t
        if not cut_mask.any():  # pragma: no cover - defensive
            raise RuntimeError("bidirectional search found no cut edges")
        vs = u_neighbors[cut_mask]
        u_rep = np.repeat(np.asarray(us, dtype=np.int64), u_degs)[cut_mask]
        weights = fwd.sigma[u_rep] * bwd.sigma[vs]
        pick = weighted_index(weights, weights.sum(), rng)
        u = int(u_rep[pick])
        v = int(vs[pick])
        prefix = _walk_to_root(indptr, indices, fwd, base, u, rng)
        suffix = _walk_to_root(indptr, indices, bwd, base, v, rng)
        internal = prefix[::-1]
        if u != source and u != target:
            internal.append(u)
        if v != source and v != target:
            internal.append(v)
        internal.extend(suffix)

    internal = [x for x in internal if x != source and x != target]
    return True, length, internal, edges_touched
