"""Batch-oriented sampler API: draw K paths per call, return flat arrays.

The legacy samplers returned one freshly allocated :class:`PathSample` object
per call, which the drivers then fed one by one into
``StateFrame.record_sample``.  :class:`BatchPathSampler` amortises all of
that: one call draws ``k`` (s, t) pairs, runs the pooled kernel per pair, and
returns a :class:`SampleBatch` whose path contributions are two flat arrays
(vertex ids + CSR-style offsets) ready for a single ``np.add.at`` into an
epoch frame.

Pair drawing strategies
-----------------------
``interleaved`` (default)
    Each pair is drawn immediately before its search with the same two scalar
    draws the legacy ``sample_vertex_pair`` performed.  This keeps the RNG
    stream *identical* to the pre-batch code for any batch size, which is what
    lets the adaptive drivers switch to batching without changing a single
    betweenness estimate for a fixed seed.
``vectorized``
    All pairs of the batch are rejection-sampled up front with one bulk
    ``rng.integers`` call per round (:func:`repro.sampling.rng
    .draw_vertex_pairs`).  Statistically identical, faster, but a different
    stream — used by the non-adaptive RK driver where no legacy stream
    compatibility is required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.kernels import abi as _abi
from repro.kernels.scratch import ScratchPool
from repro.obs import metrics as _metrics

__all__ = ["SampleBatch", "BatchPathSampler"]

_METHODS = ("bidirectional", "unidirectional")

_PAIR_STRATEGIES = ("interleaved", "vectorized")

# Per-kernel sample counters (created lazily, one per kernel name ever used
# in this process); incremented on the batch path only when metrics are
# enabled, so the kernel inner loops stay untouched.
_KERNEL_COUNTERS: dict = {}


def _kernel_counter(name: str):
    counter = _KERNEL_COUNTERS.get(name)
    if counter is None:
        counter = _metrics.REGISTRY.counter(
            f"repro_kernel_{name}_samples_total",
            f"Samples drawn through the {name} kernel",
        )
        _KERNEL_COUNTERS[name] = counter
    return counter


@dataclass
class SampleBatch:
    """Flat-array outcome of sampling ``k`` vertex pairs.

    Attributes
    ----------
    sources, targets:
        The sampled pairs (length ``k``).
    connected:
        Whether a path exists, per sample.
    lengths:
        Hop length of the sampled shortest path (0 when disconnected).
    edges_touched:
        Adjacency entries scanned per sample (cost-model accounting).
    contrib_vertices:
        All internal path vertices of the batch, concatenated — the vertices
        whose betweenness counters are incremented, ready for ``np.add.at``.
    contrib_indptr:
        CSR-style offsets (length ``k + 1``): sample ``i`` contributed
        ``contrib_vertices[contrib_indptr[i]:contrib_indptr[i + 1]]``.
    """

    sources: np.ndarray
    targets: np.ndarray
    connected: np.ndarray
    lengths: np.ndarray
    edges_touched: np.ndarray
    contrib_vertices: np.ndarray
    contrib_indptr: np.ndarray

    @property
    def num_samples(self) -> int:
        return int(self.sources.size)

    @property
    def sample_ids(self) -> np.ndarray:
        """Sample index of every entry of ``contrib_vertices``."""
        return np.repeat(
            np.arange(self.num_samples, dtype=np.int64), np.diff(self.contrib_indptr)
        )

    @property
    def total_edges_touched(self) -> int:
        return int(self.edges_touched.sum())

    def contributions_of(self, i: int) -> np.ndarray:
        """Internal vertices of sample ``i`` (a view, no copy)."""
        return self.contrib_vertices[self.contrib_indptr[i] : self.contrib_indptr[i + 1]]

    def iter_samples(self) -> Iterator["PathSample"]:
        """Materialise per-sample :class:`PathSample` objects (compat shim)."""
        from repro.sampling.base import PathSample

        for i in range(self.num_samples):
            yield PathSample(
                source=int(self.sources[i]),
                target=int(self.targets[i]),
                connected=bool(self.connected[i]),
                length=int(self.lengths[i]),
                internal_vertices=self.contributions_of(i).copy(),
                edges_touched=int(self.edges_touched[i]),
            )


class _ContribRecorder:
    """Amortised growable int64 buffer for batch path contributions."""

    __slots__ = ("_buf", "_len")

    def __init__(self, capacity: int = 256) -> None:
        self._buf = np.empty(max(int(capacity), 16), dtype=np.int64)
        self._len = 0

    def extend(self, values: Sequence[int]) -> None:
        k = len(values)
        if k == 0:
            return
        needed = self._len + k
        if needed > self._buf.size:
            new = np.empty(max(needed, self._buf.size * 2), dtype=np.int64)
            new[: self._len] = self._buf[: self._len]
            self._buf = new
        self._buf[self._len : needed] = values
        self._len = needed

    @property
    def length(self) -> int:
        return self._len

    def finish(self) -> np.ndarray:
        return self._buf[: self._len].copy()


class BatchPathSampler:
    """Batch-oriented uniform shortest-path sampler over a fixed graph.

    Parameters
    ----------
    graph:
        The input :class:`~repro.graph.csr.CSRGraph`.  Memory-mapped CSR
        arrays are re-wrapped as plain ndarray views once, so the hot loops
        skip ``np.memmap``'s per-slice subclass overhead.
    method:
        ``"bidirectional"`` (KADABRA's default) or ``"unidirectional"``.
    pool:
        Optional :class:`ScratchPool` to reuse; one is created when omitted.
        A pool must not be shared between concurrently sampling workers.
    pair_strategy:
        ``"interleaved"`` or ``"vectorized"`` — see the module docstring.
    kernel:
        Explicit kernel name (see :mod:`repro.kernels.abi`), overriding both
        automatic routing and the ``REPRO_KERNEL`` environment variable.
        ``None`` (default) resolves through the ABI: the registered
        stream-compatible kernel whose suitability window matches the graph
        (the pure-Python kernel below the small-graph limits, the numpy
        per-pair kernel otherwise) — bit-identical to the pre-ABI routing.
        Forcing a batch-native kernel (``"wavefront"``) makes ``sample_batch``
        draw all pairs up front regardless of ``pair_strategy`` — the RNG
        stream is no longer legacy-compatible, only the distribution is.
    """

    def __init__(
        self,
        graph,
        *,
        method: str = "bidirectional",
        pool: Optional[ScratchPool] = None,
        pair_strategy: str = "interleaved",
        kernel: Optional[str] = None,
    ) -> None:
        if graph.num_vertices < 2:
            raise ValueError("BatchPathSampler requires a graph with at least 2 vertices")
        if method not in _METHODS:
            raise ValueError(f"unknown kernel method {method!r}; use one of {sorted(_METHODS)}")
        if pair_strategy not in _PAIR_STRATEGIES:
            raise ValueError(
                f"unknown pair strategy {pair_strategy!r}; use one of {_PAIR_STRATEGIES}"
            )
        if pool is not None and pool.num_vertices != graph.num_vertices:
            raise ValueError("scratch pool size does not match the graph")
        self._graph = graph
        # Plain ndarray views: identical memory, none of np.memmap's
        # __array_finalize__ cost on every slice in the kernel hot loop.
        self._indptr = np.asarray(graph.indptr)
        self._indices = np.asarray(graph.indices)
        self._method = method
        self._pool = pool if pool is not None else ScratchPool(graph.num_vertices)
        self._pair_strategy = pair_strategy
        spec = _abi.resolve_kernel(
            graph.num_vertices,
            self._indices.size,
            self._indices.dtype,
            family=method,
            requested=kernel,
        )
        self._spec = spec
        self._delegate = None
        self._kernel = None
        self._kernel_indptr = self._indptr
        self._kernel_indices = self._indices
        if spec.batch_native:
            self._delegate = spec.make_batch(graph)
        else:
            # Kernel operands come from the spec factory: ndarray CSR for the
            # numpy kernels, memoised tolist adjacency for the small-graph
            # kernel (where per-sample cost is numpy dispatch overhead
            # rather than traversal).
            self._kernel, self._kernel_indptr, self._kernel_indices = spec.make_per_pair(
                self._indptr, self._indices
            )

    # ------------------------------------------------------------------ #
    @property
    def graph(self):
        return self._graph

    @property
    def method(self) -> str:
        return self._method

    @property
    def kernel_name(self) -> str:
        """Name of the kernel this sampler resolved to (see the ABI)."""
        return self._spec.name

    @property
    def kernel_spec(self):
        """The resolved :class:`~repro.kernels.abi.KernelSpec`."""
        return self._spec

    @property
    def pool(self) -> ScratchPool:
        return self._pool

    @property
    def pair_strategy(self) -> str:
        return self._pair_strategy

    # ------------------------------------------------------------------ #
    def sample_batch(self, batch_size: int, rng: np.random.Generator) -> SampleBatch:
        """Draw ``batch_size`` uniform pairs and one shortest path per pair."""
        k = int(batch_size)
        if k <= 0:
            raise ValueError("batch_size must be positive")
        if self._delegate is not None:
            # Batch-native kernels draw all pairs up front by construction;
            # the interleaved (stream-compatible) strategy cannot apply.
            batch = self._delegate.sample_batch(k, rng)
            self._count_samples(k)
            return batch
        if self._pair_strategy == "vectorized":
            from repro.sampling.rng import draw_vertex_pairs

            pairs = draw_vertex_pairs(self._graph.num_vertices, k, rng)
            return self.sample_pairs(pairs[:, 0], pairs[:, 1], rng)
        return self._sample_interleaved(k, rng)

    def sample_pairs(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        rng: np.random.Generator,
    ) -> SampleBatch:
        """Sample one shortest path per given (source, target) pair."""
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape or sources.ndim != 1:
            raise ValueError("sources and targets must be 1-d arrays of equal length")
        n = self._graph.num_vertices
        if sources.size and (
            int(sources.min()) < 0
            or int(sources.max()) >= n
            or int(targets.min()) < 0
            or int(targets.max()) >= n
        ):
            raise ValueError("source/target out of range")
        if np.any(sources == targets):
            raise ValueError("source and target must be distinct")
        k = int(sources.size)
        if self._delegate is not None:
            batch = self._delegate.sample_pairs(sources, targets, rng)
            self._count_samples(k)
            return batch
        out = _BatchAccumulator(k)
        kernel = self._kernel
        indptr, indices, pool = self._kernel_indptr, self._kernel_indices, self._pool
        for i in range(k):
            result = kernel(indptr, indices, pool, int(sources[i]), int(targets[i]), rng)
            out.record(i, result)
        self._count_samples(k)
        return out.finish(sources, targets)

    def sample_path(self, source: int, target: int, rng: np.random.Generator):
        """Scalar compatibility shim: one pair, one :class:`PathSample`."""
        from repro.sampling.base import PathSample

        n = self._graph.num_vertices
        source = int(source)
        target = int(target)
        if not (0 <= source < n) or not (0 <= target < n):
            raise ValueError("source/target out of range")
        if source == target:
            raise ValueError("source and target must be distinct")
        if self._delegate is not None:
            sample = self._delegate.sample_path(source, target, rng)
            self._count_samples(1)
            return sample
        connected, length, internal, edges = self._kernel(
            self._kernel_indptr, self._kernel_indices, self._pool, source, target, rng
        )
        self._count_samples(1)
        return PathSample(
            source=source,
            target=target,
            connected=connected,
            length=length,
            internal_vertices=np.asarray(internal, dtype=np.int64),
            edges_touched=edges,
        )

    # ------------------------------------------------------------------ #
    def _count_samples(self, k: int) -> None:
        if _metrics.ENABLED:
            _kernel_counter(self._spec.name).inc(k)

    def _sample_interleaved(self, k: int, rng: np.random.Generator) -> SampleBatch:
        from repro.sampling.base import sample_vertex_pair

        n = self._graph.num_vertices
        sources = np.empty(k, dtype=np.int64)
        targets = np.empty(k, dtype=np.int64)
        out = _BatchAccumulator(k)
        kernel = self._kernel
        indptr, indices, pool = self._kernel_indptr, self._kernel_indices, self._pool
        for i in range(k):
            s, t = sample_vertex_pair(n, rng)
            sources[i] = s
            targets[i] = t
            out.record(i, kernel(indptr, indices, pool, s, t, rng))
        self._count_samples(k)
        return out.finish(sources, targets)


class _BatchAccumulator:
    """Collects per-sample kernel results into the flat batch arrays."""

    __slots__ = ("connected", "lengths", "edges", "indptr", "contribs")

    def __init__(self, k: int) -> None:
        self.connected = np.zeros(k, dtype=bool)
        self.lengths = np.zeros(k, dtype=np.int64)
        self.edges = np.zeros(k, dtype=np.int64)
        self.indptr = np.zeros(k + 1, dtype=np.int64)
        self.contribs = _ContribRecorder()

    def record(self, i: int, result) -> None:
        connected, length, internal, edges_touched = result
        self.connected[i] = connected
        self.lengths[i] = length
        self.edges[i] = edges_touched
        self.contribs.extend(internal)
        self.indptr[i + 1] = self.contribs.length

    def finish(self, sources: np.ndarray, targets: np.ndarray) -> SampleBatch:
        return SampleBatch(
            sources=sources,
            targets=targets,
            connected=self.connected,
            lengths=self.lengths,
            edges_touched=self.edges,
            contrib_vertices=self.contribs.finish(),
            contrib_indptr=self.indptr,
        )
