"""Adaptive batch-size planning for the sampling drivers.

Batching amortises Python-call overhead, but large batches delay the points
where a driver can react — evaluate the stopping condition, acknowledge an
epoch transition, or notice the termination flag.  The policy resolves that
tension the way Section IV-D of the paper sizes epochs: cheap decisions often
early, expensive bulk work once the run is clearly mid-epoch.

``plan_batches`` therefore ramps geometrically (32, 64, ..., 1024) towards a
cap and sizes the final batch exactly to the stopping-condition boundary, so

* right after a check the driver stays responsive (a stop decision that is
  about to fire wastes at most a small batch of samples),
* mid-epoch the per-sample overhead is amortised over up to
  ``MAX_AUTO_BATCH`` samples, and
* a block never overshoots the check boundary — the drivers take *exactly*
  as many samples per check as the scalar code did, which keeps fixed-seed
  runs bit-identical.

Worker threads of the epoch framework use the small constant
:data:`WORKER_BATCH`: they must poll ``check_transition`` frequently or epoch
transitions (and thus stopping-rule evaluations) stall behind bulk sampling.
"""

from __future__ import annotations

from typing import Iterator, Union

from repro.obs import metrics as _metrics

__all__ = [
    "AUTO_BATCH",
    "MIN_AUTO_BATCH",
    "MAX_AUTO_BATCH",
    "WORKER_BATCH",
    "resolve_batch_size",
    "plan_batches",
    "worker_batch_size",
    "kernel_batch_cap",
]

AUTO_BATCH = "auto"
#: First (smallest) batch of an ``auto`` ramp.
MIN_AUTO_BATCH = 32
#: Largest batch of an ``auto`` ramp.
MAX_AUTO_BATCH = 1024
#: Batch size of epoch-framework worker threads (kept small so transitions
#: are acknowledged promptly).
WORKER_BATCH = 16

BatchSize = Union[int, str]

# Hot-path instrumentation (gated on repro.obs.metrics.ENABLED): every driver
# funnels its sampling through plan_batches, so these two counters are the
# per-process samples/sec source of truth for /metrics without touching any
# kernel inner loop.
_BATCHES_TOTAL = _metrics.REGISTRY.counter(
    "repro_kernel_batches_total", "Sampling batches planned by the batch policy"
)
_SAMPLES_TOTAL = _metrics.REGISTRY.counter(
    "repro_kernel_samples_total", "Samples scheduled through plan_batches"
)


def resolve_batch_size(batch_size: BatchSize) -> BatchSize:
    """Validate a ``batch_size`` knob: ``"auto"`` or a positive int."""
    if batch_size == AUTO_BATCH or batch_size is None:
        return AUTO_BATCH
    if isinstance(batch_size, bool) or not isinstance(batch_size, int):
        raise ValueError(f"batch_size must be 'auto' or a positive int, got {batch_size!r}")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    return batch_size


def plan_batches(
    total: int,
    batch_size: BatchSize = AUTO_BATCH,
    *,
    start: int = MIN_AUTO_BATCH,
    cap: int = MAX_AUTO_BATCH,
) -> Iterator[int]:
    """Yield batch sizes summing to exactly ``total``.

    With ``batch_size="auto"`` the sizes ramp geometrically from ``start`` to
    ``cap``; an explicit int yields fixed-size chunks.  ``total <= 0`` yields
    nothing.
    """
    if total <= 0:
        return
    batch_size = resolve_batch_size(batch_size)
    size = start if batch_size == AUTO_BATCH else batch_size
    remaining = int(total)
    while remaining > 0:
        take = min(size, remaining)
        if _metrics.ENABLED:
            _BATCHES_TOTAL.inc()
            _SAMPLES_TOTAL.inc(take)
        yield take
        remaining -= take
        if batch_size == AUTO_BATCH and size < cap:
            size = min(size * 2, cap)


def kernel_batch_cap(spec=None) -> int:
    """The ``auto`` ramp cap suited to a kernel spec.

    Per-pair kernels keep the default :data:`MAX_AUTO_BATCH` — their cost is
    linear in the batch, so a larger cap only delays stopping-condition
    checks.  Batch-native kernels (``spec.batch_native``) amortise per-level
    numpy dispatch across the whole batch and prefer whole-slab batches, so
    the cap grows to the spec's ``preferred_batch`` hint.  ``None`` (no spec
    resolved yet) keeps the default, which leaves every existing driver's
    batch plan — and therefore its fixed-seed sample stream — unchanged.
    """
    if spec is not None and getattr(spec, "batch_native", False):
        preferred = getattr(spec, "preferred_batch", None)
        if preferred:
            return max(MAX_AUTO_BATCH, int(preferred))
    return MAX_AUTO_BATCH


def worker_batch_size(batch_size: BatchSize) -> int:
    """Batch size for epoch-framework worker threads."""
    batch_size = resolve_batch_size(batch_size)
    if batch_size == AUTO_BATCH:
        return WORKER_BATCH
    return min(int(batch_size), WORKER_BATCH)
