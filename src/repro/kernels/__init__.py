"""Batch-oriented sampling kernels: the zero-allocation inner loop.

The paper's speedup story rests on per-sample cost being dominated by graph
traversal, not by language overhead.  This package provides the pieces that
make that true for the Python reproduction:

* :class:`ScratchPool` — per-worker reusable search buffers with
  generation-stamped visited marks (no O(n) allocation or clearing between
  samples);
* :func:`bidirectional_sample` / :func:`unidirectional_sample` — pooled path
  sampling kernels, bit-compatible with the legacy scalar samplers for a
  fixed RNG state;
* :class:`BatchPathSampler` / :class:`SampleBatch` — draw K pairs per call
  and return flat contribution arrays for single-``np.add.at`` accumulation
  into epoch frames;
* :mod:`~repro.kernels.policy` — adaptive batch sizing (small batches near
  stopping-condition checks, large batches mid-epoch).
"""

from repro.kernels.batch import BatchPathSampler, SampleBatch
from repro.kernels.bidirectional import bidirectional_sample
from repro.kernels.policy import (
    AUTO_BATCH,
    MAX_AUTO_BATCH,
    MIN_AUTO_BATCH,
    WORKER_BATCH,
    plan_batches,
    resolve_batch_size,
    worker_batch_size,
)
from repro.kernels.scratch import ScratchPool, gather_csr
from repro.kernels.unidirectional import unidirectional_sample
from repro.kernels.weighted import weighted_index

__all__ = [
    "AUTO_BATCH",
    "BatchPathSampler",
    "MAX_AUTO_BATCH",
    "MIN_AUTO_BATCH",
    "SampleBatch",
    "ScratchPool",
    "WORKER_BATCH",
    "bidirectional_sample",
    "gather_csr",
    "plan_batches",
    "resolve_batch_size",
    "unidirectional_sample",
    "weighted_index",
    "worker_batch_size",
]
