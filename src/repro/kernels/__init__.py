"""Batch-oriented sampling kernels: the zero-allocation inner loop.

The paper's speedup story rests on per-sample cost being dominated by graph
traversal, not by language overhead.  This package provides the pieces that
make that true for the Python reproduction:

* :class:`ScratchPool` — per-worker reusable search buffers with
  generation-stamped visited marks (no O(n) allocation or clearing between
  samples); :class:`ScratchSlab` widens the same idea to K concurrent pairs;
* :func:`bidirectional_sample` / :func:`unidirectional_sample` — pooled path
  sampling kernels, bit-compatible with the legacy scalar samplers for a
  fixed RNG state;
* :class:`WavefrontSampler` — the cross-sample vectorized wavefront kernel:
  K pairs' balanced-bidirectional searches advanced simultaneously in SoA
  form (statistically identical, different RNG stream);
* :mod:`~repro.kernels.abi` — the kernel ABI: a capability-probed
  :class:`~repro.kernels.abi.KernelSpec` registry with deterministic routing
  from graph size/dtype, a ``REPRO_KERNEL`` override, and graceful
  degradation when an optional backend's probe fails;
* :class:`BatchPathSampler` / :class:`SampleBatch` — draw K pairs per call
  and return flat contribution arrays for single-``np.add.at`` accumulation
  into epoch frames;
* :mod:`~repro.kernels.policy` — adaptive batch sizing (small batches near
  stopping-condition checks, large batches mid-epoch).
"""

from repro.kernels.abi import (
    REPRO_KERNEL_ENV,
    KernelSpec,
    KernelUnavailableError,
    describe_routing,
    format_kernel_table,
    get_kernel,
    kernel_available,
    kernel_names,
    list_kernels,
    register_kernel,
    resolve_kernel,
)
from repro.kernels.batch import BatchPathSampler, SampleBatch
from repro.kernels.bidirectional import bidirectional_sample
from repro.kernels.policy import (
    AUTO_BATCH,
    MAX_AUTO_BATCH,
    MIN_AUTO_BATCH,
    WORKER_BATCH,
    kernel_batch_cap,
    plan_batches,
    resolve_batch_size,
    worker_batch_size,
)
from repro.kernels.scratch import ScratchPool, ScratchSlab, gather_csr
from repro.kernels.unidirectional import unidirectional_sample
from repro.kernels.wavefront import WavefrontSampler
from repro.kernels.weighted import weighted_index

__all__ = [
    "AUTO_BATCH",
    "BatchPathSampler",
    "KernelSpec",
    "KernelUnavailableError",
    "MAX_AUTO_BATCH",
    "MIN_AUTO_BATCH",
    "REPRO_KERNEL_ENV",
    "SampleBatch",
    "ScratchPool",
    "ScratchSlab",
    "WORKER_BATCH",
    "WavefrontSampler",
    "bidirectional_sample",
    "describe_routing",
    "format_kernel_table",
    "gather_csr",
    "get_kernel",
    "kernel_available",
    "kernel_batch_cap",
    "kernel_names",
    "list_kernels",
    "plan_batches",
    "register_kernel",
    "resolve_batch_size",
    "resolve_kernel",
    "unidirectional_sample",
    "weighted_index",
    "worker_batch_size",
]
