"""Optional numba-accelerated kernel, registered behind an availability probe.

This module demonstrates the accelerated-backend path of the kernel ABI: it
registers a :class:`~repro.kernels.abi.KernelSpec` whose probe try-imports
``numba`` and JIT-compiles a trivial function.  In environments without numba
the probe fails, the spec shows ``available: no`` in ``--list-kernels``, and
routing silently skips it — requesting it explicitly raises
:class:`~repro.kernels.abi.KernelUnavailableError` with a clear message.

The kernel itself is a single-sided sigma-BFS whose level expansion runs as
one nopython-compiled loop over the CSR arrays (no numpy dispatch per
frontier), followed by the usual sigma-weighted backward walk in Python so
the RNG consumption stays in numpy.  It is *experimental*: statistically
identical to the portable kernels (uniform shortest-path sampling) but not
stream-compatible, so like the wavefront kernel it is never picked by
automatic routing.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.kernels.abi import KernelSpec, register_kernel

__all__ = ["probe_numba", "numba_sample"]

_STATE: dict = {"bfs": None}


def probe_numba() -> bool:
    """True when numba imports and can compile a trivial kernel."""
    try:
        import numba
    except Exception:
        return False
    try:
        @numba.njit(cache=False)
        def _smoke(x: int) -> int:
            return x + 1

        return _smoke(1) == 2
    except Exception:
        return False


def _compiled_bfs():
    """Build (once) the jitted level-synchronous sigma-BFS."""
    if _STATE["bfs"] is None:
        import numba

        @numba.njit(cache=False)
        def _bfs(indptr, indices, source, target, dist, sigma):
            n = dist.shape[0]
            for v in range(n):
                dist[v] = -1
                sigma[v] = 0.0
            dist[source] = 0
            sigma[source] = 1.0
            frontier = np.empty(n, dtype=np.int64)
            frontier[0] = source
            size = 1
            level = 0
            edges = 0
            while size > 0 and dist[target] < 0:
                level += 1
                nxt = np.empty(n, dtype=np.int64)
                nsize = 0
                for i in range(size):
                    u = frontier[i]
                    for p in range(indptr[u], indptr[u + 1]):
                        w = indices[p]
                        edges += 1
                        if dist[w] < 0:
                            dist[w] = level
                            sigma[w] = 0.0
                            nxt[nsize] = w
                            nsize += 1
                        if dist[w] == level:
                            sigma[w] += sigma[u]
                frontier = nxt
                size = nsize
            return edges

        _STATE["bfs"] = _bfs
    return _STATE["bfs"]


def numba_sample(
    indptr: np.ndarray,
    indices: np.ndarray,
    pool,
    source: int,
    target: int,
    rng: np.random.Generator,
) -> Tuple[bool, int, List[int], int]:
    """Per-pair kernel contract over the jitted BFS (experimental)."""
    from repro.kernels.weighted import weighted_index

    n = int(indptr.shape[0] - 1)
    dist = np.empty(n, dtype=np.int64)
    sigma = np.empty(n, dtype=np.float64)
    edges = int(_compiled_bfs()(indptr, indices, source, target, dist, sigma))
    if dist[target] < 0:
        return False, 0, [], edges
    length = int(dist[target])
    internal: List[int] = []
    current = target
    for depth in range(length - 1, 0, -1):
        preds = indices[indptr[current] : indptr[current + 1]]
        preds = preds[dist[preds] == depth]
        weights = sigma[preds]
        current = int(preds[weighted_index(weights, float(weights.sum()), rng)])
        internal.append(current)
    internal.reverse()
    return True, length, internal, edges


def _make_numba(indptr: np.ndarray, indices: np.ndarray):
    return numba_sample, np.asarray(indptr), np.asarray(indices)


register_kernel(
    KernelSpec(
        name="numba",
        description="numba-jitted single-sided sigma-BFS (experimental)",
        family="bidirectional",
        stream_compatible=False,
        cost_hint="jit-bfs",
        auto_rank=90,
        probe=probe_numba,
        make_per_pair=_make_numba,
    )
)
