"""Kernel ABI: capability-probed kernel registry and deterministic routing.

Before this module, kernel choice was a hardcoded ``_KERNELS`` dict plus
ad-hoc small-graph thresholds buried in ``kernels/batch.py``.  The ABI
formalises that layer: every sampling kernel is one :class:`KernelSpec` in a
process-global registry, carrying

* **capabilities** — whether the kernel is batch-native (advances all pairs
  of a batch at once), RNG-stream compatible with the legacy scalar
  samplers, weighted/directed-ready;
* an **availability probe** — run once per process and cached, so an
  optional accelerated backend whose import or self-test fails (no numba in
  the environment, say) degrades gracefully to the portable kernels instead
  of erroring at sample time;
* **cost hints** — a coarse cost-model tag plus a suitability window over
  (graph size, adjacency entries, index dtype) that drives automatic
  routing, and an ``auto_rank`` tie-break.

Routing precedence (:func:`resolve_kernel`):

1. an **explicit request** (``Resources(kernel=...)``, the CLI ``--kernel``
   flag, or ``BatchPathSampler(kernel=...)``) always wins; an unknown name
   raises :class:`ValueError`, an unavailable kernel raises
   :class:`KernelUnavailableError`;
2. the ``REPRO_KERNEL`` environment variable; an unknown or unavailable
   value *warns* and falls through to automatic routing (an env var must
   never hard-fail a batch job);
3. **automatic routing**: among available kernels of the requested family
   whose suitability window matches the graph, the lowest ``auto_rank``
   wins.  Only stream-compatible kernels participate, which keeps every
   default code path bit-identical to the pre-ABI behaviour for a fixed
   seed (the golden-digest tests pin this down); the batch-native wavefront
   kernel — statistically identical but a different stream — is selected by
   explicit request or ``REPRO_KERNEL`` only.

See ``docs/kernels.md`` for the full design sketch.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "REPRO_KERNEL_ENV",
    "KernelSpec",
    "KernelUnavailableError",
    "register_kernel",
    "unregister_kernel",
    "get_kernel",
    "kernel_names",
    "list_kernels",
    "kernel_available",
    "clear_probe_cache",
    "resolve_kernel",
    "describe_routing",
    "format_kernel_table",
]

#: Environment variable overriding automatic kernel routing.
REPRO_KERNEL_ENV = "REPRO_KERNEL"


class KernelUnavailableError(RuntimeError):
    """An explicitly requested kernel failed its availability probe."""


def _always(num_vertices: int, num_entries: int, dtype) -> bool:
    return True


def _probe_ok() -> bool:
    return True


@dataclass(frozen=True)
class KernelSpec:
    """Registry entry: one sampling kernel plus capability metadata.

    Attributes
    ----------
    name:
        Registry key; also the CLI ``--kernel`` choice and the valid values
        of ``REPRO_KERNEL``.
    description:
        One line for ``--list-kernels`` and the docs table.
    family:
        ``"bidirectional"`` or ``"unidirectional"`` — which search algorithm
        the kernel implements.  Automatic routing only considers kernels of
        the family selected by the driver's ``method``; explicit overrides
        may cross families (both families sample uniform shortest paths, so
        the estimator stays correct — only cost accounting and the RNG
        stream change).
    batch_native:
        True when the kernel advances all pairs of a batch simultaneously
        (SoA wavefront) instead of being called once per pair.
    stream_compatible:
        True when the kernel consumes the RNG bit-identically to the legacy
        scalar samplers.  Automatic routing requires this; kernels without
        it are opt-in only.
    weighted / directed_ready:
        Capability bits for future graph models (no registered kernel
        supports either yet — the bits exist so accelerated backends can
        declare them without an ABI change).
    cost_hint:
        Coarse cost-model tag (``"python-bfs"``, ``"numpy-bfs"``,
        ``"vectorized-wavefront"``, ...).
    auto_rank:
        Tie-break for automatic routing: lowest wins among suitable kernels.
    preferred_batch:
        Batch-size hint for :func:`repro.kernels.policy.kernel_batch_cap`:
        batch-native kernels amortise best at whole-slab batches.
    probe:
        Availability check, run once per process and cached; exceptions
        count as unavailable (graceful degradation).
    suited:
        ``suited(num_vertices, num_entries, dtype) -> bool`` — the automatic
        routing window.  Explicit requests bypass it.
    make_per_pair:
        ``make_per_pair(indptr, indices) -> (kernel_fn, op_indptr,
        op_indices)`` for per-pair kernels: returns the callable with the
        operand representation it wants (ndarray CSR, Python lists, ...).
    make_batch:
        ``make_batch(graph) -> sampler`` for batch-native kernels: returns
        an object with the ``sample_batch`` / ``sample_pairs`` /
        ``sample_path`` surface of :class:`~repro.kernels.batch
        .BatchPathSampler`.
    """

    name: str
    description: str = ""
    family: str = "bidirectional"
    batch_native: bool = False
    stream_compatible: bool = True
    weighted: bool = False
    directed_ready: bool = False
    cost_hint: str = "numpy-bfs"
    auto_rank: int = 100
    preferred_batch: Optional[int] = None
    probe: Callable[[], bool] = field(repr=False, default=_probe_ok)
    suited: Callable[[int, int, object], bool] = field(repr=False, default=_always)
    make_per_pair: Optional[Callable] = field(repr=False, default=None)
    make_batch: Optional[Callable] = field(repr=False, default=None)

    def __post_init__(self) -> None:
        if self.family not in ("bidirectional", "unidirectional"):
            raise ValueError(f"unknown kernel family {self.family!r}")
        if (self.make_per_pair is None) == (self.make_batch is None):
            raise ValueError(
                "a kernel spec must define exactly one of make_per_pair / make_batch"
            )


_REGISTRY: Dict[str, KernelSpec] = {}
_PROBE_CACHE: Dict[str, bool] = {}


def register_kernel(spec: KernelSpec, *, replace: bool = False) -> KernelSpec:
    """Register a kernel spec; duplicate names require ``replace=True``."""
    if not spec.name or not isinstance(spec.name, str):
        raise ValueError("kernel name must be a non-empty string")
    if spec.name == "auto":
        raise ValueError("'auto' is reserved for automatic routing")
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"kernel {spec.name!r} is already registered (pass replace=True)")
    _REGISTRY[spec.name] = spec
    _PROBE_CACHE.pop(spec.name, None)
    return spec


def unregister_kernel(name: str) -> None:
    """Remove a kernel (mostly useful for tests of the registry itself)."""
    _REGISTRY.pop(name, None)
    _PROBE_CACHE.pop(name, None)


def get_kernel(name: str) -> KernelSpec:
    """Look up a kernel by name, with a helpful error for unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(kernel_names()) or "<none>"
        raise ValueError(f"unknown kernel {name!r}; registered kernels: {known}") from None


def kernel_names() -> Tuple[str, ...]:
    """Registered kernel names in registration order."""
    return tuple(_REGISTRY)


def list_kernels() -> Tuple[KernelSpec, ...]:
    """All registered kernel specs in registration order."""
    return tuple(_REGISTRY.values())


def kernel_available(name_or_spec) -> bool:
    """Whether a kernel's availability probe passes (run once, cached)."""
    spec = get_kernel(name_or_spec) if isinstance(name_or_spec, str) else name_or_spec
    cached = _PROBE_CACHE.get(spec.name)
    if cached is None:
        try:
            cached = bool(spec.probe())
        except Exception:  # degrade gracefully: a broken probe = unavailable
            cached = False
        _PROBE_CACHE[spec.name] = cached
    return cached


def clear_probe_cache() -> None:
    """Forget cached probe results (tests that stub probes call this)."""
    _PROBE_CACHE.clear()


def resolve_kernel(
    num_vertices: int,
    num_entries: int,
    dtype=None,
    *,
    family: str = "bidirectional",
    requested: Optional[str] = None,
    env: Optional[str] = "<unset>",
) -> KernelSpec:
    """Resolve which kernel a sampler should use (see the module docstring).

    ``env`` defaults to reading ``REPRO_KERNEL`` from the process
    environment; pass ``None`` to disable the env lookup explicitly (the
    routing-prediction report uses this to show both answers).
    """
    if requested is not None:
        spec = get_kernel(requested)
        if not kernel_available(spec):
            raise KernelUnavailableError(
                f"kernel {requested!r} was requested explicitly but its "
                f"availability probe failed"
            )
        return spec
    if env == "<unset>":
        env = os.environ.get(REPRO_KERNEL_ENV)
    if env:
        spec = _REGISTRY.get(env)
        if spec is None:
            warnings.warn(
                f"{REPRO_KERNEL_ENV}={env!r} is not a registered kernel "
                f"(known: {', '.join(kernel_names())}); using automatic routing",
                RuntimeWarning,
                stacklevel=2,
            )
        elif not kernel_available(spec):
            warnings.warn(
                f"{REPRO_KERNEL_ENV}={env!r} failed its availability probe; "
                f"using automatic routing",
                RuntimeWarning,
                stacklevel=2,
            )
        else:
            return spec
    candidates = [
        s
        for s in _REGISTRY.values()
        if s.family == family
        and s.stream_compatible
        and kernel_available(s)
        and s.suited(int(num_vertices), int(num_entries), dtype)
    ]
    if not candidates:
        raise KernelUnavailableError(
            f"no available kernel of family {family!r} suits a graph of "
            f"{num_vertices} vertices / {num_entries} adjacency entries"
        )
    return min(candidates, key=lambda s: (s.auto_rank, s.name))


def describe_routing(num_vertices: int, num_entries: int, dtype=None) -> Dict[str, Optional[str]]:
    """What routing would pick for a graph — for ``repro.cli info``.

    Returns ``{"auto": ..., "env": ..., "effective": ...}`` where ``auto``
    is the pure size/dtype-based choice, ``env`` the current
    ``REPRO_KERNEL`` value (or None) and ``effective`` what a sampler
    constructed right now would actually use.
    """
    auto = resolve_kernel(num_vertices, num_entries, dtype, env=None).name
    env = os.environ.get(REPRO_KERNEL_ENV) or None
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        effective = resolve_kernel(num_vertices, num_entries, dtype).name
    return {"auto": auto, "env": env, "effective": effective}


def format_kernel_table() -> str:
    """A plain-text capability table of all registered kernels."""
    headers = (
        "name",
        "family",
        "kind",
        "stream",
        "weighted",
        "directed",
        "available",
        "cost model",
        "description",
    )
    rows = [
        (
            spec.name,
            spec.family,
            "batch" if spec.batch_native else "per-pair",
            "yes" if spec.stream_compatible else "no",
            "yes" if spec.weighted else "no",
            "yes" if spec.directed_ready else "no",
            "yes" if kernel_available(spec) else "no",
            spec.cost_hint,
            spec.description,
        )
        for spec in list_kernels()
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# Default registrations
# --------------------------------------------------------------------------- #

def _make_smallgraph(indptr: np.ndarray, indices: np.ndarray):
    from repro.kernels.smallgraph import adjacency_lists, bidirectional_sample_small

    list_indptr, list_indices = adjacency_lists(indptr, indices)
    return bidirectional_sample_small, list_indptr, list_indices


def _make_bidirectional(indptr: np.ndarray, indices: np.ndarray):
    from repro.kernels.bidirectional import bidirectional_sample

    return bidirectional_sample, indptr, indices


def _make_unidirectional(indptr: np.ndarray, indices: np.ndarray):
    from repro.kernels.unidirectional import unidirectional_sample

    return unidirectional_sample, indptr, indices


def _smallgraph_window(num_vertices: int, num_entries: int, dtype) -> bool:
    from repro.kernels.smallgraph import (
        SMALL_GRAPH_ENTRY_LIMIT,
        SMALL_GRAPH_VERTEX_LIMIT,
    )

    return num_vertices <= SMALL_GRAPH_VERTEX_LIMIT and num_entries <= SMALL_GRAPH_ENTRY_LIMIT


def _make_wavefront(graph):
    from repro.kernels.wavefront import WavefrontSampler

    return WavefrontSampler(graph)


def _register_default_kernels() -> None:
    register_kernel(
        KernelSpec(
            name="smallgraph",
            description="pure-Python bidirectional BFS over list adjacency",
            family="bidirectional",
            stream_compatible=True,
            cost_hint="python-bfs",
            auto_rank=10,
            suited=_smallgraph_window,
            make_per_pair=_make_smallgraph,
        )
    )
    register_kernel(
        KernelSpec(
            name="bidirectional",
            description="pooled numpy balanced bidirectional sigma-BFS",
            family="bidirectional",
            stream_compatible=True,
            cost_hint="numpy-bfs",
            auto_rank=20,
            make_per_pair=_make_bidirectional,
        )
    )
    register_kernel(
        KernelSpec(
            name="unidirectional",
            description="pooled numpy truncated single-sided sigma-BFS",
            family="unidirectional",
            stream_compatible=True,
            cost_hint="numpy-bfs",
            auto_rank=20,
            make_per_pair=_make_unidirectional,
        )
    )
    register_kernel(
        KernelSpec(
            name="wavefront",
            description="cross-sample SoA wavefront (K pairs per numpy call)",
            family="bidirectional",
            batch_native=True,
            stream_compatible=False,
            cost_hint="vectorized-wavefront",
            auto_rank=50,
            preferred_batch=2048,
            make_batch=_make_wavefront,
        )
    )


_register_default_kernels()

# Optional accelerated backends register themselves the same way; their
# probes gate availability (no numba in the environment -> the spec is
# registered but unavailable, and routing never picks it).
from repro.kernels import numba_backend as _numba_backend  # noqa: E402,F401
