"""Cross-sample vectorized wavefront kernel: K balanced-bidirectional
searches advanced simultaneously.

The per-pair kernels (:mod:`repro.kernels.bidirectional`) already amortise
allocation, but every BFS *level* of every *pair* still pays a fixed number of
numpy dispatches (~1 µs each) on frontier arrays that are often tiny.  This
kernel removes that last per-pair overhead by advancing the frontiers of up to
``lanes`` pairs at once in structure-of-arrays form:

* mark/sigma state for all pairs lives in one :class:`~repro.kernels.scratch.
  ScratchSlab` — row ``lane`` holds the forward side, row ``lanes + lane`` the
  backward side, and ``row * n + vertex`` flat-indexes any cell, so one
  gather/scatter serves the whole batch;
* each round, every active lane expands its cheaper side (the same balanced
  rule as the per-pair kernel); lanes expanding the same side are processed
  together with one ``np.repeat``/gather/``np.add.at`` sequence over their
  *concatenated* frontiers;
* vertex/edge meets are reduced per lane with ``np.minimum.at``, and the
  edge-meet gather of one level is cached as the expansion gather of the
  next, exactly like the per-pair kernel;
* finished pairs are *retired from the active set* each round and their
  sigma-weighted backward walks run lock-step across all retirees (one
  segmented weighted pick per walk step for the whole group).

The expansion schedule (side choices, levels, meets, termination) is a
deterministic function of the graph and the pair, so ``connected``, ``length``
and ``edges_touched`` are *identical* to the per-pair bidirectional kernel;
only the random picks consume the generator differently (bulk draws instead
of scalar draws).  The sampled path is still a uniformly random shortest
path — the estimator is statistically identical, which the distributional
tests against :mod:`repro.sampling._reference` pin down — but the RNG stream
differs from the interleaved per-pair kernels, so routing only selects this
kernel when stream compatibility is not required (vectorized pair strategy or
an explicit override; see :mod:`repro.kernels.abi`).
"""

from __future__ import annotations

import os
from typing import List, Optional

import numpy as np

from repro.kernels.scratch import ScratchSlab, gather_csr

__all__ = ["WavefrontSampler", "DEFAULT_SLAB_BUDGET_BYTES", "resolve_lanes"]

#: Combined mark+sigma slab budget used to size the lane count (bytes).
DEFAULT_SLAB_BUDGET_BYTES = 128 << 20

#: Hard lane-count bounds (the lower bound keeps degenerate graphs working,
#: the upper bound keeps per-round Python bookkeeping negligible).
MIN_LANES = 1
MAX_LANES = 1024

_BIG = np.int64(2**62)

_LANES_ENV = "REPRO_WAVEFRONT_LANES"


def resolve_lanes(num_vertices: int, requested: Optional[int] = None) -> int:
    """Number of concurrent search lanes for a graph of ``num_vertices``.

    Defaults to filling :data:`DEFAULT_SLAB_BUDGET_BYTES` (2 rows per lane of
    int64 marks + float64 sigmas = ``32 * n`` bytes per lane), clamped to
    ``[MIN_LANES, MAX_LANES]``.  ``requested`` (or the ``REPRO_WAVEFRONT_LANES``
    environment variable) overrides the budget-derived count but is still
    clamped.
    """
    if requested is None:
        env = os.environ.get(_LANES_ENV, "").strip()
        if env:
            try:
                requested = int(env)
            except ValueError:
                raise ValueError(f"invalid {_LANES_ENV}={env!r}: not an integer") from None
    if requested is not None:
        return max(MIN_LANES, min(int(requested), MAX_LANES))
    per_lane = 32 * max(int(num_vertices), 1)
    return max(MIN_LANES, min(DEFAULT_SLAB_BUDGET_BYTES // per_lane, MAX_LANES))


def _slice_parts(arr: np.ndarray, counts: np.ndarray) -> List[np.ndarray]:
    """Split ``arr`` into consecutive views of the given lengths.

    Equivalent to ``np.split(arr, np.cumsum(counts)[:-1])`` but without
    ``array_split``'s per-part overhead — these splits run once per BFS level
    per side, over up to ``lanes`` parts.
    """
    offs = np.empty(counts.size + 1, dtype=np.int64)
    offs[0] = 0
    np.cumsum(counts, out=offs[1:])
    return [arr[offs[j] : offs[j + 1]] for j in range(counts.size)]


def _segmented_pick(
    w: np.ndarray,
    seg_ord: np.ndarray,
    num_segments: int,
    rng: np.random.Generator,
    err: str,
) -> np.ndarray:
    """One weighted pick per segment, sharing a single uniform draw batch.

    ``seg_ord`` assigns every entry of ``w`` a non-decreasing segment ordinal
    in ``[0, num_segments)``.  Returns the picked *global* entry index per
    segment, chosen with probability proportional to ``w`` within the
    segment.  Zero-weight entries are dropped up front, so they can never be
    selected (not even through floating-point boundary ties); a segment whose
    weights are all zero raises ``RuntimeError(err)``.
    """
    keep = np.flatnonzero(w > 0.0)
    w = w[keep]
    seg_ord = seg_ord[keep]
    counts = np.bincount(seg_ord, minlength=num_segments)
    if not counts.all():
        raise RuntimeError(err)
    ends = np.cumsum(counts)
    cw = np.cumsum(w)
    tot_end = cw[ends - 1]
    offsets = np.empty_like(tot_end)
    offsets[0] = 0.0
    offsets[1:] = tot_end[:-1]
    target = offsets + rng.random(num_segments) * (tot_end - offsets)
    pick = np.searchsorted(cw, target, side="right")
    pick = np.minimum(np.maximum(pick, ends - counts), ends - 1)
    return keep[pick]


class WavefrontSampler:
    """Batch-native uniform shortest-path sampler (multi-pair wavefront).

    Duck-type compatible with the batch surface of
    :class:`~repro.kernels.BatchPathSampler`: ``sample_pairs`` takes arrays of
    sources/targets and returns the same flat-array ``SampleBatch``.  Batches
    larger than the lane count are processed in contiguous chunks.
    """

    def __init__(self, graph, *, lanes: Optional[int] = None, slab: Optional[ScratchSlab] = None) -> None:
        if graph.num_vertices < 2:
            raise ValueError("WavefrontSampler requires a graph with at least 2 vertices")
        self._graph = graph
        self._indptr = np.asarray(graph.indptr).astype(np.int64, copy=False)
        self._indices = np.asarray(graph.indices)
        self._n = int(graph.num_vertices)
        if slab is not None:
            if slab.num_vertices != self._n:
                raise ValueError("scratch slab size does not match the graph")
            self._slab = slab
        else:
            self._slab = ScratchSlab(self._n, resolve_lanes(self._n, lanes))

    # ------------------------------------------------------------------ #
    @property
    def graph(self):
        return self._graph

    @property
    def lanes(self) -> int:
        return self._slab.lanes

    @property
    def slab(self) -> ScratchSlab:
        return self._slab

    # ------------------------------------------------------------------ #
    def sample_batch(self, batch_size: int, rng: np.random.Generator):
        """Draw ``batch_size`` uniform distinct pairs (bulk draws) and sample
        one shortest path per pair."""
        k = int(batch_size)
        if k <= 0:
            raise ValueError("batch_size must be positive")
        from repro.sampling.rng import draw_vertex_pairs

        pairs = draw_vertex_pairs(self._n, k, rng)
        return self.sample_pairs(pairs[:, 0], pairs[:, 1], rng)

    def sample_pairs(self, sources, targets, rng: np.random.Generator):
        """Sample one uniform shortest path per (source, target) pair."""
        from repro.kernels.batch import _BatchAccumulator

        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape or sources.ndim != 1:
            raise ValueError("sources and targets must be 1-d arrays of equal length")
        n = self._n
        if sources.size and (
            int(sources.min()) < 0
            or int(sources.max()) >= n
            or int(targets.min()) < 0
            or int(targets.max()) >= n
        ):
            raise ValueError("source/target out of range")
        if np.any(sources == targets):
            raise ValueError("source and target must be distinct")
        k = int(sources.size)
        out = _BatchAccumulator(k)
        lanes = self._slab.lanes
        for lo in range(0, k, lanes):
            hi = min(lo + lanes, k)
            results = self._run_chunk(sources[lo:hi], targets[lo:hi], rng)
            for i, result in enumerate(results):
                out.record(lo + i, result)
        return out.finish(sources, targets)

    def sample_path(self, source: int, target: int, rng: np.random.Generator):
        """Scalar compatibility shim: one pair, one :class:`PathSample`."""
        from repro.sampling.base import PathSample

        batch = self.sample_pairs(
            np.asarray([source], dtype=np.int64), np.asarray([target], dtype=np.int64), rng
        )
        return PathSample(
            source=int(source),
            target=int(target),
            connected=bool(batch.connected[0]),
            length=int(batch.lengths[0]),
            internal_vertices=batch.contributions_of(0).copy(),
            edges_touched=int(batch.edges_touched[0]),
        )

    # ------------------------------------------------------------------ #
    def _run_chunk(self, src: np.ndarray, dst: np.ndarray, rng: np.random.Generator):
        """Advance one chunk of K <= lanes pairs to completion.

        Returns a list of ``(connected, length, internal_vertices, edges)``
        tuples in lane order, the same contract as the per-pair kernels.
        """
        indptr, indices, n = self._indptr, self._indices, self._n
        slab = self._slab
        KL = slab.lanes
        base = slab.begin_round()
        mark = slab.mark_flat
        sigma = slab.sigma_flat
        K = int(src.size)

        lanes64 = np.arange(K, dtype=np.int64)
        # Forward rows are [0, KL), backward rows are [KL, 2*KL).
        rows_f = lanes64
        rows_b = lanes64 + KL
        mark[rows_f * n + src] = base
        sigma[rows_f * n + src] = 1.0
        mark[rows_b * n + dst] = base
        sigma[rows_b * n + dst] = 1.0

        deg = [np.empty(K, dtype=np.int64), np.empty(K, dtype=np.int64)]
        deg[0][:] = indptr[src + 1] - indptr[src]
        deg[1][:] = indptr[dst + 1] - indptr[dst]
        lvl = [np.zeros(K, dtype=np.int64), np.zeros(K, dtype=np.int64)]
        best = np.full(K, -1, dtype=np.int64)
        edges = np.zeros(K, dtype=np.int64)
        fsize = [np.ones(K, dtype=np.int64), np.ones(K, dtype=np.int64)]

        fronts = [
            [src[i : i + 1] for i in range(K)],
            [dst[i : i + 1] for i in range(K)],
        ]
        levels: List[List[List[np.ndarray]]] = [
            [[src[i : i + 1]] for i in range(K)],
            [[dst[i : i + 1]] for i in range(K)],
        ]
        cached: List[List[Optional[tuple]]] = [[None] * K, [None] * K]

        results: List[Optional[tuple]] = [None] * K

        # Adjacent endpoints: resolved up front with one bulk gather, like the
        # per-pair kernel's sorted-row binary search (same edges accounting:
        # only the adjacent case charges the source-row scan).
        adj_nbrs, adj_degs = gather_csr(indptr, indices, src)
        if adj_nbrs.size:
            seg = lanes64.repeat(adj_degs)
            hits = np.bincount(seg, weights=(adj_nbrs == dst[seg]), minlength=K) > 0
        else:
            hits = np.zeros(K, dtype=bool)
        for lane in np.flatnonzero(hits):
            results[lane] = (True, 1, [], int(deg[0][lane]))

        # Seed both sides' expansion caches with the root adjacency rows (two
        # bulk gathers for the whole chunk instead of two single-vertex
        # gathers per lane; the forward rows were gathered above anyway).
        bwd_nbrs, bwd_degs = gather_csr(indptr, indices, dst)
        offs_f = np.empty(K + 1, dtype=np.int64)
        offs_f[0] = 0
        np.cumsum(adj_degs, out=offs_f[1:])
        offs_b = np.empty(K + 1, dtype=np.int64)
        offs_b[0] = 0
        np.cumsum(bwd_degs, out=offs_b[1:])
        for lane in range(K):
            cached[0][lane] = (adj_nbrs[offs_f[lane] : offs_f[lane + 1]], adj_degs[lane : lane + 1])
            cached[1][lane] = (bwd_nbrs[offs_b[lane] : offs_b[lane + 1]], bwd_degs[lane : lane + 1])

        active = np.flatnonzero(~hits).astype(np.int64)

        while active.size:
            # Retirement sweep (top of loop, like the per-pair kernel): a lane
            # stops once no shorter path can still be discovered, or once a
            # side exhausted its frontier.
            b = best[active]
            bound = (b >= 0) & (b <= lvl[0][active] + lvl[1][active] + 1)
            empty = (fsize[0][active] == 0) | (fsize[1][active] == 0)
            retiring = active[bound | empty]
            if retiring.size:
                self._finalize(retiring, src, dst, best, lvl, levels, edges, base, results, rng)
                active = active[~(bound | empty)]
                if not active.size:
                    break
            # Balanced expansion: each lane grows its cheaper side; lanes
            # expanding the same side are vectorized together.
            expand_fwd = deg[0][active] <= deg[1][active]
            for side in (0, 1):
                group = active[expand_fwd] if side == 0 else active[~expand_fwd]
                if group.size:
                    self._expand(
                        group, side, base, lvl, deg, fsize, fronts, levels, cached, edges, best
                    )

        return results

    # ------------------------------------------------------------------ #
    def _expand(self, group, side, base, lvl, deg, fsize, fronts, levels, cached, edges, best):
        """Advance one BFS level for every lane of ``group`` on ``side``."""
        indptr, indices, n = self._indptr, self._indices, self._n
        slab = self._slab
        KL = slab.lanes
        mark = slab.mark_flat
        sigma = slab.sigma_flat
        row_off = 0 if side == 0 else KL
        other_off = KL if side == 0 else 0

        front_list = fronts[side]
        cache_list = cached[side]
        # Every lane's expansion rows were gathered by the edge-meet pass of
        # its previous expansion (the chunk setup seeds the root rows), so
        # assembling the concatenated expansion is pure slicing.
        nbr_parts: List[np.ndarray] = []
        deg_parts: List[np.ndarray] = []
        totals = np.empty(group.size, dtype=np.int64)
        for j, lane in enumerate(group):
            nb, dg = cache_list[lane]
            nbr_parts.append(nb)
            deg_parts.append(dg)
            totals[j] = nb.size
        edges[group] += totals

        nz = totals > 0
        group_nz = group[nz]
        for lane in group[~nz]:
            # Dead end: empty frontier, no level advance (mirrors the
            # per-pair ``total == 0 -> continue`` branch).
            front_list[lane] = front_list[lane][:0]
            fsize[side][lane] = 0
        if not group_nz.size:
            return

        nbrs = np.concatenate([p for p in nbr_parts if p.size])
        degs = np.concatenate([d for j, d in enumerate(deg_parts) if totals[j]])
        front_concat = np.concatenate([front_list[lane] for lane in group_nz])
        front_sizes = np.asarray([front_list[lane].size for lane in group_nz], dtype=np.int64)
        # Per-lane flat row bases: one small multiply, then only adds on the
        # big concatenated arrays.
        rowbase = (group_nz + row_off) * n
        other_shift = (other_off - row_off) * n

        lvl[side][group_nz] += 1
        # Per-lane new level, addressable by lane id for the scatter below.
        lvl_map = np.zeros(KL, dtype=np.int64)
        lvl_map[group_nz] = lvl[side][group_nz]

        flat_nb = rowbase.repeat(totals[nz]) + nbrs
        fresh_mask = mark[flat_nb] < base
        fresh_flat = np.unique(flat_nb[fresh_mask])
        fresh_rows = fresh_flat // n
        fresh_lane = fresh_rows - row_off
        fresh_v = fresh_flat - fresh_rows * n

        # New frontiers: fresh_flat is sorted, hence lane-major with vertices
        # ascending inside each lane — the same order the per-pair kernel's
        # np.unique produced.
        counts = np.bincount(fresh_lane, minlength=KL)
        splits = _slice_parts(fresh_v, counts[group_nz])
        for j, lane in enumerate(group_nz):
            front_list[lane] = splits[j]
            fsize[side][lane] = splits[j].size

        if not fresh_flat.size:
            deg[side][group_nz] = 0
            return

        # Settle marks and accumulate sigma; a neighbour lies on the new level
        # iff it was unvisited before the level was processed, so the
        # freshness mask doubles as the sigma scatter mask (the accumulation
        # itself runs as a bincount over positions in the sorted fresh set,
        # which is much faster than a buffered ``np.add.at``).
        mark[fresh_flat] = base + lvl_map[fresh_lane]
        origin_sigma = sigma[rowbase.repeat(front_sizes) + front_concat]
        contrib = origin_sigma.repeat(degs)[fresh_mask]
        pos = np.searchsorted(fresh_flat, flat_nb[fresh_mask])
        sigma[fresh_flat] = np.bincount(pos, weights=contrib, minlength=fresh_flat.size)
        for j, lane in enumerate(group_nz):
            if splits[j].size:
                levels[side][lane].append(splits[j])

        # Vertex meets among the newly settled vertices (the other side's row
        # of the same (lane, vertex) cell is a fixed flat offset away).
        om = mark[fresh_flat + other_shift]
        met = om >= base
        if met.any():
            cand = lvl_map[fresh_lane[met]] + (om[met] - base)
            buf = np.full(KL, _BIG, dtype=np.int64)
            np.minimum.at(buf, fresh_lane[met], cand)
            self._update_best(best, buf, group_nz)

        # Edge meets via the fresh vertices' adjacency rows; the gather is
        # cached as the next expansion of this side (walked once, counted
        # twice — the per-pair kernel's cost-model accounting).
        starts = indptr[fresh_v]
        fdegs = indptr[fresh_v + 1] - starts
        ftotal = int(fdegs.sum())
        lane_totals = np.bincount(fresh_lane, weights=fdegs, minlength=KL).astype(np.int64)
        deg[side][group_nz] = lane_totals[group_nz]
        edges[group_nz] += lane_totals[group_nz]
        if ftotal:
            ends = np.cumsum(fdegs)
            idx = np.arange(ftotal, dtype=np.int64)
            idx += (starts - (ends - fdegs)).repeat(fdegs)
            fnbrs = indices[idx]
            other_base = fresh_flat - fresh_v + other_shift
            reach = mark[other_base.repeat(fdegs) + fnbrs]
            crossing = reach >= base
            if crossing.any():
                fn_lane = fresh_lane.repeat(fdegs)
                cand = lvl_map[fn_lane[crossing]] + 1 + (reach[crossing] - base)
                buf = np.full(KL, _BIG, dtype=np.int64)
                np.minimum.at(buf, fn_lane[crossing], cand)
                self._update_best(best, buf, group_nz)
        else:
            fnbrs = indices[:0]
        nbr_splits = _slice_parts(fnbrs, lane_totals[group_nz])
        deg_splits = _slice_parts(fdegs, counts[group_nz])
        for j, lane in enumerate(group_nz):
            cache_list[lane] = (nbr_splits[j], deg_splits[j])

    @staticmethod
    def _update_best(best, buf, group):
        found = buf[group]
        has = found < _BIG
        cur = best[group]
        merged = np.where(
            has, np.where(cur < 0, found, np.minimum(cur, found)), cur
        )
        best[group] = merged

    # ------------------------------------------------------------------ #
    def _finalize(self, retiring, src, dst, best, lvl, levels, edges, base, results, rng):
        """Choose cuts for the retiring lanes and run their walks lock-step.

        Disconnected lanes are recorded immediately.  The connected lanes
        split into a vertex-cut and an edge-cut group; each group's weighted
        cut choice runs as *one* segmented pick over the lanes' concatenated
        candidate sets, and all backward walks then advance together.
        """
        indptr, indices, n = self._indptr, self._indices, self._n
        slab = self._slab
        KL = slab.lanes
        mark = slab.mark_flat
        sigma = slab.sigma_flat

        # Per connected lane: (lane, length, k or ls, lt, candidate array).
        v_cut = []
        e_cut = []
        for lane in retiring:
            lane = int(lane)
            length = int(best[lane])
            if length < 0:
                results[lane] = (False, 0, [], int(edges[lane]))
                continue
            ls = int(lvl[0][lane])
            lt = int(lvl[1][lane])
            lane_levels = levels[0][lane]
            if length <= ls + lt:
                # Vertex cut at a fixed split position k.
                k = min(ls, length)
                if length - k > lt:
                    k = length - lt
                settled = lane_levels[k] if k < len(lane_levels) else lane_levels[0][:0]
                if settled.size == 0:  # pragma: no cover - defensive
                    raise RuntimeError("wavefront search found no cut vertices")
                v_cut.append((lane, length, k, settled))
            else:
                # Edge cut between the deepest settled levels of the two sides.
                us = lane_levels[ls] if ls < len(lane_levels) else lane_levels[0][:0]
                if us.size == 0:  # pragma: no cover - defensive
                    raise RuntimeError("wavefront search found no cut edges")
                e_cut.append((lane, length, ls, lt, us))

        walk_rows: List[int] = []
        walk_starts: List[int] = []
        plans = []

        def plan(lane, length, fwd_start, fwd_depth, bwd_start, bwd_depth, mids):
            fwd_item = bwd_item = None
            if fwd_depth > 1:
                fwd_item = len(walk_rows)
                walk_rows.append(lane)
                walk_starts.append(fwd_start)
            if bwd_depth > 1:
                bwd_item = len(walk_rows)
                walk_rows.append(lane + KL)
                walk_starts.append(bwd_start)
            plans.append((lane, length, mids, fwd_item, bwd_item))

        if v_cut:
            lanes_a = np.asarray([p[0] for p in v_cut], dtype=np.int64)
            sizes = np.asarray([p[3].size for p in v_cut], dtype=np.int64)
            cands = np.concatenate([p[3] for p in v_cut]) if len(v_cut) > 1 else v_cut[0][3]
            flat_f = (lanes_a * n).repeat(sizes) + cands
            flat_b = flat_f + KL * n
            # The cut must sit at backward level (length - k); everything else
            # in the settled set weighs zero.
            want = np.asarray([base + (p[1] - p[2]) for p in v_cut], dtype=np.int64)
            w = sigma[flat_f] * sigma[flat_b] * (mark[flat_b] == want.repeat(sizes))
            ord_per = np.arange(lanes_a.size, dtype=np.int64).repeat(sizes)
            pick = _segmented_pick(
                w, ord_per, lanes_a.size, rng, "wavefront search found no cut vertices"
            )
            cuts = cands[pick]
            for j, (lane, length, k, _settled) in enumerate(v_cut):
                cut = int(cuts[j])
                s = int(src[lane])
                t = int(dst[lane])
                mids = [cut] if cut != s and cut != t else []
                plan(lane, length, cut, k, cut, length - k, mids)

        if e_cut:
            lanes_a = np.asarray([p[0] for p in e_cut], dtype=np.int64)
            sizes = np.asarray([p[4].size for p in e_cut], dtype=np.int64)
            us_concat = np.concatenate([p[4] for p in e_cut]) if len(e_cut) > 1 else e_cut[0][4]
            starts_r = indptr[us_concat]
            u_degs = indptr[us_concat + 1] - starts_r
            total = int(u_degs.sum())
            rends = np.cumsum(u_degs)
            idx = np.arange(total, dtype=np.int64)
            idx += (starts_r - (rends - u_degs)).repeat(u_degs)
            u_nbrs = indices[idx]
            u_rep = us_concat.repeat(u_degs)
            ord_per_u = np.arange(lanes_a.size, dtype=np.int64).repeat(sizes)
            ord_per = ord_per_u.repeat(u_degs)
            rowbase = lanes_a * n
            flat_b = rowbase[ord_per] + KL * n + u_nbrs
            want = np.asarray([base + p[3] for p in e_cut], dtype=np.int64)
            w = sigma[rowbase[ord_per] + u_rep] * sigma[flat_b] * (mark[flat_b] == want[ord_per])
            pick = _segmented_pick(
                w, ord_per, lanes_a.size, rng, "wavefront search found no cut edges"
            )
            for j, (lane, length, ls, lt, _us) in enumerate(e_cut):
                u = int(u_rep[pick[j]])
                v = int(u_nbrs[pick[j]])
                s = int(src[lane])
                t = int(dst[lane])
                mids = [x for x in (u, v) if x != s and x != t]
                plan(lane, length, u, ls, v, lt, mids)

        walks = self._walk_group(
            np.asarray(walk_rows, dtype=np.int64),
            np.asarray(walk_starts, dtype=np.int64),
            base,
            rng,
        )

        for lane, length, mids, fwd_item, bwd_item in plans:
            s = int(src[lane])
            t = int(dst[lane])
            internal: List[int] = []
            if fwd_item is not None:
                internal.extend(walks[fwd_item][::-1])
            internal.extend(mids)
            if bwd_item is not None:
                internal.extend(walks[bwd_item])
            internal = [x for x in internal if x != s and x != t]
            results[lane] = (True, length, internal, int(edges[lane]))

    def _walk_group(self, rows, starts, base, rng):
        """Sigma-weighted backward walks for a group of (row, start) items.

        All walks advance one step per iteration: one gather over the
        concatenated predecessor candidates, one segmented weighted pick for
        the whole group.  Returns one list of vertices per item, in walk
        order (from the cut towards the root, exclusive of both).
        """
        indptr, indices, n = self._indptr, self._indices, self._n
        mark = self._slab.mark_flat
        sigma = self._slab.sigma_flat

        outs: List[List[int]] = [[] for _ in range(rows.size)]
        if not rows.size:
            return outs
        cur = starts.copy()
        depth = mark[rows * n + cur] - base
        alive = np.flatnonzero(depth > 1)
        while alive.size:
            c = cur[alive]
            r = rows[alive]
            st = indptr[c]
            dg = indptr[c + 1] - st
            total = int(dg.sum())
            ends = np.cumsum(dg)
            idx = np.arange(total, dtype=np.int64)
            idx += (st - (ends - dg)).repeat(dg)
            nbrs = indices[idx]
            seg = np.arange(alive.size, dtype=np.int64).repeat(dg)
            flat = (r * n)[seg] + nbrs
            want = base + depth[alive] - 1
            w = sigma[flat] * (mark[flat] == want[seg])
            pick = _segmented_pick(
                w, seg, alive.size, rng, "inconsistent sigma values during backtracking"
            )
            chosen = nbrs[pick]
            for j, item in enumerate(alive):
                outs[item].append(int(chosen[j]))
            cur[alive] = chosen
            depth[alive] -= 1
            alive = alive[depth[alive] > 1]
        return outs
