"""Pooled unidirectional (truncated sigma-BFS) sampling kernel.

Zero-allocation port of :mod:`repro.sampling.bfs_sampler` onto the
generation-stamped :class:`~repro.kernels.scratch.ScratchPool`; like the
bidirectional kernel it reproduces the legacy sampler's output exactly for a
fixed RNG state (same settle order, same weighted-pick stream).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.kernels.scratch import ScratchPool, gather_csr
from repro.kernels.weighted import weighted_index

__all__ = ["unidirectional_sample"]


def unidirectional_sample(
    indptr: np.ndarray,
    indices: np.ndarray,
    pool: ScratchPool,
    source: int,
    target: int,
    rng: np.random.Generator,
) -> Tuple[bool, int, List[int], int]:
    """Sample one uniform shortest source-target path with a single BFS.

    Returns ``(connected, length, internal_vertices, edges_touched)``.
    """
    base = pool.begin_sample()
    mark = pool.mark_a
    sigma = pool.sigma_a

    mark[source] = base
    sigma[source] = 1.0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    edges_touched = 0
    while frontier.size > 0:
        level += 1
        neighbors, degs = gather_csr(indptr, indices, frontier)
        total = int(neighbors.size)
        edges_touched += total
        if total == 0:
            break
        new_mark = base + level
        # A neighbour lies on the new level iff it was unvisited before this
        # level was processed, so the freshness mask doubles as the sigma
        # scatter mask.
        fresh_mask = mark[neighbors] < base
        fresh = np.unique(neighbors[fresh_mask])
        if fresh.size == 0:
            break
        mark[fresh] = new_mark
        sigma[fresh] = 0.0
        origin_sigma = np.repeat(sigma[frontier], degs)
        np.add.at(sigma, neighbors[fresh_mask], origin_sigma[fresh_mask])
        frontier = fresh
        if mark[target] == new_mark:
            # The sigma values of this level are complete once the level has
            # been fully processed, which is the case here.
            break

    if mark[target] < base:
        return False, 0, [], edges_touched
    length = int(mark[target] - base)

    # Backward walk from the target choosing predecessors ~ sigma.
    internal: List[int] = []
    current = target
    depth = length
    while depth > 1:
        nbrs = indices[indptr[current] : indptr[current + 1]]
        edges_touched += int(nbrs.size)
        preds = nbrs[mark[nbrs] == base + depth - 1]
        weights = sigma[preds]
        total_weight = float(weights.sum())
        if total_weight <= 0.0:  # pragma: no cover - defensive
            raise RuntimeError("inconsistent sigma values during backtracking")
        current = int(preds[weighted_index(weights, total_weight, rng)])
        internal.append(current)
        depth -= 1
    internal.reverse()
    return True, length, internal, edges_touched
