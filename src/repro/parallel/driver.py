"""Distributed KADABRA driver: diameter → calibration → adaptive sampling.

Orchestrates the full algorithm of the paper on top of the MPI substrate.  The
driver mirrors the paper's phase structure:

1. *Diameter* — computed sequentially at rank 0 (the paper uses a sequential
   algorithm as well) and broadcast.
2. *Calibration* — the fixed number of non-adaptive samples is split evenly
   across all ranks and threads ("pleasingly parallel"), aggregated with a
   blocking reduction, and rank 0 derives ``delta_L``/``delta_U`` which are
   then broadcast.
3. *Adaptive sampling* — Algorithm 1 (``algorithm="mpi-only"``) or the
   epoch-based Algorithm 2 (``algorithm="epoch"``, default), optionally with
   the NUMA-aware node-local pre-aggregation.

Because this environment offers neither mpi4py nor a multi-node cluster, the
"processes" are the rank threads of :class:`~repro.mpi.threaded.ThreadedComm`;
the algorithmic control flow is identical to a real MPI deployment, and the
performance characteristics of the real cluster are modelled separately in
:mod:`repro.cluster`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.calibration import calibrate_deltas, calibration_sample_count
from repro.core.options import KadabraOptions
from repro.core.result import BetweennessResult
from repro.core.state_frame import StateFrame
from repro.core.stopping import StoppingCondition, compute_omega
from repro.core.kadabra import make_sampler
from repro.diameter import vertex_diameter_upper_bound
from repro.kernels import plan_batches, resolve_batch_size
from repro.graph.csr import CSRGraph
from repro.mpi.interface import Communicator, SelfComm
from repro.mpi.threaded import run_threaded
from repro.obs import trace as obs_trace
from repro.mpi.topology import build_topology
from repro.parallel.algorithm1 import adaptive_sampling_algorithm1
from repro.parallel.algorithm2 import adaptive_sampling_algorithm2
from repro.parallel.epoch_length import thread_zero_samples_per_epoch
from repro.sampling.rng import rng_for_rank_thread
from repro.util.deprecation import warn_legacy_entry_point
from repro.util.progress import ProgressCallback, ProgressEvent
from repro.util.timer import PhaseTimer

__all__ = ["DistributedKadabra"]


@dataclass
class _DistributedKadabra:
    """MPI-style parallel KADABRA betweenness approximation.

    Parameters
    ----------
    graph:
        The input graph (replicated on every rank, as in the paper).
    options:
        Accuracy and sampling options.
    num_processes:
        Number of MPI-style ranks ``P``.
    threads_per_process:
        Sampling threads ``T`` per rank (only used by the epoch-based
        algorithm).
    processes_per_node:
        If set, enables the NUMA-aware split: ranks are grouped into compute
        nodes of this size and state frames are pre-aggregated node-locally.
    algorithm:
        ``"epoch"`` for Algorithm 2 (default) or ``"mpi-only"`` for
        Algorithm 1.
    max_epochs:
        Optional safety bound on the number of epochs (used by tests).
    progress:
        Optional progress callback, invoked at rank 0 after the diameter and
        calibration phases and after each aggregation epoch.
    batch_size:
        Sampling batch size (``"auto"`` or a positive int), forwarded to the
        adaptive-sampling algorithms; see :mod:`repro.kernels.policy`.
    """

    graph: CSRGraph
    options: KadabraOptions = field(default_factory=KadabraOptions)
    num_processes: int = 1
    threads_per_process: int = 1
    processes_per_node: Optional[int] = None
    algorithm: str = "epoch"
    max_epochs: Optional[int] = None
    progress: Optional[ProgressCallback] = None
    batch_size: object = "auto"
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_processes <= 0:
            raise ValueError("num_processes must be positive")
        if self.threads_per_process <= 0:
            raise ValueError("threads_per_process must be positive")
        if self.algorithm not in ("epoch", "mpi-only"):
            raise ValueError("algorithm must be 'epoch' or 'mpi-only'")
        if self.processes_per_node is not None and self.processes_per_node <= 0:
            raise ValueError("processes_per_node must be positive when given")
        self.batch_size = resolve_batch_size(self.batch_size)

    # ------------------------------------------------------------------ #
    def _graph_for_rank(self) -> CSRGraph:
        """The graph this rank samples from.

        When the input graph is backed by an ``.rcsr`` store, every rank opens
        its own memory map instead of inheriting the driver's arrays — the OS
        page cache shares the read-only pages, so this models the paper's
        "one replicated read-only CSR per rank" at near-zero per-rank cost
        (and, unlike shipping a pickled graph, works unchanged for real
        multi-process deployments).
        """
        source = getattr(self.graph, "source_path", None)
        if source is not None and self.num_processes > 1:
            from repro.store.format import open_rcsr

            try:
                return open_rcsr(source)
            except (OSError, ValueError):  # pragma: no cover - store file vanished
                return self.graph
        return self.graph

    def run(self) -> BetweennessResult:
        """Execute the distributed algorithm and return rank 0's result."""
        graph = self.graph
        if graph.num_vertices < 2:
            return BetweennessResult(
                scores=np.zeros(graph.num_vertices),
                eps=self.options.eps,
                delta=self.options.delta,
            )
        if self.num_processes == 1:
            result = self._rank_body(SelfComm(), 0)
            assert result is not None
            return result
        results = run_threaded(self.num_processes, self._rank_body)
        result = results[0]
        assert result is not None
        return result

    # ------------------------------------------------------------------ #
    def _rank_body(self, comm: Communicator, rank: int) -> Optional[BetweennessResult]:
        graph = self._graph_for_rank()
        options = self.options
        num_threads = self.threads_per_process
        timer = PhaseTimer()

        # ---------------- Phase 1: diameter (sequential at rank 0) -------- #
        # Ranks run on their own threads, so non-root spans root their own
        # per-rank trees (the span stack is thread-local); rank 0 under
        # SelfComm nests beneath the facade's "estimate" span as usual.
        with timer.phase("diameter"), obs_trace.span("diameter", rank=rank):
            if comm.is_root:
                if options.vertex_diameter_override is not None:
                    vd = int(options.vertex_diameter_override)
                else:
                    vd = max(vertex_diameter_upper_bound(graph, seed=options.seed), 2)
            else:
                vd = None
            vd = int(comm.bcast(vd, root=0))
        omega = compute_omega(options.eps, options.delta, vd)
        if options.max_samples_override is not None:
            omega = min(omega, int(options.max_samples_override))
        progress = self.progress if comm.is_root else None
        if progress is not None:
            progress(ProgressEvent(phase="diameter", omega=omega))

        # ---------------- Phase 2: calibration ---------------------------- #
        with timer.phase("calibration"), obs_trace.span("calibration", rank=rank):
            # Same deterministic count as the sequential session engine, so
            # the phase structure (and the cost model built on it) agrees
            # across execution modes.
            total_calibration = calibration_sample_count(
                options.calibration_samples, omega, graph.num_vertices
            )
            per_rank = int(math.ceil(total_calibration / comm.size))
            sampler = make_sampler(graph, options, kernel=self.kernel)
            # Thread slot 0 is reserved for calibration so that the adaptive
            # phase (slots 1..T) never replays the calibration sample stream.
            rng = rng_for_rank_thread(options.seed, rank, 0, num_threads=num_threads + 1)
            local_frame = StateFrame.zeros(graph.num_vertices)
            for take in plan_batches(per_rank, self.batch_size):
                local_frame.record_batch(sampler.sample_batch(take, rng))
            calibration_frame = comm.reduce(local_frame, op="sum", root=0)
            if comm.is_root:
                calibration = calibrate_deltas(calibration_frame, options.delta, eps=options.eps)
                payload = (calibration.delta_l, calibration.delta_u)
            else:
                payload = None
            delta_l, delta_u = comm.bcast(payload, root=0)
        condition = StoppingCondition(eps=options.eps, omega=omega, delta_l=delta_l, delta_u=delta_u)
        if progress is not None:
            progress(
                ProgressEvent(
                    phase="calibration",
                    num_samples=calibration_frame.num_samples,
                    omega=omega,
                )
            )
        on_epoch = None
        if progress is not None:
            def on_epoch(epoch: int, num_samples: int) -> None:
                progress(
                    ProgressEvent(
                        phase="adaptive_sampling",
                        epoch=epoch,
                        num_samples=num_samples,
                        omega=omega,
                    )
                )

        # ---------------- Phase 3: adaptive sampling ---------------------- #
        samples_per_epoch = thread_zero_samples_per_epoch(
            comm.size,
            num_threads if self.algorithm == "epoch" else 1,
            base=float(options.samples_per_check),
            exponent=options.epoch_exponent,
        )
        with timer.phase("adaptive_sampling"), obs_trace.span(
            "adaptive_sampling", rank=rank, omega=omega
        ):
            if self.algorithm == "mpi-only":
                stats = adaptive_sampling_algorithm1(
                    comm,
                    make_sampler(graph, options, kernel=self.kernel),
                    condition,
                    rng_for_rank_thread(options.seed, rank, 1, num_threads=num_threads + 1),
                    samples_per_epoch=samples_per_epoch,
                    initial_frame=calibration_frame if comm.is_root else None,
                    max_epochs=self.max_epochs,
                    on_epoch=on_epoch,
                    batch_size=self.batch_size,
                )
                num_epochs = stats.num_epochs
                aggregated = stats.aggregated_frame
                communication_bytes = comm.communication_bytes()
            else:
                topology = None
                if self.processes_per_node is not None and comm.size > 1:
                    topology = build_topology(comm, self.processes_per_node)
                rngs = [
                    rng_for_rank_thread(options.seed, rank, t + 1, num_threads=num_threads + 1)
                    for t in range(num_threads)
                ]
                stats = adaptive_sampling_algorithm2(
                    comm,
                    lambda _thread: make_sampler(graph, options, kernel=self.kernel),
                    condition,
                    rngs,
                    num_threads=num_threads,
                    samples_per_epoch=samples_per_epoch,
                    initial_frame=calibration_frame if comm.is_root else None,
                    topology=topology,
                    max_epochs=self.max_epochs,
                    on_epoch=on_epoch,
                    batch_size=self.batch_size,
                )
                num_epochs = stats.num_epochs
                aggregated = stats.aggregated_frame
                communication_bytes = stats.communication_bytes

        if not comm.is_root:
            return None
        assert aggregated is not None
        for phase, seconds in stats.phase_seconds.items():
            timer.add(f"ads_{phase}", seconds)
        return BetweennessResult(
            scores=aggregated.betweenness_estimates(),
            num_samples=aggregated.num_samples,
            eps=options.eps,
            delta=options.delta,
            omega=omega,
            vertex_diameter=vd,
            num_epochs=num_epochs,
            phase_seconds=timer.as_dict(),
            extra={
                "communication_bytes": float(communication_bytes),
                "num_processes": float(comm.size),
                "threads_per_process": float(num_threads),
                "samples_per_epoch_n0": float(samples_per_epoch),
            },
        )


class DistributedKadabra(_DistributedKadabra):
    """Deprecated entry point for MPI-style distributed KADABRA.

    Use :func:`repro.estimate_betweenness` with ``algorithm="distributed"``
    (or ``"mpi-only"`` for Algorithm 1) and ``resources=Resources(processes=...,
    threads=...)``; this class remains as a thin shim and will be removed in a
    future release.
    """

    def __init__(self, *args, **kwargs) -> None:
        warn_legacy_entry_point("DistributedKadabra", "distributed")
        super().__init__(*args, **kwargs)
