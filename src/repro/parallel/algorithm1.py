"""Algorithm 1: MPI-only parallelization of adaptive sampling (no multithreading).

A direct transcription of the paper's Algorithm 1.  Every rank repeatedly

1. takes ``n0`` samples into its local state frame,
2. snapshots the frame and starts a (non-blocking) reduction towards rank 0,
   taking further samples while the reduction is in flight,
3. rank 0 folds the reduced snapshot into the global aggregate and evaluates
   the stopping condition,
4. the termination flag is broadcast (again overlapped with sampling).

The function below executes the body of one rank; it is used both by the
threaded MPI runtime (functional reproduction) and by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.core.state_frame import StateFrame
from repro.core.stopping import StoppingCondition
from repro.kernels import plan_batches, resolve_batch_size
from repro.mpi.interface import Communicator
from repro.sampling.base import PathSampler
from repro.util.timer import PhaseTimer

__all__ = ["Algorithm1Stats", "adaptive_sampling_algorithm1"]


@dataclass
class Algorithm1Stats:
    """Per-rank statistics of one Algorithm 1 run."""

    rank: int
    num_epochs: int = 0
    local_samples: int = 0
    aggregated_frame: Optional[StateFrame] = None  # only at rank 0
    stopped_by_omega: bool = False
    phase_seconds: Dict[str, float] = field(default_factory=dict)


def adaptive_sampling_algorithm1(
    comm: Communicator,
    sampler: PathSampler,
    condition: StoppingCondition,
    rng: np.random.Generator,
    *,
    samples_per_epoch: int,
    initial_frame: Optional[StateFrame] = None,
    max_epochs: Optional[int] = None,
    on_epoch: Optional[Callable[[int, int], None]] = None,
    on_aggregate: Optional[Callable[[int, StateFrame], None]] = None,
    batch_size="auto",
) -> Algorithm1Stats:
    """Run the Algorithm 1 adaptive-sampling loop on this rank.

    Parameters
    ----------
    comm:
        Communicator spanning all participating processes.
    sampler:
        Shortest-path sampler over the (replicated) graph.
    condition:
        The stopping condition; only evaluated at rank 0.
    rng:
        Per-rank random generator.
    samples_per_epoch:
        The constant ``n0``.
    initial_frame:
        Samples carried over from the calibration phase (added to the global
        aggregate at rank 0 before the first check).
    max_epochs:
        Safety bound for tests; ``None`` means unbounded.
    on_epoch:
        Optional progress hook ``on_epoch(epochs_done, samples_aggregated)``,
        invoked at rank 0 after each stopping-rule evaluation.
    on_aggregate:
        Optional hook ``on_aggregate(epochs_done, aggregated)`` invoked at
        rank 0 right after the epoch's reduction is folded into the aggregate
        ``S`` (before the stopping rule) — the epoch boundary the distributed
        runtime checkpoints at.  The frame is the live aggregate; the hook
        must copy what it keeps.
    batch_size:
        Sampling batch size (``"auto"`` or a positive int).  The ``n0`` bulk
        samples of each epoch are drawn in adaptively sized batches; the
        overlap loops (waiting on the reduction / broadcast) keep single-
        sample batches so the requests are polled between every sample,
        exactly as in the paper.
    """
    if samples_per_epoch <= 0:
        raise ValueError("samples_per_epoch must be positive")
    batch_size = resolve_batch_size(batch_size)
    num_vertices = condition.num_vertices
    timer = PhaseTimer()

    aggregated = StateFrame.zeros(num_vertices)  # S (only meaningful at rank 0)
    if comm.is_root and initial_frame is not None:
        aggregated.add_into(initial_frame)
    local = StateFrame.zeros(num_vertices)  # S_loc
    stats = Algorithm1Stats(rank=comm.rank)
    terminated = False

    def take_sample(frame: StateFrame) -> None:
        sample = sampler.sample(rng)
        frame.record_sample(sample.internal_vertices, edges_touched=sample.edges_touched)
        stats.local_samples += 1

    def take_batch(frame: StateFrame, size: int) -> None:
        frame.record_batch(sampler.sample_batch(size, rng))
        stats.local_samples += size

    while not terminated:
        # Line 5-6: n0 local samples, drawn in adaptively sized batches.
        with timer.phase("sampling"):
            for take in plan_batches(samples_per_epoch, batch_size):
                take_batch(local, take)
        # Line 7-8: snapshot the frame so overlapped sampling does not modify
        # the communication buffer.
        snapshot = local.copy()
        local.reset()
        # Line 10-11: non-blocking reduction overlapped with sampling.
        with timer.phase("reduce"):
            request = comm.ireduce(snapshot, op="sum", root=0)
            while not request.test():
                take_sample(local)
        # Line 12-14: only rank 0 folds the snapshot and checks the stop rule.
        decision = False
        if comm.is_root:
            with timer.phase("check"):
                reduced = request.result()
                if reduced is not None:
                    aggregated.add_into(reduced)
                if on_aggregate is not None:
                    on_aggregate(stats.num_epochs + 1, aggregated)
                decision = condition.should_stop(aggregated)
                if aggregated.num_samples >= condition.omega:
                    stats.stopped_by_omega = True
                if on_epoch is not None:
                    on_epoch(stats.num_epochs + 1, aggregated.num_samples)
        # Line 15-17: broadcast the termination flag, overlapped with sampling.
        with timer.phase("broadcast"):
            bcast_request = comm.ibcast(decision if comm.is_root else None, root=0)
            while not bcast_request.test():
                take_sample(local)
            terminated = bool(bcast_request.result())
        stats.num_epochs += 1
        if max_epochs is not None and stats.num_epochs >= max_epochs:
            # Safety stop for tests: make every rank agree via an extra vote.
            terminated = bool(comm.allreduce(True, op="lor"))

    stats.aggregated_frame = aggregated if comm.is_root else None
    stats.phase_seconds = timer.as_dict()
    return stats
