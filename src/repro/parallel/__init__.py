"""Distributed adaptive-sampling algorithms (Algorithms 1 and 2 of the paper)."""

from repro.parallel.epoch_length import thread_zero_samples_per_epoch
from repro.parallel.algorithm1 import Algorithm1Stats, adaptive_sampling_algorithm1
from repro.parallel.algorithm2 import Algorithm2Stats, adaptive_sampling_algorithm2
from repro.parallel.driver import DistributedKadabra

__all__ = [
    "thread_zero_samples_per_epoch",
    "Algorithm1Stats",
    "adaptive_sampling_algorithm1",
    "Algorithm2Stats",
    "adaptive_sampling_algorithm2",
    "DistributedKadabra",
]
