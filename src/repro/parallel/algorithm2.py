"""Algorithm 2: epoch-based MPI parallelization (multithreaded ranks).

The combined algorithm of Section IV-C: inside every MPI process the
epoch-based framework aggregates the state frames of the sampling threads,
while across processes the aggregation uses a non-blocking barrier followed by
a blocking reduction (the paper found this faster than ``MPI_Ireduce``), both
overlapped with sampling by thread 0.

Structure of one rank:

* threads ``1 .. T-1`` sample continuously into the frame of their current
  epoch, calling ``check_transition`` between samples and exiting when the
  termination flag is raised;
* thread 0 (the caller of :func:`adaptive_sampling_algorithm2`) executes the
  per-epoch protocol: sample ``n0`` times, force the epoch transition
  (overlapping further samples into the next epoch's frame), aggregate the
  epoch's frames, reduce them to rank 0 (optionally pre-aggregating over a
  node-local communicator, Section IV-E), evaluate the stopping condition at
  rank 0 and broadcast the termination flag.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.state_frame import StateFrame
from repro.core.stopping import StoppingCondition
from repro.epoch.frames import FramePool
from repro.epoch.framework import EpochManager
from repro.kernels import plan_batches, resolve_batch_size, worker_batch_size
from repro.mpi.interface import Communicator
from repro.mpi.topology import NodeTopology
from repro.sampling.base import PathSampler
from repro.util.timer import PhaseTimer

__all__ = ["Algorithm2Stats", "adaptive_sampling_algorithm2"]


@dataclass
class Algorithm2Stats:
    """Per-rank statistics of one Algorithm 2 run."""

    rank: int
    num_threads: int
    num_epochs: int = 0
    local_samples: int = 0
    aggregated_frame: Optional[StateFrame] = None  # only at world rank 0
    stopped_by_omega: bool = False
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    communication_bytes: int = 0


def _worker_loop(
    thread_index: int,
    sampler: PathSampler,
    rng: np.random.Generator,
    manager: EpochManager,
    pool: FramePool,
    sample_counter: List[int],
    batch: int,
) -> None:
    """Body of sampling threads ``t != 0`` (lines 5-9 of Algorithm 2).

    Samples are drawn in small batches (:func:`repro.kernels.
    worker_batch_size`): large enough to amortise per-sample overhead, small
    enough that pending epoch transitions are acknowledged promptly —
    ``check_transition`` runs between batches, so a frame is only ever
    written by its owner inside one epoch, exactly as in the scalar protocol.
    """
    epoch = 0
    frame = pool.frame(thread_index, epoch)
    while not manager.terminated:
        frame.record_batch(sampler.sample_batch(batch, rng))
        sample_counter[thread_index] += batch
        if manager.check_transition(thread_index, epoch):
            epoch += 1
            frame = pool.reset_for_epoch(thread_index, epoch)


def adaptive_sampling_algorithm2(
    comm: Communicator,
    sampler_factory: Callable[[int], PathSampler],
    condition: StoppingCondition,
    rngs: List[np.random.Generator],
    *,
    num_threads: int,
    samples_per_epoch: int,
    initial_frame: Optional[StateFrame] = None,
    topology: Optional[NodeTopology] = None,
    use_ibarrier_reduce: bool = True,
    max_epochs: Optional[int] = None,
    on_epoch: Optional[Callable[[int, int], None]] = None,
    on_aggregate: Optional[Callable[[int, StateFrame], None]] = None,
    batch_size="auto",
) -> Algorithm2Stats:
    """Run the Algorithm 2 adaptive-sampling loop on this rank.

    Parameters
    ----------
    comm:
        World communicator spanning all ranks.
    sampler_factory:
        Called once per thread index to create that thread's sampler (the
        sampler may share the read-only graph between threads).
    condition:
        Stopping condition, evaluated only at world rank 0.
    rngs:
        One independent generator per thread.
    num_threads:
        Number of sampling threads ``T`` in this process (including thread 0).
    samples_per_epoch:
        The constant ``n0`` for thread 0.
    initial_frame:
        Calibration samples folded into the aggregate at rank 0.
    topology:
        Optional NUMA topology; when given, frames are pre-aggregated over the
        node-local communicator and only node leaders join the global
        reduction (Section IV-E).
    use_ibarrier_reduce:
        If true, use the paper's ``Ibarrier`` + blocking ``Reduce`` scheme;
        otherwise use a plain ``Ireduce``.
    max_epochs:
        Safety bound for tests.
    on_epoch:
        Optional progress hook ``on_epoch(epochs_done, samples_aggregated)``,
        invoked at the reduce root (world rank 0) after each stopping-rule
        evaluation.
    on_aggregate:
        Optional hook ``on_aggregate(epochs_done, aggregated)`` invoked at
        the reduce root right after the epoch frame is folded into the
        aggregate ``S`` (before the stopping rule).  This is the epoch
        boundary the distributed runtime checkpoints at: the frame passed is
        the live aggregate, so the hook must copy what it keeps.
    batch_size:
        Sampling batch size (``"auto"`` or a positive int).  Thread 0 draws
        its ``n0`` bulk samples in adaptively sized batches and keeps
        single-sample batches in the overlap loops (where transitions,
        barriers and broadcasts are polled between samples); worker threads
        use the small constant worker batch so they acknowledge epoch
        transitions promptly.
    """
    if num_threads <= 0:
        raise ValueError("num_threads must be positive")
    if samples_per_epoch <= 0:
        raise ValueError("samples_per_epoch must be positive")
    if len(rngs) < num_threads:
        raise ValueError("need one RNG per thread")
    batch_size = resolve_batch_size(batch_size)

    num_vertices = condition.num_vertices
    timer = PhaseTimer()
    manager = EpochManager(num_threads)
    pool = FramePool(num_threads, num_vertices)
    sample_counter = [0] * num_threads
    stats = Algorithm2Stats(rank=comm.rank, num_threads=num_threads)

    aggregated = StateFrame.zeros(num_vertices)  # S at world rank 0
    if comm.is_root and initial_frame is not None:
        aggregated.add_into(initial_frame)

    # The communicators taking part in the reduction tree.
    local_comm = topology.local if topology is not None else None
    reduce_comm = topology.global_ if topology is not None else comm
    is_reduce_root = comm.is_root

    worker_batch = worker_batch_size(batch_size)
    workers = [
        threading.Thread(
            target=_worker_loop,
            args=(t, sampler_factory(t), rngs[t], manager, pool, sample_counter, worker_batch),
            daemon=True,
        )
        for t in range(1, num_threads)
    ]
    for worker in workers:
        worker.start()

    sampler0 = sampler_factory(0)
    rng0 = rngs[0]

    def sample_into(frame: StateFrame) -> None:
        sample = sampler0.sample(rng0)
        frame.record_sample(sample.internal_vertices, edges_touched=sample.edges_touched)
        sample_counter[0] += 1

    # Reused every epoch by aggregate_epoch (zeroed in place, never
    # reallocated); safe because the aggregate is reduced and folded before
    # the next epoch's aggregation starts.
    aggregate_scratch = StateFrame.zeros(num_vertices)

    epoch = 0
    terminated = False
    try:
        while not terminated:
            current_frame = pool.frame(0, epoch)
            # Lines 12-13: n0 samples by thread 0, in adaptive batches.
            with timer.phase("sampling"):
                for take in plan_batches(samples_per_epoch, batch_size):
                    current_frame.record_batch(sampler0.sample_batch(take, rng0))
                    sample_counter[0] += take
            # Lines 14-15: force the epoch transition, sampling while waiting.
            next_frame = pool.reset_for_epoch(0, epoch + 1)
            with timer.phase("epoch_transition"):
                transition = manager.force_transition(epoch)
                while not transition.test():
                    sample_into(next_frame)
            # Lines 16-18: aggregate this process' epoch frames.
            with timer.phase("local_aggregation"):
                epoch_frame = pool.aggregate_epoch(epoch, out=aggregate_scratch)
                if local_comm is not None and local_comm.size > 1:
                    reduced_local = local_comm.reduce(epoch_frame, op="sum", root=0)
                    epoch_frame = reduced_local if reduced_local is not None else None

            # Lines 19-21: reduce across processes, overlapped with sampling.
            reduced_frame: Optional[StateFrame] = None
            if reduce_comm is not None and epoch_frame is not None:
                if use_ibarrier_reduce:
                    with timer.phase("ibarrier"):
                        barrier = reduce_comm.ibarrier()
                        while not barrier.test():
                            sample_into(next_frame)
                    with timer.phase("reduce"):
                        reduced_frame = reduce_comm.reduce(epoch_frame, op="sum", root=0)
                else:
                    with timer.phase("reduce"):
                        request = reduce_comm.ireduce(epoch_frame, op="sum", root=0)
                        while not request.test():
                            sample_into(next_frame)
                        reduced_frame = request.result()

            # Lines 22-24: rank 0 folds the epoch frame and checks the rule.
            decision = False
            if is_reduce_root:
                with timer.phase("check"):
                    if reduced_frame is not None:
                        aggregated.add_into(reduced_frame)
                    if on_aggregate is not None:
                        on_aggregate(stats.num_epochs + 1, aggregated)
                    decision = condition.should_stop(aggregated)
                    if aggregated.num_samples >= condition.omega:
                        stats.stopped_by_omega = True
                    if on_epoch is not None:
                        on_epoch(stats.num_epochs + 1, aggregated.num_samples)

            # Lines 25-27: broadcast the termination flag over the world
            # communicator, overlapped with sampling.
            with timer.phase("broadcast"):
                bcast_request = comm.ibcast(decision if comm.is_root else None, root=0)
                while not bcast_request.test():
                    sample_into(next_frame)
                terminated = bool(bcast_request.result())

            stats.num_epochs += 1
            epoch += 1
            if max_epochs is not None and stats.num_epochs >= max_epochs and not terminated:
                terminated = bool(comm.allreduce(True, op="lor"))
    finally:
        # Lines 28-30: stop the sampling threads.
        manager.signal_termination()
        for worker in workers:
            worker.join()

    stats.local_samples = int(sum(sample_counter))
    stats.aggregated_frame = aggregated if comm.is_root else None
    stats.phase_seconds = timer.as_dict()
    stats.communication_bytes = comm.communication_bytes()
    return stats
