"""Epoch-length rule (Section IV-D of the paper).

The parameter ``n0`` is the number of samples thread 0 takes before it
initiates the next epoch transition (and hence the next check of the stopping
condition).  Adding processes/threads increases the number of samples taken
per unit of time, so the rule *decreases* the epoch length with the total
thread count::

    n0 = base / (P * T) ** exponent          (base = 1000, exponent = 1.33)

matching the shared-memory rule ``1000 / T^1.33`` of Ref. [24] generalised to
``P * T`` workers.  Note that ``n0`` only bounds the *minimum* epoch length:
all sampling performed while the epoch's aggregation and broadcast are in
flight is also credited to the epoch, which is why large graphs (large
communication volume) show few, long epochs and road networks show hundreds of
short ones (Table II).
"""

from __future__ import annotations

__all__ = ["thread_zero_samples_per_epoch", "DEFAULT_BASE", "DEFAULT_EXPONENT"]

DEFAULT_BASE = 1000.0
DEFAULT_EXPONENT = 1.33


def thread_zero_samples_per_epoch(
    num_processes: int,
    num_threads: int,
    *,
    base: float = DEFAULT_BASE,
    exponent: float = DEFAULT_EXPONENT,
    reference_workers: int = 1,
) -> int:
    """Number of samples thread 0 takes per epoch before forcing a transition.

    ``reference_workers`` sets the worker count at which ``n0 == base``; the
    functional drivers use 1 (a single worker checks every ``base`` samples),
    while the cluster performance model uses 24 (one full compute node of the
    paper's machines) so that epoch counts land in the regime of Table II.
    """
    if num_processes <= 0 or num_threads <= 0:
        raise ValueError("num_processes and num_threads must be positive")
    if base <= 0 or exponent <= 0:
        raise ValueError("base and exponent must be positive")
    if reference_workers <= 0:
        raise ValueError("reference_workers must be positive")
    workers = float(num_processes * num_threads)
    value = base * (float(reference_workers) / workers) ** exponent
    return max(1, int(round(value)))
