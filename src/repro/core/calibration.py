"""Calibration of the per-vertex failure probabilities delta_L / delta_U.

KADABRA's second phase takes a fixed number of non-adaptive samples and uses
the resulting rough betweenness estimates to *distribute* the global failure
probability ``delta`` over the vertices.  Vertices that look important (large
preliminary estimate) receive a larger share so that their stopping-condition
terms shrink faster; the remaining vertices share a uniform floor.  Footnote 2
of the paper notes that the exact choice only influences the running time,
never the correctness — any assignment with ``sum_v delta_L(v) + delta_U(v)
<= delta`` is sound.

The assignment below follows the reference implementation's scheme: a binary
search on a concentration parameter ``c`` such that the total probability mass
``sum_v exp(-c * w(v))`` matches the available budget, where the weight
``w(v)`` grows with the preliminary estimate; a small *balancing fraction* of
the budget is always distributed uniformly so that no vertex receives a
degenerate share.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.state_frame import StateFrame
from repro.util.validation import check_positive, check_probability

__all__ = [
    "CalibrationResult",
    "calibrate_deltas",
    "calibration_sample_count",
    "default_calibration_samples",
]

#: Fraction of the failure-probability budget distributed uniformly.
BALANCING_FACTOR = 0.001


@dataclass
class CalibrationResult:
    """Per-vertex failure probabilities and the calibration frame."""

    delta_l: np.ndarray
    delta_u: np.ndarray
    preliminary_estimates: np.ndarray
    num_samples: int

    @property
    def total_budget_used(self) -> float:
        return float(np.sum(self.delta_l) + np.sum(self.delta_u))


def default_calibration_samples(omega: int, num_vertices: int) -> int:
    """Default number of non-adaptive calibration samples.

    A small fraction of the sample budget (1 %), at least a few hundred
    samples so that the preliminary ranking is meaningful, capped at 50 000
    (the calibration phase is only meant to *rank* vertices roughly) and never
    more than ``omega`` itself.
    """
    if omega <= 0:
        raise ValueError("omega must be positive")
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    guess = max(200, omega // 100)
    return int(min(guess, 50_000, omega))


def calibration_sample_count(
    requested: "int | None", omega: int, num_vertices: int
) -> int:
    """The calibration sample count every sequential-style driver uses.

    ``requested`` is :attr:`~repro.core.options.KadabraOptions
    .calibration_samples` (``None`` selects the default heuristic); the result
    is always capped at ``omega``.  The count is *monotone in omega* — a
    tighter (eps, delta) target never calibrates on fewer samples — which is
    the property session refinement relies on: the calibration prefix of a
    tighter target always extends the prefix of a looser one, so a resumed
    session can reconstruct the tighter target's calibration frame by
    replaying only the gap.
    """
    base = requested if requested is not None else default_calibration_samples(
        omega, num_vertices
    )
    return int(min(base, omega))


def calibrate_deltas(
    frame: StateFrame,
    delta: float,
    *,
    eps: float,
    balancing_factor: float = BALANCING_FACTOR,
) -> CalibrationResult:
    """Assign per-vertex failure probabilities from the calibration frame.

    Parameters
    ----------
    frame:
        Aggregated state frame of the (non-adaptive) calibration phase.
    delta:
        Global failure probability; the per-vertex assignment satisfies
        ``sum_v (delta_L(v) + delta_U(v)) <= delta``.
    eps:
        Target error; only used to scale the concentration weights.
    balancing_factor:
        Fraction of the budget reserved for the uniform floor.
    """
    check_probability(delta, "delta")
    check_positive(eps, "eps")
    if not (0.0 < balancing_factor < 1.0):
        raise ValueError("balancing_factor must lie in (0, 1)")
    n = frame.num_vertices
    if n <= 0:
        raise ValueError("calibration frame has no vertices")

    estimates = frame.betweenness_estimates()
    # Uniform floor: every vertex always receives at least this much for each
    # of delta_L and delta_U.
    floor = delta * balancing_factor / (4.0 * n)
    # Budget distributed proportionally to exp(-c * sqrt(b~)); the square root
    # compresses the dynamic range so that the search is well-conditioned even
    # when a handful of vertices dominate.
    adaptive_budget = delta * (1.0 - balancing_factor) / 2.0  # per side (L/U)
    weights = np.sqrt(np.maximum(estimates, 0.0)) / max(eps, 1e-12)

    # Binary search for c such that sum(exp(-c * w)) == adaptive_budget.  The
    # left end c=0 gives n (too much mass, unless n <= budget); larger c only
    # decreases the sum.
    if adaptive_budget >= n:
        shares = np.full(n, adaptive_budget / n, dtype=np.float64)
    else:
        lo, hi = 0.0, 1.0
        while float(np.sum(np.exp(-hi * weights - np.log(n)))) * n > adaptive_budget and hi < 1e12:
            hi *= 2.0
        # If even a huge c cannot push the mass below the budget (all weights
        # zero), fall back to the uniform split.
        if float(np.sum(np.exp(-hi * weights))) > adaptive_budget:
            shares = np.full(n, adaptive_budget / n, dtype=np.float64)
        else:
            for _ in range(100):
                mid = 0.5 * (lo + hi)
                total = float(np.sum(np.exp(-mid * weights)))
                if total > adaptive_budget:
                    lo = mid
                else:
                    hi = mid
            shares = np.exp(-hi * weights)
            # Normalise any residual slack so the full adaptive budget is used.
            total = float(np.sum(shares))
            if total > 0:
                shares *= adaptive_budget / total

    delta_l = np.clip(shares + floor, 1e-300, 0.4999999)
    delta_u = delta_l.copy()

    # Final safety rescale in case clipping inflated the total.
    total = float(np.sum(delta_l) + np.sum(delta_u))
    if total > delta:
        scale = delta / total
        delta_l *= scale
        delta_u *= scale
    return CalibrationResult(
        delta_l=delta_l,
        delta_u=delta_u,
        preliminary_estimates=estimates,
        num_samples=frame.num_samples,
    )
