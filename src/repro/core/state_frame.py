"""State frames: the unit of aggregation in the parallel algorithms.

A *state frame* (SF) is the pair ``S = (tau, c~)`` of the number of samples
taken and the per-vertex path counters (Section III-B of the paper).  State
frames form a commutative monoid under element-wise addition, which is exactly
the property the MPI reduction and the epoch-based aggregation rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["StateFrame"]


@dataclass
class StateFrame:
    """Sampling state ``(tau, c~)`` of one thread/process/epoch.

    Attributes
    ----------
    num_samples:
        Number of vertex pairs sampled (``tau``), including pairs that turned
        out to be disconnected or adjacent.
    counts:
        float64 array of per-vertex path counts ``c~``.
    edges_touched:
        Total adjacency entries scanned while producing this frame; only used
        for performance accounting, not by the algorithm itself.
    """

    num_samples: int
    counts: np.ndarray
    edges_touched: int = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def zeros(cls, num_vertices: int) -> "StateFrame":
        """An empty state frame for a graph with ``num_vertices`` vertices."""
        if num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        return cls(num_samples=0, counts=np.zeros(num_vertices, dtype=np.float64))

    def copy(self) -> "StateFrame":
        """Deep copy (used for the snapshot taken before an MPI reduction)."""
        return StateFrame(
            num_samples=self.num_samples,
            counts=self.counts.copy(),
            edges_touched=self.edges_touched,
        )

    def reset(self) -> None:
        """Zero the frame in place (frame reuse across epochs)."""
        self.num_samples = 0
        self.edges_touched = 0
        self.counts.fill(0.0)

    @property
    def num_vertices(self) -> int:
        return int(self.counts.size)

    @property
    def is_empty(self) -> bool:
        return self.num_samples == 0

    # ------------------------------------------------------------------ #
    def record_sample(self, internal_vertices: np.ndarray, *, edges_touched: int = 0) -> None:
        """Account one sampled path: bump ``tau`` and the counters of the
        internal vertices of the path (which may be empty)."""
        self.num_samples += 1
        self.edges_touched += int(edges_touched)
        if internal_vertices is not None and len(internal_vertices) > 0:
            # Internal vertices of a simple path are distinct, so += suffices.
            self.counts[np.asarray(internal_vertices, dtype=np.int64)] += 1.0

    def record_batch(self, batch) -> None:
        """Account one :class:`~repro.kernels.batch.SampleBatch` of paths.

        Equivalent to calling :meth:`record_sample` once per sample of the
        batch (the counters are integer-valued, so the accumulation order
        does not change the float result), but performs a single vectorized
        ``np.add.at`` over the batch's flat contribution arrays.
        """
        self.num_samples += batch.num_samples
        self.edges_touched += int(batch.edges_touched.sum())
        vertices = batch.contrib_vertices
        if vertices.size > 0:
            np.add.at(self.counts, vertices, 1.0)

    def add_into(self, other: "StateFrame") -> "StateFrame":
        """In-place accumulate ``other`` into ``self`` and return ``self``."""
        if other.counts.size != self.counts.size:
            raise ValueError("cannot aggregate state frames of different sizes")
        self.num_samples += other.num_samples
        self.edges_touched += other.edges_touched
        self.counts += other.counts
        return self

    def __add__(self, other: "StateFrame") -> "StateFrame":
        result = self.copy()
        return result.add_into(other)

    def __iadd__(self, other: "StateFrame") -> "StateFrame":
        return self.add_into(other)

    # ------------------------------------------------------------------ #
    def scalar_state(self) -> dict:
        """The frame's scalar fields as a plain dict (snapshot metadata).

        The counts array travels separately (raw float64 bytes in the
        snapshot's array section); pairing this dict with the array via
        :meth:`from_scalar_state` reproduces the frame exactly.
        """
        return {
            "num_samples": int(self.num_samples),
            "edges_touched": int(self.edges_touched),
        }

    @classmethod
    def from_scalar_state(cls, state: dict, counts: np.ndarray) -> "StateFrame":
        """Rebuild a frame from :meth:`scalar_state` output plus its counts."""
        return cls(
            num_samples=int(state["num_samples"]),
            counts=np.asarray(counts, dtype=np.float64),
            edges_touched=int(state.get("edges_touched", 0)),
        )

    # ------------------------------------------------------------------ #
    def betweenness_estimates(self) -> np.ndarray:
        """Current normalised estimates ``b~(v) = c~(v) / tau``."""
        if self.num_samples == 0:
            return np.zeros_like(self.counts)
        return self.counts / float(self.num_samples)

    def serialized_bytes(self) -> int:
        """Number of bytes an MPI reduction of this frame would transfer.

        This drives the communication-volume column of Table II: one float64
        per vertex plus the 8-byte sample counter.
        """
        return int(self.counts.nbytes + 8)

    def __repr__(self) -> str:
        return (
            f"StateFrame(tau={self.num_samples}, n={self.counts.size}, "
            f"mass={float(self.counts.sum()):.1f})"
        )
