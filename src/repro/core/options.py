"""User-facing configuration for the KADABRA drivers."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.util.validation import check_positive, check_probability

__all__ = ["KadabraOptions"]


@dataclass(frozen=True)
class KadabraOptions:
    """Options shared by the sequential, shared-memory and MPI drivers.

    Attributes
    ----------
    eps:
        Absolute approximation error; the paper's headline experiments use
        0.001 (and 0.01 for the older shared-memory results).
    delta:
        Failure probability (paper: 0.1).
    seed:
        Master RNG seed; per-thread streams are derived deterministically.
    use_bidirectional_bfs:
        Sample paths with the balanced bidirectional BFS (KADABRA's default)
        or with a plain unidirectional BFS.
    calibration_samples:
        Number of non-adaptive samples in the calibration phase; ``None``
        selects the default heuristic (a fraction of ``omega``).
    samples_per_check:
        Base number of samples taken between stopping-condition checks for a
        single worker (the ``n0`` constant); the distributed drivers scale it
        as ``n0 * (P*T)**1.33`` following Section IV-D.
    epoch_exponent:
        The exponent of the epoch-length rule (1.33 in the paper).
    max_samples_override:
        If set, caps ``omega`` (useful in tests and small experiments).
    vertex_diameter_override:
        If set, skips the diameter phase and uses the given upper bound.
    """

    eps: float = 0.01
    delta: float = 0.1
    seed: Optional[int] = None
    use_bidirectional_bfs: bool = True
    calibration_samples: Optional[int] = None
    samples_per_check: int = 1000
    epoch_exponent: float = 1.33
    max_samples_override: Optional[int] = None
    vertex_diameter_override: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive(self.eps, "eps")
        check_probability(self.delta, "delta")
        if self.samples_per_check <= 0:
            raise ValueError("samples_per_check must be positive")
        if self.epoch_exponent <= 0:
            raise ValueError("epoch_exponent must be positive")
        if self.calibration_samples is not None and self.calibration_samples <= 0:
            raise ValueError("calibration_samples must be positive when given")
        if self.max_samples_override is not None and self.max_samples_override <= 0:
            raise ValueError("max_samples_override must be positive when given")
        if self.vertex_diameter_override is not None and self.vertex_diameter_override < 2:
            raise ValueError("vertex_diameter_override must be >= 2 when given")

    def with_(self, **changes) -> "KadabraOptions":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
