"""Result object returned by all betweenness drivers."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["BetweennessResult", "RESULT_FORMAT_VERSION"]

#: Version tag of the JSON result schema produced by
#: :meth:`BetweennessResult.to_json` (and consumed by ``from_json``).  Bumped
#: whenever a field changes meaning; readers reject unknown versions.
RESULT_FORMAT_VERSION = 1


@dataclass
class BetweennessResult:
    """Approximate (or exact) betweenness scores plus execution metadata.

    Attributes
    ----------
    scores:
        Normalised betweenness estimates, one value per vertex in [0, 1].
    num_samples:
        Total number of samples used (0 for exact algorithms).
    eps, delta:
        The accuracy parameters the estimate was computed for.  The
        :func:`repro.api.estimate_betweenness` facade always echoes the
        requested values, even for exact backends (whose scores are exact
        regardless); results built directly by an exact algorithm leave them
        ``None``.
    omega:
        The static maximum sample count computed by KADABRA (``None``
        otherwise).
    vertex_diameter:
        The vertex-diameter upper bound used for ``omega``.
    num_epochs:
        Number of aggregation rounds performed by a parallel driver.
    samples_drawn, samples_reused:
        Cumulative sample accounting per execution phase: ``samples_reused``
        is how many of ``num_samples`` were already accumulated before the
        producing run/refine phase started (nonzero only for session
        refinement, including service-side ``restore + refine``), and
        ``samples_drawn`` is how many that phase actually sampled.  The
        facade normalises one-shot runs to ``samples_drawn == num_samples``
        and ``samples_reused == 0`` so the refinement savings are always
        directly readable from the result (and its JSON form).
    samples_invalidated:
        How many previously-accumulated samples an incremental update over a
        graph delta discarded and re-sampled (see :mod:`repro.evolve`).
        Always 0 outside the update path; disjoint from ``samples_reused``
        (``samples_reused + samples_invalidated`` is the parent sample
        count an update started from).
    phase_seconds:
        Wall-clock (or simulated) seconds per phase.  The facade guarantees a
        ``"total"`` entry for every backend, exact baselines included.
    extra:
        Driver-specific metadata (e.g. communication volume).
    backend:
        Registry name of the backend that produced the result (set by the
        facade; ``None`` when a driver is invoked directly).
    resources:
        The requested resource configuration (``processes``/``threads``/...)
        as recorded by the facade.

    Results serialize to the stable JSON schema documented in
    ``docs/serving.md`` via :meth:`to_json` / :meth:`to_json_dict` and load
    back with :meth:`from_json` / :meth:`from_json_dict`; the query service
    (:mod:`repro.service`) caches and returns exactly this representation.
    """

    scores: np.ndarray
    num_samples: int = 0
    eps: Optional[float] = None
    delta: Optional[float] = None
    omega: Optional[int] = None
    vertex_diameter: Optional[int] = None
    num_epochs: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)
    backend: Optional[str] = None
    resources: Dict[str, int] = field(default_factory=dict)
    samples_drawn: int = 0
    samples_reused: int = 0
    samples_invalidated: int = 0

    def __post_init__(self) -> None:
        self.scores = np.asarray(self.scores, dtype=np.float64)

    @property
    def num_vertices(self) -> int:
        return int(self.scores.size)

    def top_k(self, k: int) -> List[Tuple[int, float]]:
        """The ``k`` vertices with the highest estimated betweenness."""
        if k <= 0:
            return []
        k = min(k, self.scores.size)
        order = np.argsort(-self.scores, kind="stable")[:k]
        return [(int(v), float(self.scores[v])) for v in order]

    def ranking(self) -> np.ndarray:
        """All vertices ordered by decreasing estimated betweenness."""
        return np.argsort(-self.scores, kind="stable")

    def score_of(self, v: int) -> float:
        """The estimated betweenness of one vertex ``v``."""
        return float(self.scores[int(v)])

    # ------------------------------------------------------------------ #
    # JSON serialization (the schema documented in docs/serving.md)
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> Dict[str, object]:
        """The result as a plain JSON-serializable dict.

        Schema (``format_version`` 1) — identical to what
        :func:`repro.io_utils.save_result` writes and what the query service
        caches and returns over HTTP::

            {"format_version": 1,
             "scores": [..per-vertex float..],
             "num_samples": int, "eps": float|null, "delta": float|null,
             "omega": int|null, "vertex_diameter": int|null,
             "num_epochs": int, "phase_seconds": {phase: seconds},
             "extra": {...}, "backend": str|null,
             "resources": {"processes": int, "threads": int, ...},
             "samples_drawn": int, "samples_reused": int}

        ``samples_drawn``/``samples_reused`` were added for session
        refinement and ``samples_invalidated`` for incremental updates; the
        version stays 1 because the additions are purely additive (old
        payloads load with zero defaults, old readers ignore the extra
        keys).
        """
        return {
            "format_version": RESULT_FORMAT_VERSION,
            "scores": self.scores.tolist(),
            "num_samples": int(self.num_samples),
            "eps": self.eps,
            "delta": self.delta,
            "omega": None if self.omega is None else int(self.omega),
            "vertex_diameter": (
                None if self.vertex_diameter is None else int(self.vertex_diameter)
            ),
            "num_epochs": int(self.num_epochs),
            "phase_seconds": {k: float(v) for k, v in self.phase_seconds.items()},
            "extra": dict(self.extra),
            "backend": self.backend,
            "resources": dict(self.resources),
            "samples_drawn": int(self.samples_drawn),
            "samples_reused": int(self.samples_reused),
            "samples_invalidated": int(self.samples_invalidated),
        }

    def to_json(self) -> str:
        """Serialize to a JSON string (see :meth:`to_json_dict` for the schema)."""
        return json.dumps(self.to_json_dict())

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "BetweennessResult":
        """Rebuild a result from a dict produced by :meth:`to_json_dict`.

        Raises :class:`ValueError` for missing/unsupported ``format_version``
        so stale cache files fail loudly instead of deserializing garbage.
        """
        version = payload.get("format_version")
        if version != RESULT_FORMAT_VERSION:
            raise ValueError(f"unsupported result format version {version!r}")
        return cls(
            scores=np.asarray(payload["scores"], dtype=np.float64),
            num_samples=int(payload["num_samples"]),
            eps=payload.get("eps"),
            delta=payload.get("delta"),
            omega=payload.get("omega"),
            vertex_diameter=payload.get("vertex_diameter"),
            num_epochs=int(payload.get("num_epochs", 0)),
            phase_seconds=dict(payload.get("phase_seconds", {})),
            extra=dict(payload.get("extra", {})),
            backend=payload.get("backend"),
            resources=dict(payload.get("resources", {})),
            samples_drawn=int(payload.get("samples_drawn", 0)),
            samples_reused=int(payload.get("samples_reused", 0)),
            samples_invalidated=int(payload.get("samples_invalidated", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "BetweennessResult":
        """Rebuild a result from a :meth:`to_json` string."""
        return cls.from_json_dict(json.loads(text))

    @property
    def total_time(self) -> float:
        # The facade records an explicit end-to-end "total"; summing it
        # together with the per-phase entries would double-count.
        if "total" in self.phase_seconds:
            return float(self.phase_seconds["total"])
        return float(sum(self.phase_seconds.values()))

    def __repr__(self) -> str:
        backend = f", backend={self.backend!r}" if self.backend is not None else ""
        return (
            f"BetweennessResult(n={self.num_vertices}, samples={self.num_samples}, "
            f"epochs={self.num_epochs}{backend})"
        )
