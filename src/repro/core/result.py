"""Result object returned by all betweenness drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["BetweennessResult"]


@dataclass
class BetweennessResult:
    """Approximate (or exact) betweenness scores plus execution metadata.

    Attributes
    ----------
    scores:
        Normalised betweenness estimates, one value per vertex in [0, 1].
    num_samples:
        Total number of samples used (0 for exact algorithms).
    eps, delta:
        The accuracy parameters the estimate was computed for.  The
        :func:`repro.api.estimate_betweenness` facade always echoes the
        requested values, even for exact backends (whose scores are exact
        regardless); results built directly by an exact algorithm leave them
        ``None``.
    omega:
        The static maximum sample count computed by KADABRA (``None``
        otherwise).
    vertex_diameter:
        The vertex-diameter upper bound used for ``omega``.
    num_epochs:
        Number of aggregation rounds performed by a parallel driver.
    phase_seconds:
        Wall-clock (or simulated) seconds per phase.  The facade guarantees a
        ``"total"`` entry for every backend, exact baselines included.
    extra:
        Driver-specific metadata (e.g. communication volume).
    backend:
        Registry name of the backend that produced the result (set by the
        facade; ``None`` when a driver is invoked directly).
    resources:
        The requested resource configuration (``processes``/``threads``/...)
        as recorded by the facade.
    """

    scores: np.ndarray
    num_samples: int = 0
    eps: Optional[float] = None
    delta: Optional[float] = None
    omega: Optional[int] = None
    vertex_diameter: Optional[int] = None
    num_epochs: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)
    backend: Optional[str] = None
    resources: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.scores = np.asarray(self.scores, dtype=np.float64)

    @property
    def num_vertices(self) -> int:
        return int(self.scores.size)

    def top_k(self, k: int) -> List[Tuple[int, float]]:
        """The ``k`` vertices with the highest estimated betweenness."""
        if k <= 0:
            return []
        k = min(k, self.scores.size)
        order = np.argsort(-self.scores, kind="stable")[:k]
        return [(int(v), float(self.scores[v])) for v in order]

    def ranking(self) -> np.ndarray:
        """All vertices ordered by decreasing estimated betweenness."""
        return np.argsort(-self.scores, kind="stable")

    def score_of(self, v: int) -> float:
        return float(self.scores[int(v)])

    @property
    def total_time(self) -> float:
        # The facade records an explicit end-to-end "total"; summing it
        # together with the per-phase entries would double-count.
        if "total" in self.phase_seconds:
            return float(self.phase_seconds["total"])
        return float(sum(self.phase_seconds.values()))

    def __repr__(self) -> str:
        backend = f", backend={self.backend!r}" if self.backend is not None else ""
        return (
            f"BetweennessResult(n={self.num_vertices}, samples={self.num_samples}, "
            f"epochs={self.num_epochs}{backend})"
        )
