"""Result object returned by all betweenness drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["BetweennessResult"]


@dataclass
class BetweennessResult:
    """Approximate (or exact) betweenness scores plus execution metadata.

    Attributes
    ----------
    scores:
        Normalised betweenness estimates, one value per vertex in [0, 1].
    num_samples:
        Total number of samples used (0 for exact algorithms).
    eps, delta:
        The accuracy parameters the estimate was computed for (``None`` for
        exact algorithms).
    omega:
        The static maximum sample count computed by KADABRA (``None``
        otherwise).
    vertex_diameter:
        The vertex-diameter upper bound used for ``omega``.
    num_epochs:
        Number of aggregation rounds performed by a parallel driver.
    phase_seconds:
        Wall-clock (or simulated) seconds per phase.
    extra:
        Driver-specific metadata (e.g. communication volume).
    """

    scores: np.ndarray
    num_samples: int = 0
    eps: Optional[float] = None
    delta: Optional[float] = None
    omega: Optional[int] = None
    vertex_diameter: Optional[int] = None
    num_epochs: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.scores = np.asarray(self.scores, dtype=np.float64)

    @property
    def num_vertices(self) -> int:
        return int(self.scores.size)

    def top_k(self, k: int) -> List[Tuple[int, float]]:
        """The ``k`` vertices with the highest estimated betweenness."""
        if k <= 0:
            return []
        k = min(k, self.scores.size)
        order = np.argsort(-self.scores, kind="stable")[:k]
        return [(int(v), float(self.scores[v])) for v in order]

    def ranking(self) -> np.ndarray:
        """All vertices ordered by decreasing estimated betweenness."""
        return np.argsort(-self.scores, kind="stable")

    def score_of(self, v: int) -> float:
        return float(self.scores[int(v)])

    @property
    def total_time(self) -> float:
        return float(sum(self.phase_seconds.values()))

    def __repr__(self) -> str:
        return (
            f"BetweennessResult(n={self.num_vertices}, samples={self.num_samples}, "
            f"epochs={self.num_epochs})"
        )
