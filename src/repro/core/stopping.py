"""KADABRA's sample-size bound and adaptive stopping condition.

The stopping rule follows Borassi & Natale (ESA 2016).  With ``tau`` samples
taken, empirical betweenness ``b~(v)``, per-vertex failure probabilities
``delta_L(v)`` and ``delta_U(v)`` and the static maximum number of samples
``omega``, the algorithm may stop as soon as for *every* vertex ``v``

    f(b~(v), delta_L(v), omega, tau) <= eps   and
    g(b~(v), delta_U(v), omega, tau) <= eps.

``f`` bounds the probability that the estimate overshoots the true value and
``g`` the probability that it undershoots; both shrink as ``tau`` grows.  The
functions are not monotone in ``c~``/``tau`` jointly, which is why the parallel
algorithms must always evaluate them on a *consistent* aggregated state frame.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.state_frame import StateFrame
from repro.util.validation import check_positive, check_probability

__all__ = [
    "compute_omega",
    "f_function",
    "g_function",
    "StoppingCondition",
    "CheckSchedule",
]

#: Universal constant of the VC-dimension style sample-size bound used by
#: KADABRA (and by RK before it).
OMEGA_CONSTANT = 0.5


def compute_omega(eps: float, delta: float, vertex_diameter: int, *, constant: float = OMEGA_CONSTANT) -> int:
    """Static maximum number of samples ``omega``.

    ``omega = (c / eps^2) * (floor(log2(VD - 2)) + 1 + log(2 / delta))`` where
    ``VD`` is an upper bound on the vertex diameter.  For degenerate inputs
    (``VD <= 2``, e.g. a single edge) the log term is taken as zero.
    """
    check_positive(eps, "eps")
    check_probability(delta, "delta")
    if vertex_diameter < 0:
        raise ValueError("vertex_diameter must be non-negative")
    if vertex_diameter > 2:
        log_term = math.floor(math.log2(vertex_diameter - 2)) + 1
    else:
        log_term = 1
    omega = (constant / (eps * eps)) * (log_term + math.log(2.0 / delta))
    return int(math.ceil(omega))


def f_function(
    b_tilde: np.ndarray | float,
    delta_l: np.ndarray | float,
    omega: float,
    tau: float,
) -> np.ndarray | float:
    """Upper-deviation bound ``f`` (vectorized over vertices).

    ``f = (log(1/delta_L) / tau) * (sqrt((omega/tau - 1/3)^2
    + 2 b~ omega / log(1/delta_L)) - (omega/tau - 1/3))``
    """
    if tau <= 0:
        raise ValueError("tau must be positive")
    b = np.asarray(b_tilde, dtype=np.float64)
    log_term = np.log(1.0 / np.asarray(delta_l, dtype=np.float64))
    ratio = omega / float(tau) - 1.0 / 3.0
    inner = np.sqrt(ratio * ratio + 2.0 * b * omega / log_term) - ratio
    result = inner * log_term / float(tau)
    if np.isscalar(b_tilde) and np.isscalar(delta_l):
        return float(result)
    return result


def g_function(
    b_tilde: np.ndarray | float,
    delta_u: np.ndarray | float,
    omega: float,
    tau: float,
) -> np.ndarray | float:
    """Lower-deviation bound ``g`` (vectorized over vertices).

    ``g = (log(1/delta_U) / tau) * (sqrt((omega/tau + 1/3)^2
    + 2 b~ omega / log(1/delta_U)) + (omega/tau + 1/3))``
    """
    if tau <= 0:
        raise ValueError("tau must be positive")
    b = np.asarray(b_tilde, dtype=np.float64)
    log_term = np.log(1.0 / np.asarray(delta_u, dtype=np.float64))
    ratio = omega / float(tau) + 1.0 / 3.0
    inner = np.sqrt(ratio * ratio + 2.0 * b * omega / log_term) + ratio
    result = inner * log_term / float(tau)
    if np.isscalar(b_tilde) and np.isscalar(delta_u):
        return float(result)
    return result


@dataclass
class StoppingCondition:
    """Evaluates KADABRA's stopping rule on aggregated state frames.

    Parameters
    ----------
    eps:
        Target absolute error.
    omega:
        Static maximum number of samples; the rule always stops once
        ``tau >= omega``.
    delta_l, delta_u:
        Per-vertex failure probabilities produced by the calibration phase.
    """

    eps: float
    omega: int
    delta_l: np.ndarray
    delta_u: np.ndarray

    def __post_init__(self) -> None:
        check_positive(self.eps, "eps")
        if self.omega <= 0:
            raise ValueError("omega must be positive")
        self.delta_l = np.asarray(self.delta_l, dtype=np.float64)
        self.delta_u = np.asarray(self.delta_u, dtype=np.float64)
        if self.delta_l.shape != self.delta_u.shape:
            raise ValueError("delta_l and delta_u must have the same shape")
        if np.any(self.delta_l <= 0) or np.any(self.delta_l >= 1):
            raise ValueError("delta_l values must lie in (0, 1)")
        if np.any(self.delta_u <= 0) or np.any(self.delta_u >= 1):
            raise ValueError("delta_u values must lie in (0, 1)")

    @property
    def num_vertices(self) -> int:
        return int(self.delta_l.size)

    # ------------------------------------------------------------------ #
    def max_error_bounds(self, frame: StateFrame) -> tuple[float, float]:
        """Return ``(max_v f, max_v g)`` for the aggregated frame."""
        if frame.num_samples <= 0:
            return float("inf"), float("inf")
        b_tilde = frame.betweenness_estimates()
        f_vals = f_function(b_tilde, self.delta_l, self.omega, frame.num_samples)
        g_vals = g_function(b_tilde, self.delta_u, self.omega, frame.num_samples)
        return float(np.max(f_vals)), float(np.max(g_vals))

    def should_stop(self, frame: StateFrame) -> bool:
        """CHECKFORSTOP: true when the accuracy guarantee is reached or the
        static sample budget ``omega`` is exhausted."""
        if frame.num_samples >= self.omega:
            return True
        if frame.num_samples <= 0:
            return False
        f_max, g_max = self.max_error_bounds(frame)
        return f_max <= self.eps and g_max <= self.eps


@dataclass(frozen=True)
class CheckSchedule:
    """The deterministic grid of sample counts where a sequential run checks.

    A one-shot adaptive run evaluates the stopping rule first when the
    calibration samples are in (``tau = calibration_samples``) and then after
    every block of ``samples_per_check`` further samples, never drawing past
    ``omega`` — so its check boundaries are exactly

        ``min(calibration_samples + k * samples_per_check, omega)``.

    Making the grid an explicit object is what lets a *resumed* session align
    itself with the schedule a fresh run at the tighter target would follow:
    :meth:`next_boundary` returns the first boundary at or past the current
    sample count, and drawing up to it puts the resumed run back on the exact
    decision points of the cold run (the sample *stream* is position-based, so
    the accumulated counters agree at every shared boundary).
    """

    calibration_samples: int
    samples_per_check: int
    omega: int

    def __post_init__(self) -> None:
        if self.calibration_samples < 0:
            raise ValueError("calibration_samples must be non-negative")
        if self.samples_per_check <= 0:
            raise ValueError("samples_per_check must be positive")
        if self.omega <= 0:
            raise ValueError("omega must be positive")

    @property
    def first_check(self) -> int:
        return min(self.calibration_samples, self.omega)

    def next_boundary(self, tau: int) -> int:
        """The first check boundary at or after ``tau`` (clamped to omega)."""
        if tau >= self.omega:
            return self.omega
        if tau <= self.first_check:
            return self.first_check
        blocks_done = -(-(tau - self.calibration_samples) // self.samples_per_check)
        return min(
            self.calibration_samples + blocks_done * self.samples_per_check,
            self.omega,
        )

    def advance(self, tau: int) -> int:
        """Samples to draw from boundary ``tau`` to the next check (0 at omega)."""
        if tau >= self.omega:
            return 0
        return min(self.samples_per_check, self.omega - tau)
