"""Sequential KADABRA: the reference adaptive-sampling driver.

The three phases of Section III-A:

1. *Diameter*: compute an upper bound on the vertex diameter, which enters
   the static sample budget ``omega``.
2. *Calibration*: take a fixed number of samples non-adaptively and derive the
   per-vertex failure probabilities ``delta_L`` / ``delta_U``.
3. *Adaptive sampling*: keep sampling, periodically evaluating the stopping
   condition on the aggregated state, until the accuracy guarantee holds (or
   ``omega`` samples have been taken).

The parallel drivers in :mod:`repro.parallel` and :mod:`repro.epoch` reuse the
phase implementations in this module; only the orchestration of phase 3
differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.calibration import calibrate_deltas, calibration_sample_count
from repro.core.options import KadabraOptions
from repro.core.result import BetweennessResult
from repro.core.state_frame import StateFrame
from repro.core.stopping import StoppingCondition, compute_omega
from repro.diameter import vertex_diameter_upper_bound
from repro.graph.csr import CSRGraph
from repro.kernels import plan_batches, resolve_batch_size
from repro.sampling import BidirectionalBFSSampler, PathSampler, UnidirectionalBFSSampler
from repro.util.deprecation import warn_legacy_entry_point
from repro.util.progress import ProgressCallback, ProgressEvent
from repro.util.timer import PhaseTimer

__all__ = [
    "KadabraBetweenness",
    "prepare_stopping_condition",
    "make_sampler",
    "make_batch_sampler",
]


def make_sampler(
    graph: CSRGraph, options: KadabraOptions, *, kernel: Optional[str] = None
) -> PathSampler:
    """Instantiate the path sampler selected by the options.

    The returned sampler is a scalar shim over the pooled batch kernels; the
    drivers call its :meth:`~repro.sampling.base.PathSampler.sample_batch` to
    amortise per-sample overhead.  Each call creates an independent sampler
    (and scratch pool), so per-thread factories stay thread safe.  ``kernel``
    forces a specific registered kernel (see :mod:`repro.kernels.abi`);
    ``None`` uses automatic routing.

    Graph-shaped objects that cannot expose contiguous CSR arrays (e.g. a
    :class:`~repro.store.partition.PartitionedGraphView`) advertise a
    ``native_sampler`` hook, which wins over the kernel samplers; this keeps
    the core free of store imports while letting the unchanged drivers run on
    sharded adjacency.
    """
    native = getattr(graph, "native_sampler", None)
    if native is not None:
        return native(options, kernel=kernel)
    if options.use_bidirectional_bfs:
        return BidirectionalBFSSampler(graph, kernel=kernel)
    return UnidirectionalBFSSampler(graph, kernel=kernel)


def make_batch_sampler(
    graph: CSRGraph,
    options: KadabraOptions,
    *,
    pair_strategy: str = "interleaved",
    kernel: Optional[str] = None,
):
    """A :class:`~repro.kernels.BatchPathSampler` for the selected kernel.

    ``pair_strategy="interleaved"`` (default) keeps the RNG stream identical
    to the scalar samplers; ``"vectorized"`` draws all pairs of a batch with
    bulk ``rng.integers`` calls (used by the non-adaptive RK baseline).
    ``kernel`` overrides the ABI's automatic kernel routing.
    """
    from repro.kernels import BatchPathSampler

    method = "bidirectional" if options.use_bidirectional_bfs else "unidirectional"
    return BatchPathSampler(
        graph, method=method, pair_strategy=pair_strategy, kernel=kernel
    )


def prepare_stopping_condition(
    graph: CSRGraph,
    options: KadabraOptions,
    sampler: PathSampler,
    rng: np.random.Generator,
    *,
    timer: Optional[PhaseTimer] = None,
    progress: Optional[ProgressCallback] = None,
    batch_size="auto",
) -> Tuple[StoppingCondition, StateFrame, int, int]:
    """Run the diameter and calibration phases.

    Returns ``(stopping_condition, calibration_frame, omega, vertex_diameter)``.
    The calibration frame already contains the non-adaptive samples and must be
    carried into the adaptive phase so that no work is wasted.  When a
    ``progress`` callback is given it is invoked after each phase.  The
    calibration samples are drawn in batches (``batch_size`` as in
    :func:`repro.kernels.plan_batches`); the interleaved pair strategy keeps
    the stream identical to per-sample drawing.
    """
    timer = timer if timer is not None else PhaseTimer()
    batch_size = resolve_batch_size(batch_size)

    with timer.phase("diameter"):
        if options.vertex_diameter_override is not None:
            vd = int(options.vertex_diameter_override)
        else:
            vd = vertex_diameter_upper_bound(graph, seed=options.seed)
            vd = max(vd, 2)
    omega = compute_omega(options.eps, options.delta, vd)
    if options.max_samples_override is not None:
        omega = min(omega, int(options.max_samples_override))
    if progress is not None:
        progress(ProgressEvent(phase="diameter", omega=omega))

    with timer.phase("calibration"):
        num_calibration = calibration_sample_count(
            options.calibration_samples, omega, graph.num_vertices
        )
        frame = StateFrame.zeros(graph.num_vertices)
        for take in plan_batches(num_calibration, batch_size):
            frame.record_batch(sampler.sample_batch(take, rng))
        calibration = calibrate_deltas(frame, options.delta, eps=options.eps)

    condition = StoppingCondition(
        eps=options.eps,
        omega=omega,
        delta_l=calibration.delta_l,
        delta_u=calibration.delta_u,
    )
    if progress is not None:
        progress(
            ProgressEvent(phase="calibration", num_samples=frame.num_samples, omega=omega)
        )
    return condition, frame, omega, vd


@dataclass
class _SequentialKadabra:
    """Sequential KADABRA betweenness approximation (implementation).

    Example
    -------
    >>> from repro.graph.generators import barabasi_albert
    >>> from repro.api import estimate_betweenness
    >>> graph = barabasi_albert(200, 3, seed=1)
    >>> result = estimate_betweenness(graph, algorithm="sequential", eps=0.05, seed=1)
    >>> len(result.scores) == graph.num_vertices
    True
    """

    graph: CSRGraph
    options: KadabraOptions = field(default_factory=KadabraOptions)
    progress: Optional[ProgressCallback] = None
    batch_size: object = "auto"
    kernel: Optional[str] = None

    def run(self) -> BetweennessResult:
        """One-shot run, implemented as a single-use estimation session.

        The session's native engine is the (refactored) sequential KADABRA
        loop: diameter -> calibration -> check/draw epochs on the
        :class:`~repro.core.stopping.CheckSchedule` grid.  For a fixed seed
        the sample stream and estimates are bit-identical to the pre-session
        driver; on top of that, callers that keep the session instead of this
        shim gain ``refine``/``checkpoint``/``peek`` (see
        :mod:`repro.session`).
        """
        from repro.session import EstimationSession

        session = EstimationSession(
            self.graph,
            self.options,
            progress=self.progress,
            batch_size=resolve_batch_size(self.batch_size),
            kernel=self.kernel,
        )
        return session.run()


class KadabraBetweenness(_SequentialKadabra):
    """Deprecated entry point for sequential KADABRA.

    Use :func:`repro.estimate_betweenness` with ``algorithm="sequential"``
    (or ``"auto"``); this class remains as a thin shim and will be removed in
    a future release.
    """

    def __init__(self, *args, **kwargs) -> None:
        warn_legacy_entry_point("KadabraBetweenness", "sequential")
        super().__init__(*args, **kwargs)
