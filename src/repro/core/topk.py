"""Top-k betweenness identification on top of the KADABRA estimates.

The paper motivates the small-eps regime by the need to *reliably identify the
vertices with the highest betweenness*: on the twitter graph only 38 of 41
million vertices have a score above 0.01, so an absolute error of 0.01 can only
separate that handful.  This module turns a finished
:class:`~repro.core.result.BetweennessResult` into the set of vertices that are
*provably* (up to the algorithm's failure probability) among the top-k, using
the same per-vertex confidence bounds f/g that drive the stopping rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.result import BetweennessResult
from repro.core.stopping import f_function, g_function

__all__ = ["TopKResult", "confidence_bounds", "identify_top_k", "detectable_vertices"]


@dataclass
class TopKResult:
    """Outcome of a top-k identification.

    Attributes
    ----------
    k:
        Requested number of top vertices.
    vertices:
        The k vertices with the highest estimates, in decreasing order.
    confirmed:
        Boolean array aligned with ``vertices``: ``True`` where the vertex's
        lower confidence bound exceeds the upper confidence bound of the first
        vertex outside the top-k, i.e. the membership is statistically
        separated at the run's confidence level.
    lower_bounds, upper_bounds:
        Per-vertex confidence interval endpoints (length ``n``).
    """

    k: int
    vertices: np.ndarray
    confirmed: np.ndarray
    lower_bounds: np.ndarray
    upper_bounds: np.ndarray

    @property
    def num_confirmed(self) -> int:
        return int(np.count_nonzero(self.confirmed))

    @property
    def all_confirmed(self) -> bool:
        return bool(np.all(self.confirmed))


def confidence_bounds(
    result: BetweennessResult,
    delta_l: Optional[np.ndarray] = None,
    delta_u: Optional[np.ndarray] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-vertex confidence intervals derived from the f/g error bounds.

    With the calibration vectors ``delta_l``/``delta_u`` (which a live
    :class:`~repro.session.EstimationSession` retains) the intervals are
    exactly the ones the stopping rule certified; without them a uniform
    split of the run's ``delta`` is used — always sound, merely looser.
    """
    n = result.num_vertices
    if result.num_samples <= 0 or result.omega is None:
        width = np.full(n, np.inf)
        return result.scores - width, result.scores + width
    if delta_l is None or delta_u is None:
        # Without the calibration vectors, fall back to a uniform split of the
        # run's delta over vertices and sides (always sound, merely looser).
        delta = result.delta if result.delta is not None else 0.1
        per_vertex = np.full(n, max(delta / (2.0 * n), 1e-300))
        delta_l = per_vertex
        delta_u = per_vertex
    f_vals = f_function(result.scores, delta_l, result.omega, result.num_samples)
    g_vals = g_function(result.scores, delta_u, result.omega, result.num_samples)
    lower = np.maximum(result.scores - np.asarray(f_vals), 0.0)
    upper = np.minimum(result.scores + np.asarray(g_vals), 1.0)
    return lower, upper


def identify_top_k(
    result: BetweennessResult,
    k: int,
    *,
    delta_l: Optional[np.ndarray] = None,
    delta_u: Optional[np.ndarray] = None,
) -> TopKResult:
    """Return the top-k vertices and flag which memberships are confirmed.

    A vertex's membership is *confirmed* when its lower confidence bound is at
    least the largest upper confidence bound among vertices outside the
    top-k — then no vertex outside the set can overtake it within the
    algorithm's error guarantee.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    n = result.num_vertices
    k = min(k, n)
    lower, upper = confidence_bounds(result, delta_l, delta_u)
    order = np.argsort(-result.scores, kind="stable")
    top = order[:k]
    rest = order[k:]
    threshold = float(np.max(upper[rest])) if rest.size > 0 else -np.inf
    confirmed = lower[top] >= threshold
    return TopKResult(
        k=k,
        vertices=top,
        confirmed=np.asarray(confirmed, dtype=bool),
        lower_bounds=lower,
        upper_bounds=upper,
    )


def detectable_vertices(result: BetweennessResult, *, margin: float = 2.0) -> List[int]:
    """Vertices whose estimate exceeds ``margin * eps``.

    This is the paper's notion of "reliably detectable" vertices: with an
    additive guarantee of eps, only scores comfortably above eps can be
    distinguished from zero.  Returns vertex ids in decreasing score order.
    """
    if result.eps is None:
        raise ValueError("result carries no eps (exact algorithms have none)")
    if margin <= 0:
        raise ValueError("margin must be positive")
    threshold = margin * result.eps
    candidates = np.flatnonzero(result.scores > threshold)
    return sorted((int(v) for v in candidates), key=lambda v: -result.scores[v])
