"""KADABRA core: state frames, stopping rule, calibration and the sequential driver."""

from repro.core.state_frame import StateFrame
from repro.core.stopping import StoppingCondition, compute_omega, f_function, g_function
from repro.core.calibration import CalibrationResult, calibrate_deltas, default_calibration_samples
from repro.core.options import KadabraOptions
from repro.core.result import BetweennessResult
from repro.core.kadabra import KadabraBetweenness, prepare_stopping_condition, make_sampler
from repro.core.topk import TopKResult, identify_top_k, detectable_vertices

__all__ = [
    "TopKResult",
    "identify_top_k",
    "detectable_vertices",
    "StateFrame",
    "StoppingCondition",
    "compute_omega",
    "f_function",
    "g_function",
    "CalibrationResult",
    "calibrate_deltas",
    "default_calibration_samples",
    "KadabraOptions",
    "BetweennessResult",
    "KadabraBetweenness",
    "prepare_stopping_condition",
    "make_sampler",
]
