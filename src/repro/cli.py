"""Command-line interface: approximate betweenness for an edge-list graph.

Usage::

    python -m repro.cli INPUT_EDGE_LIST [--eps 0.01] [--delta 0.1]
        [--algorithm sequential|shared-memory|distributed|rk|exact]
        [--processes P] [--threads T] [--top 10] [--output scores.json]

The input is a whitespace-separated edge list (KONECT/SNAP style, ``.gz``
supported); disconnected inputs are reduced to their largest connected
component, exactly as in the paper's evaluation.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterable, Optional

from repro.baselines import RKBetweenness, brandes_betweenness
from repro.core import KadabraBetweenness, KadabraOptions
from repro.graph import largest_connected_component, read_edge_list
from repro.io_utils import save_result, save_scores_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-betweenness",
        description="Approximate betweenness centrality (KADABRA / MPI-style parallel KADABRA).",
    )
    parser.add_argument("graph", help="edge-list file (whitespace separated, optionally .gz)")
    parser.add_argument("--eps", type=float, default=0.01, help="absolute error bound (default 0.01)")
    parser.add_argument("--delta", type=float, default=0.1, help="failure probability (default 0.1)")
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    parser.add_argument(
        "--algorithm",
        choices=["sequential", "shared-memory", "distributed", "rk", "exact"],
        default="sequential",
        help="which driver to run (default: sequential KADABRA)",
    )
    parser.add_argument("--processes", type=int, default=2, help="ranks for --algorithm distributed")
    parser.add_argument("--threads", type=int, default=2, help="threads per rank / shared-memory threads")
    parser.add_argument("--top", type=int, default=10, help="number of top vertices to print")
    parser.add_argument("--output", default=None, help="write the full result as JSON")
    parser.add_argument("--csv", default=None, help="write per-vertex scores as CSV")
    return parser


def _run(args: argparse.Namespace):
    graph = largest_connected_component(read_edge_list(args.graph))
    options = KadabraOptions(eps=args.eps, delta=args.delta, seed=args.seed)
    if args.algorithm == "sequential":
        return graph, KadabraBetweenness(graph, options).run()
    if args.algorithm == "shared-memory":
        from repro.epoch import SharedMemoryKadabra

        return graph, SharedMemoryKadabra(graph, options, num_threads=args.threads).run()
    if args.algorithm == "distributed":
        from repro.parallel import DistributedKadabra

        driver = DistributedKadabra(
            graph, options, num_processes=args.processes, threads_per_process=args.threads
        )
        return graph, driver.run()
    if args.algorithm == "rk":
        return graph, RKBetweenness(graph, options).run()
    if args.algorithm == "exact":
        return graph, brandes_betweenness(graph)
    raise ValueError(f"unknown algorithm {args.algorithm!r}")  # pragma: no cover


def main(argv: Optional[Iterable[str]] = None) -> int:
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    start = time.perf_counter()
    graph, result = _run(args)
    elapsed = time.perf_counter() - start

    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges (largest component)")
    print(f"algorithm: {args.algorithm}, eps={args.eps}, delta={args.delta}")
    if result.num_samples:
        print(f"samples: {result.num_samples} (omega={result.omega}), epochs: {result.num_epochs}")
    print(f"wall-clock time: {elapsed:.2f} s")
    print(f"top-{args.top} vertices:")
    for vertex, score in result.top_k(args.top):
        print(f"  {vertex:10d}  {score:.6f}")

    if args.output:
        save_result(result, args.output)
        print(f"result written to {args.output}")
    if args.csv:
        save_scores_csv(result, args.csv)
        print(f"scores written to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
