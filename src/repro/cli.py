"""Command-line interface: approximate betweenness for an edge-list graph.

Usage::

    python -m repro.cli INPUT_EDGE_LIST [--eps 0.01] [--delta 0.1]
        [--algorithm auto|sequential|shared-memory|distributed|...]
        [--processes P] [--threads T] [--top 10] [--output scores.json]
    python -m repro.cli --list-backends

The ``--algorithm`` choices are derived from the backend registry in
:mod:`repro.api`; ``--list-backends`` prints the capability table.  The input
is a whitespace-separated edge list (KONECT/SNAP style, ``.gz`` supported);
disconnected inputs are reduced to their largest connected component, exactly
as in the paper's evaluation.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Iterable, Optional

from repro.api import AUTO, Resources, backend_names, estimate_betweenness, format_backend_table
from repro.graph import largest_connected_component, read_edge_list
from repro.io_utils import save_result, save_scores_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-betweenness",
        description="Approximate betweenness centrality (KADABRA / MPI-style parallel KADABRA).",
    )
    parser.add_argument(
        "graph",
        nargs="?",
        help="edge-list file (whitespace separated, optionally .gz)",
    )
    parser.add_argument("--eps", type=float, default=0.01, help="absolute error bound (default 0.01)")
    parser.add_argument("--delta", type=float, default=0.1, help="failure probability (default 0.1)")
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    parser.add_argument(
        "--algorithm",
        choices=[AUTO, *backend_names()],
        default="sequential",
        help="which backend to run, or 'auto' to pick one from graph size and "
        "resources (default: sequential KADABRA)",
    )
    parser.add_argument(
        "--processes", type=int, default=1, help="ranks for distributed backends (default 1)"
    )
    parser.add_argument(
        "--threads", type=int, default=1, help="threads per rank / shared-memory threads (default 1)"
    )
    parser.add_argument("--top", type=int, default=10, help="number of top vertices to print")
    parser.add_argument("--output", default=None, help="write the full result as JSON")
    parser.add_argument("--csv", default=None, help="write per-vertex scores as CSV")
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-phase/per-epoch progress to stderr while running",
    )
    parser.add_argument(
        "--list-backends",
        action="store_true",
        help="list the registered backends with their capabilities and exit",
    )
    from repro import __version__

    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    return parser


def _progress_printer(event) -> None:
    budget = f"/{event.omega}" if event.omega is not None else ""
    print(
        f"[{event.backend}] {event.phase}: epoch {event.epoch}, "
        f"samples {event.num_samples}{budget}",
        file=sys.stderr,
    )


def main(argv: Optional[Iterable[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.list_backends:
        print(format_backend_table())
        return 0
    if args.graph is None:
        print("error: the graph argument is required (or use --list-backends)", file=sys.stderr)
        return 2
    if not Path(args.graph).exists():
        print(f"error: edge-list file not found: {args.graph}", file=sys.stderr)
        return 2

    try:
        graph = largest_connected_component(read_edge_list(args.graph))
    except (OSError, ValueError) as exc:
        print(f"error: cannot read edge-list file {args.graph}: {exc}", file=sys.stderr)
        return 2

    start = time.perf_counter()
    result = estimate_betweenness(
        graph,
        algorithm=args.algorithm,
        eps=args.eps,
        delta=args.delta,
        seed=args.seed,
        resources=Resources(processes=args.processes, threads=args.threads),
        callbacks=_progress_printer if args.progress else None,
    )
    elapsed = time.perf_counter() - start

    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges (largest component)")
    print(f"algorithm: {result.backend}, eps={result.eps}, delta={result.delta}")
    if result.num_samples:
        print(f"samples: {result.num_samples} (omega={result.omega}), epochs: {result.num_epochs}")
    print(f"wall-clock time: {elapsed:.2f} s")
    print(f"top-{args.top} vertices:")
    for vertex, score in result.top_k(args.top):
        print(f"  {vertex:10d}  {score:.6f}")

    if args.output:
        save_result(result, args.output)
        print(f"result written to {args.output}")
    if args.csv:
        save_scores_csv(result, args.csv)
        print(f"scores written to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
