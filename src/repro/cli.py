"""Command-line interface: approximate betweenness for an edge-list graph.

Usage::

    python -m repro.cli INPUT_GRAPH [--eps 0.01] [--delta 0.1]
        [--algorithm auto|sequential|shared-memory|distributed|...]
        [--processes P] [--threads T] [--top 10] [--output scores.json]
    python -m repro.cli convert INPUT [OUTPUT] [--format auto|edgelist|metis]
    python -m repro.cli info GRAPH_OR_NAME [--json]
    python -m repro.cli serve [--host H] [--port P] [--workers N]
        [--store JOBS.sqlite3] [--dispatch pool|external]
        [--max-inflight N] [--max-queued N]
    python -m repro.cli worker --store JOBS.sqlite3 [--max-jobs N] [...]
    python -m repro.cli query GRAPH [--eps 0.01] [--delta 0.1] [--port P]
    python -m repro.cli cache ls|evict [...]
    python -m repro.cli session run GRAPH --checkpoint S [--eps E] [...]
    python -m repro.cli session refine SNAPSHOT --eps E [--delta D] [...]
    python -m repro.cli session checkpoint SNAPSHOT [--json]
    python -m repro.cli evolve apply GRAPH --delta-file D.json [--name N]
    python -m repro.cli evolve run GRAPH --snapshot S [--delta-file D.json] [...]
    python -m repro.cli obs TRACE.jsonl [--json] [--limit N]
    python -m repro.cli --list-backends

The ``--algorithm`` choices are derived from the backend registry in
:mod:`repro.api`; ``--list-backends`` prints the capability table.  The input
is a whitespace-separated edge list (KONECT/SNAP style, ``.gz`` supported) or
a binary ``.rcsr`` container (see :mod:`repro.store`): text inputs are
converted into the graph cache on first touch and every later run opens the
binary form zero-copy; ``--no-cache`` forces a plain text parse.  Disconnected
inputs are reduced to their largest connected component, exactly as in the
paper's evaluation (skipped without a copy when the catalog metadata already
proves the graph connected).

``serve`` starts the cached query service of :mod:`repro.service` (see
``docs/serving.md``), ``worker`` starts a store-draining estimation worker
(N of them against one ``--store`` scale the service horizontally), ``query``
talks to a running service, and ``cache`` inspects/evicts its on-disk result
cache.

``session`` exposes the resumable-session layer (see ``docs/sessions.md``):
``session run`` estimates and writes a checkpoint, ``session refine``
restores a checkpoint and tightens eps/delta by drawing only the additional
samples, and ``session checkpoint`` inspects a snapshot file.

``obs`` pretty-prints a phase trace (a ``$REPRO_TRACE`` JSONL file or a
result JSON carrying ``extra.trace``) as a per-phase time breakdown; see
``docs/observability.md``.

``evolve`` exposes the evolving-graph layer (see ``docs/evolving.md``):
``evolve apply`` applies an edge-delta JSON file to a stored graph,
producing a versioned child ``.rcsr`` with a lineage record, and ``evolve
run`` carries a session checkpoint across the delta — invalidating only the
samples the mutation touched and re-certifying on the mutated graph.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Iterable, Optional, Tuple

from repro.api import AUTO, Resources, backend_names, estimate_betweenness, format_backend_table
from repro.graph import CSRGraph, largest_connected_component, read_edge_list
from repro.io_utils import save_result, save_scores_csv

__all__ = [
    "main",
    "build_parser",
    "build_convert_parser",
    "build_info_parser",
    "build_serve_parser",
    "build_query_parser",
    "build_cache_parser",
    "build_session_parser",
    "build_evolve_parser",
    "build_obs_parser",
    "build_dist_parser",
]

SUBCOMMANDS = (
    "convert", "info", "serve", "worker", "query", "cache", "session", "evolve", "obs", "dist",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-betweenness",
        description="Approximate betweenness centrality (KADABRA / MPI-style parallel KADABRA).",
        epilog="Subcommands: 'convert' (edge list -> .rcsr store), 'info' "
        "(stored-graph metadata), 'serve' (cached query service), 'query' "
        "(ask a running service), 'cache' (result-cache ls/evict), 'session' "
        "(resumable estimation sessions) and 'evolve' (edge deltas and "
        "incremental updates on evolving graphs); each "
        "has its own --help.  A graph file literally named like a subcommand "
        "can be forced positional with '--', e.g. 'repro-betweenness --eps "
        "0.1 -- convert'.  Docs: README.md (quickstart), docs/architecture.md "
        "(pipeline), docs/serving.md (service API), docs/formats.md "
        "(.rcsr container).",
    )
    parser.add_argument(
        "graph",
        nargs="?",
        help="graph input: edge-list file (whitespace separated, optionally .gz), "
        "an .rcsr store file, or a dataset name registered in the graph catalog",
    )
    parser.add_argument("--eps", type=float, default=0.01, help="absolute error bound (default 0.01)")
    parser.add_argument("--delta", type=float, default=0.1, help="failure probability (default 0.1)")
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    parser.add_argument(
        "--algorithm",
        choices=[AUTO, *backend_names()],
        default="sequential",
        help="which backend to run, or 'auto' to pick one from graph size and "
        "resources (default: sequential KADABRA)",
    )
    parser.add_argument(
        "--processes", type=int, default=1, help="ranks for distributed backends (default 1)"
    )
    parser.add_argument(
        "--threads", type=int, default=1, help="threads per rank / shared-memory threads (default 1)"
    )
    parser.add_argument(
        "--batch-size",
        default="auto",
        help="sampling batch size for kernel-backed backends: 'auto' (adaptive "
        "ramp, default) or a positive integer (1 = per-sample driving)",
    )
    parser.add_argument(
        "--kernel",
        default=None,
        metavar="NAME",
        help="force a registered sampling kernel (see --list-kernels) instead "
        "of automatic size/dtype routing; also settable via $REPRO_KERNEL",
    )
    parser.add_argument("--top", type=int, default=10, help="number of top vertices to print")
    parser.add_argument("--output", default=None, help="write the full result as JSON")
    parser.add_argument("--csv", default=None, help="write per-vertex scores as CSV")
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="parse text inputs directly instead of auto-converting them into "
        "the binary graph cache ($REPRO_GRAPH_CACHE)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-phase/per-epoch progress to stderr while running",
    )
    parser.add_argument(
        "--list-backends",
        action="store_true",
        help="list the registered backends with their capabilities and exit",
    )
    parser.add_argument(
        "--list-kernels",
        action="store_true",
        help="list the registered sampling kernels (ABI registry) and exit",
    )
    from repro import __version__

    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    return parser


def build_convert_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-betweenness convert",
        description="Convert a text graph (edge list or METIS) to the binary "
        ".rcsr store, streaming it out of core.",
    )
    parser.add_argument("input", help="source graph file (edge list, .gz, or METIS)")
    parser.add_argument(
        "output",
        nargs="?",
        default=None,
        help="destination .rcsr path (default: the graph cache directory)",
    )
    parser.add_argument(
        "--format",
        choices=("auto", "edgelist", "metis"),
        default="auto",
        help="input format (default: sniffed from the file suffix)",
    )
    parser.add_argument(
        "--chunk-bytes",
        type=int,
        default=None,
        help="streaming parse chunk size in bytes (default 16 MiB)",
    )
    parser.add_argument(
        "--force", action="store_true", help="re-convert even if a fresh cached conversion exists"
    )
    parser.epilog = (
        "The on-disk container format and the conversion pipeline are "
        "documented in docs/formats.md."
    )
    return parser


def build_info_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-betweenness info",
        description="Show the cached metadata sidecar of a stored graph "
        "(vertices, edges, max degree, components, diameter estimate, checksum), "
        "computing it first if necessary.  Text inputs are converted on first touch.",
    )
    parser.add_argument("graph", help=".rcsr file, text graph file, or registered dataset name")
    parser.add_argument("--json", action="store_true", help="emit the sidecar as JSON")
    parser.epilog = "The sidecar fields are documented in docs/formats.md."
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-betweenness serve",
        description="Start the cached betweenness query service: JSON-over-HTTP "
        "queries, an asyncio job queue with in-flight deduplication, and a "
        "persistent dominance-aware result cache (a cached run at tighter "
        "eps/delta on the same graph answers looser requests in O(ms)).",
        epilog="Endpoints, request/response JSON and the reuse semantics are "
        "documented in docs/serving.md.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=8321, help="bind port (default 8321; 0 = ephemeral)"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="concurrent estimation workers (default 1)"
    )
    parser.add_argument(
        "--worker-mode",
        choices=("process", "thread"),
        default="process",
        help="run estimations in a process pool (default; sampling is CPU-bound) "
        "or a thread pool",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=1,
        help="sampling threads per estimation (Resources.threads, default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $REPRO_RESULT_CACHE or "
        "'results' next to the graph cache)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="durable job-store SQLite file (default: jobs.sqlite3 in the "
        "result-cache directory); share it between coordinators and workers",
    )
    parser.add_argument(
        "--dispatch",
        choices=("pool", "external"),
        default="pool",
        help="run estimations in this process's worker pool (default) or only "
        "enqueue them for separate 'repro-betweenness worker' processes",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="per-tenant cap on live (queued+running) jobs; over it -> HTTP 429",
    )
    parser.add_argument(
        "--max-queued",
        type=int,
        default=None,
        help="per-tenant cap on queued jobs; over it -> HTTP 429",
    )
    return parser


def build_query_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-betweenness query",
        description="Ask a running betweenness service (see 'serve') for the "
        "top-k vertices of a graph.  Identical and dominated requests are "
        "served from the service's result cache without sampling.",
        epilog="The JSON request/response schema is documented in docs/serving.md.",
    )
    parser.add_argument("graph", help="graph name or path, resolved by the *service*")
    parser.add_argument("--eps", type=float, default=0.01, help="absolute error bound (default 0.01)")
    parser.add_argument("--delta", type=float, default=0.1, help="failure probability (default 0.1)")
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    parser.add_argument(
        "--algorithm",
        choices=[AUTO, *backend_names()],
        default=AUTO,
        help="backend to request (default: auto)",
    )
    parser.add_argument("--top", type=int, default=10, help="number of top vertices (default 10)")
    parser.add_argument("--host", default="127.0.0.1", help="service host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8321, help="service port (default 8321)")
    parser.add_argument(
        "--no-wait",
        action="store_true",
        help="submit the job and poll its progress instead of one blocking request",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0, help="client timeout in seconds (default 600)"
    )
    parser.add_argument("--json", action="store_true", help="print the raw JSON response")
    return parser


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-betweenness cache",
        description="Inspect or evict the service's on-disk result cache "
        "(works directly on the cache directory; no running service needed).",
        epilog="The cache layout (one directory per graph checksum, meta + "
        "result JSON per entry) is documented in docs/serving.md.",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    ls = sub.add_parser("ls", help="list cached results")
    ls.add_argument("--json", action="store_true", help="emit entries as JSON")
    ls.add_argument(
        "--cache-dir", default=None, help="result-cache directory (default: see 'serve')"
    )
    evict = sub.add_parser("evict", help="remove cached results")
    evict.add_argument(
        "--graph", default=None, help="evict entries of one graph (name or path)"
    )
    evict.add_argument("--key", default=None, help="evict one entry by its key")
    evict.add_argument("--all", action="store_true", help="clear the whole cache")
    evict.add_argument(
        "--cache-dir", default=None, help="result-cache directory (default: see 'serve')"
    )
    return parser


def build_session_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-betweenness session",
        description="Resumable estimation sessions: run with a checkpoint, "
        "refine a checkpoint to a tighter guarantee by drawing only the "
        "additional samples, or inspect a snapshot file.",
        epilog="Refinement is bit-identical to a fresh run at the tighter "
        "target for the same seed; semantics and a worked example are in "
        "docs/sessions.md.",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    run = sub.add_parser("run", help="estimate and write a session checkpoint")
    run.add_argument("graph", help="edge-list file, .rcsr store, or dataset name")
    run.add_argument("--eps", type=float, default=0.01, help="absolute error bound (default 0.01)")
    run.add_argument("--delta", type=float, default=0.1, help="failure probability (default 0.1)")
    run.add_argument("--seed", type=int, default=None, help="RNG seed (pin it to make later refines deterministic)")
    run.add_argument("--checkpoint", required=True, help="where to write the session snapshot")
    run.add_argument("--top", type=int, default=10, help="number of top vertices to print")
    run.add_argument("--output", default=None, help="write the full result as JSON")
    run.add_argument(
        "--batch-size",
        default="auto",
        help="sampling batch size: 'auto' (default) or a positive integer",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="parse text inputs directly instead of the binary graph cache",
    )

    refine = sub.add_parser(
        "refine", help="restore a checkpoint and tighten its guarantee"
    )
    refine.add_argument("snapshot", help="session snapshot written by 'session run'")
    refine.add_argument("--eps", type=float, default=None, help="new absolute error bound (default: keep)")
    refine.add_argument("--delta", type=float, default=None, help="new failure probability (default: keep)")
    refine.add_argument(
        "--graph",
        default=None,
        help="graph to resume against (default: the source recorded in the snapshot)",
    )
    refine.add_argument(
        "--checkpoint",
        default=None,
        help="write the refined session back to this snapshot (may equal the input)",
    )
    refine.add_argument("--top", type=int, default=10, help="number of top vertices to print")
    refine.add_argument("--output", default=None, help="write the full result as JSON")

    inspect = sub.add_parser(
        "checkpoint", help="describe a snapshot file (no sampling, no graph load)"
    )
    inspect.add_argument("snapshot", help="session snapshot file")
    inspect.add_argument("--json", action="store_true", help="emit the metadata as JSON")
    return parser


def build_evolve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-betweenness evolve",
        description="Evolving graphs: apply an edge delta to a stored graph "
        "(producing a versioned child with a lineage record), or carry a "
        "session checkpoint across a delta — re-sampling only the shortest "
        "paths the mutation invalidated and re-certifying the guarantee.",
        epilog="The delta JSON format, the invalidation test and a worked "
        "example are in docs/evolving.md.",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    apply_p = sub.add_parser(
        "apply", help="apply a delta file to a stored graph, with lineage"
    )
    apply_p.add_argument("graph", help=".rcsr store file or registered dataset name")
    apply_p.add_argument(
        "--delta-file",
        required=True,
        help='delta JSON: {"version": 1, "insert": [[u, v], ...], "delete": [...]}',
    )
    apply_p.add_argument(
        "--output", default=None, help="child .rcsr path (default: the graph cache)"
    )
    apply_p.add_argument(
        "--name", default=None, help="register the child under this catalog name"
    )

    run = sub.add_parser(
        "run", help="update a session checkpoint onto the mutated graph"
    )
    run.add_argument("graph", help="the *mutated* graph: .rcsr file or dataset name")
    run.add_argument(
        "--snapshot", required=True, help="parent session checkpoint to update from"
    )
    run.add_argument(
        "--delta-file",
        default=None,
        help="delta JSON connecting parent to graph (default: the catalog's "
        "lineage record for the mutated graph)",
    )
    run.add_argument("--eps", type=float, default=None, help="re-certification error bound (default: keep the checkpoint's)")
    run.add_argument("--delta", type=float, default=None, help="re-certification failure probability (default: keep)")
    run.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="invalidation-fraction ceiling before refusing to update (default 0.5)",
    )
    run.add_argument(
        "--checkpoint", default=None, help="write the updated session to this snapshot"
    )
    run.add_argument("--top", type=int, default=10, help="number of top vertices to print")
    run.add_argument("--output", default=None, help="write the full result as JSON")
    return parser


def build_obs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-betweenness obs",
        description="Pretty-print a phase trace as a per-phase time breakdown. "
        "Accepts a JSONL trace file written via $REPRO_TRACE (one span tree "
        "per line) or a result JSON whose extra.trace carries the facade's "
        "trace summary.",
        epilog="Tracing and the span tree format are described in "
        "docs/observability.md.",
    )
    parser.add_argument("file", help="JSONL trace file or result JSON")
    parser.add_argument(
        "--json", action="store_true", help="emit the aggregated breakdown as JSON"
    )
    parser.add_argument(
        "--limit", type=int, default=0, help="show only the N slowest phases (0 = all)"
    )
    return parser


def build_dist_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-betweenness dist",
        description="Real multi-process distributed estimation over the socket "
        "transport: 'run' spawns N local worker processes against a rank-0 "
        "rendezvous hub (partitioning the graph into per-rank .rcsr shards "
        "first); 'worker' is one rank, spawned by 'run' or by hand/mpirun "
        "for multi-host deployments.",
        epilog="The launcher, rendezvous, shard layout and fault recovery are "
        "documented in docs/distributed.md.",
    )
    actions = parser.add_subparsers(dest="action", required=True)

    run = actions.add_parser("run", help="spawn and monitor a local worker world")
    run.add_argument("graph", help=".rcsr file, text graph file, or registered dataset name")
    run.add_argument("--processes", type=int, default=2, help="worker processes (default 2)")
    run.add_argument(
        "--parts",
        type=int,
        default=None,
        help="partition the graph into K shards; each rank maps only shard rank%%K "
        "(default: no partitioning, every rank maps the full graph)",
    )
    run.add_argument(
        "--transport",
        default="socket",
        help="transport to run on (see --list-backends); only 'socket' is "
        "launchable here, mpi4py worlds start under mpirun",
    )
    run.add_argument("--algorithm", choices=("epoch", "mpi-only"), default="epoch")
    run.add_argument("--threads", type=int, default=1, help="sampling threads per process")
    run.add_argument("--eps", type=float, default=0.05)
    run.add_argument("--delta", type=float, default=0.1)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--samples-per-check", type=int, default=1000)
    run.add_argument("--calibration-samples", type=int, default=None)
    run.add_argument("--max-samples", type=int, default=None)
    run.add_argument("--max-epochs", type=int, default=None)
    run.add_argument("--checkpoint", default=None, help="epoch-boundary checkpoint file (.snap)")
    run.add_argument("--checkpoint-every", type=int, default=1, help="epochs between checkpoints")
    run.add_argument("--max-restarts", type=int, default=2, help="crash-resume budget")
    run.add_argument("--host", default="127.0.0.1")
    run.add_argument("--port", type=int, default=None, help="hub port (default: ephemeral)")
    run.add_argument("--timeout", type=float, default=600.0, help="overall wall-clock bound (s)")
    run.add_argument("--output", default=None, help="merged result JSON path")
    run.add_argument("--top", type=int, default=5, help="print the top-K vertices (0 = none)")

    worker = actions.add_parser("worker", help="run one rank (spawned by 'run' or mpirun)")
    worker.add_argument("--graph", required=True, help=".rcsr container path")
    worker.add_argument("--rank", type=int, required=True)
    worker.add_argument("--size", type=int, required=True)
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, default=0, help="rank-0 hub port")
    worker.add_argument("--connect", default=None, help="host:port of a remote hub")
    worker.add_argument("--parts", type=int, default=None)
    worker.add_argument("--algorithm", choices=("epoch", "mpi-only"), default="epoch")
    worker.add_argument("--threads", type=int, default=1)
    worker.add_argument("--eps", type=float, default=0.05)
    worker.add_argument("--delta", type=float, default=0.1)
    worker.add_argument("--seed", type=int, default=None)
    worker.add_argument("--samples-per-check", type=int, default=1000)
    worker.add_argument("--calibration-samples", type=int, default=None)
    worker.add_argument("--max-samples", type=int, default=None)
    worker.add_argument("--max-epochs", type=int, default=None)
    worker.add_argument("--checkpoint", default=None)
    worker.add_argument("--checkpoint-every", type=int, default=1)
    worker.add_argument("--resume", action="store_true")
    worker.add_argument("--timeout", type=float, default=60.0)
    worker.add_argument("--output", default=None, help="rank-0 result JSON path")
    return parser


def _cmd_dist(argv: list) -> int:
    args = build_dist_parser().parse_args(argv)

    if args.action == "worker":
        from repro.dist.driver import DistWorkerConfig, run_worker

        config = DistWorkerConfig(
            graph=args.graph,
            rank=args.rank,
            size=args.size,
            port=args.port,
            host=args.host,
            connect=args.connect,
            parts=args.parts,
            algorithm=args.algorithm,
            threads=args.threads,
            eps=args.eps,
            delta=args.delta,
            seed=args.seed,
            samples_per_check=args.samples_per_check,
            calibration_samples=args.calibration_samples,
            max_samples=args.max_samples,
            max_epochs=args.max_epochs,
            checkpoint=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            resume=args.resume,
            result_path=args.output,
            timeout=args.timeout,
        )
        return run_worker(config)

    # ---- dist run --------------------------------------------------------- #
    if args.transport != "socket":
        from repro.dist.transports import list_transports

        known = {spec.name for spec in list_transports()}
        if args.transport not in known:
            print(f"error: unknown transport {args.transport!r} (known: {sorted(known)})", file=sys.stderr)
            return 2
        if args.transport == "mpi4py":
            print(
                "error: mpi4py worlds are launched by the MPI runtime, e.g.\n"
                "  mpirun -n 4 python -m repro.cli dist worker --graph g.rcsr ...",
                file=sys.stderr,
            )
        else:
            print(
                "error: the threaded transport is in-process; use the plain "
                "estimation CLI with --algorithm distributed instead",
                file=sys.stderr,
            )
        return 2

    from repro.dist.launcher import LaunchError, launch_local
    from repro.store import GraphCatalog, StoreFormatError

    try:
        rcsr_path = GraphCatalog().resolve(args.graph)
    except (OSError, StoreFormatError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    started = time.perf_counter()
    try:
        result = launch_local(
            str(rcsr_path),
            processes=args.processes,
            parts=args.parts,
            algorithm=args.algorithm,
            threads=args.threads,
            eps=args.eps,
            delta=args.delta,
            seed=args.seed,
            samples_per_check=args.samples_per_check,
            calibration_samples=args.calibration_samples,
            max_samples=args.max_samples,
            max_epochs=args.max_epochs,
            checkpoint=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
            max_restarts=args.max_restarts,
            host=args.host,
            port=args.port,
            result_path=args.output,
            timeout=args.timeout,
        )
    except LaunchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started

    print(
        f"distributed run: {result['num_processes']} processes x "
        f"{result['threads_per_process']} threads, algorithm={result['algorithm']}"
        + (f", {result['parts']} shards" if result.get("parts") else "")
    )
    print(
        f"samples: {result['num_samples']} in {result['num_epochs']} epochs "
        f"(omega {result['omega']}, n0 {result['samples_per_epoch_n0']:.0f})"
    )
    print(
        f"throughput: {result['aggregate_samples_per_sec']:.0f} samples/s aggregate; "
        f"communication: {result['communication_bytes']} bytes; "
        f"restarts: {result['restarts']}; wall: {elapsed:.2f} s"
    )
    if result.get("resumed_from_samples"):
        print(
            f"resumed from checkpoint: epoch {result['resumed_from_epoch']}, "
            f"{result['resumed_from_samples']} samples carried over"
        )
    if args.top:
        scores = result["scores"]
        order = sorted(range(len(scores)), key=lambda v: -scores[v])[: args.top]
        print("top vertices:")
        for v in order:
            print(f"  {v:>8d}  {scores[v]:.6f}")
    return 0


def _span_phases(node: dict, prefix: str, phases: dict, counter: list) -> None:
    """Accumulate ``{dotted path: seconds}`` over one span-tree dict."""
    path = f"{prefix}.{node.get('name', '?')}" if prefix else str(node.get("name", "?"))
    phases[path] = phases.get(path, 0.0) + float(node.get("seconds", 0.0))
    counter[0] += 1
    for child in node.get("children", ()):
        if isinstance(child, dict):
            _span_phases(child, path, phases, counter)


def _load_trace_breakdown(path: Path) -> Tuple[dict, int, float]:
    """Parse a trace file into ``(phases, num_spans, total_seconds)``.

    ``total_seconds`` sums the root spans only (children are contained in
    their roots); a result JSON contributes its recorded summary instead.
    """
    text = path.read_text()
    phases: dict = {}
    counter = [0]
    total = 0.0
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict) and "children" not in payload and (
        "extra" in payload or "trace" in payload
    ):
        # A result JSON (or a bare summary): the flat summary the facade
        # stores — phases are relative to the root span.
        summary = payload.get("trace") or payload.get("extra", {}).get("trace")
        if not isinstance(summary, dict):
            raise ValueError(f"{path} carries no extra.trace summary (traced run?)")
        root = str(summary.get("name", "estimate"))
        total = float(summary.get("seconds", 0.0))
        phases[root] = total
        for sub, seconds in (summary.get("phases") or {}).items():
            phases[f"{root}.{sub}"] = float(seconds)
        return phases, int(summary.get("num_spans", len(phases))), total
    # JSONL: one span tree per line (a single span dict is one-line JSONL).
    roots = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            node = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from None
        if not isinstance(node, dict) or "name" not in node:
            raise ValueError(f"{path}:{lineno}: not a span object")
        roots += 1
        total += float(node.get("seconds", 0.0))
        _span_phases(node, "", phases, counter)
    if roots == 0:
        raise ValueError(f"{path} contains no spans")
    return phases, counter[0], total


def _cmd_obs(argv: list) -> int:
    args = build_obs_parser().parse_args(argv)
    path = Path(args.file)
    try:
        phases, num_spans, total = _load_trace_breakdown(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = sorted(phases.items(), key=lambda kv: kv[1], reverse=True)
    if args.limit and args.limit > 0:
        rows = rows[: args.limit]
    if args.json:
        print(
            json.dumps(
                {
                    "file": str(path),
                    "num_spans": num_spans,
                    "total_seconds": round(total, 9),
                    "phases": {k: round(v, 9) for k, v in rows},
                },
                indent=2,
            )
        )
        return 0
    print(f"trace: {path} — {num_spans} span(s), {total:.3f} s total")
    width = max((len(name) for name, _ in rows), default=5)
    print(f"{'phase'.ljust(width)}  {'seconds':>10}  {'share':>6}")
    for name, seconds in rows:
        share = f"{seconds / total:6.1%}" if total > 0 else "   n/a"
        print(f"{name.ljust(width)}  {seconds:10.4f}  {share}")
    return 0


def _progress_printer(event) -> None:
    budget = f"/{event.omega}" if event.omega is not None else ""
    print(
        f"[{event.backend}] {event.phase}: epoch {event.epoch}, "
        f"samples {event.num_samples}{budget}",
        file=sys.stderr,
    )


def _cmd_convert(argv: list) -> int:
    from repro.store import GraphCatalog, StoreFormatError

    args = build_convert_parser().parse_args(argv)
    if not Path(args.input).exists():
        print(f"error: graph file not found: {args.input}", file=sys.stderr)
        return 2
    kwargs = {}
    if args.chunk_bytes is not None:
        kwargs["chunk_bytes"] = args.chunk_bytes
    catalog = GraphCatalog()
    start = time.perf_counter()
    try:
        report = catalog.convert(args.input, args.output, force=args.force, fmt=args.format, **kwargs)
    except (OSError, ValueError, StoreFormatError) as exc:
        print(f"error: cannot convert {args.input}: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - start
    action = "cached" if report.cache_hit else "converted"
    print(f"{action}: {report.source} -> {report.dest}")
    print(
        f"graph: {report.num_vertices} vertices, {report.num_edges} edges "
        f"(indices dtype {report.indices_dtype}, {report.output_bytes} bytes)"
    )
    print(f"elapsed: {elapsed:.2f} s")
    return 0


def _cmd_info(argv: list) -> int:
    from repro.store import GraphCatalog, StoreFormatError

    args = build_info_parser().parse_args(argv)
    catalog = GraphCatalog()
    try:
        info = catalog.info(args.graph)
    except (OSError, StoreFormatError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(info.as_dict(), indent=2, sort_keys=True))
        return 0
    print(f"name:              {info.name}")
    print(f"store:             {info.path}")
    if info.source:
        print(f"source:            {info.source}")
    print(f"vertices:          {info.num_vertices}")
    print(f"edges:             {info.num_edges}")
    print(f"max degree:        {info.max_degree}")
    print(f"components:        {info.num_components}")
    print(f"diameter estimate: {info.diameter_estimate}")
    print(f"checksum:          {info.checksum}")
    from repro.kernels import describe_routing

    # Undirected CSR stores each edge twice, so the adjacency has 2m entries.
    routing = describe_routing(info.num_vertices, 2 * info.num_edges)
    line = f"kernel routing:    {routing['effective']}"
    if routing["effective"] != routing["auto"]:
        line += f" (auto would pick {routing['auto']}; $REPRO_KERNEL={routing['env']})"
    print(line)
    from repro.store.partition import find_manifests, format_placement

    for manifest in find_manifests(info.path):
        for placement_line in format_placement(manifest):
            print(placement_line)
    return 0


def _cmd_serve(argv: list) -> int:
    from repro.service import TenantQuota, run_server

    args = build_serve_parser().parse_args(argv)
    if args.workers <= 0:
        print("error: --workers must be positive", file=sys.stderr)
        return 2
    try:
        resources = Resources(threads=args.threads)
        quota = TenantQuota(max_inflight=args.max_inflight, max_queued=args.max_queued)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    run_server(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        store=args.store,
        dispatch=args.dispatch,
        quota=quota,
        worker_mode=args.worker_mode,
        max_workers=args.workers,
        resources=resources,
    )
    return 0


def _cmd_worker(argv: list) -> int:
    # 'repro-betweenness worker' is the same program as
    # 'python -m repro.service.worker'; see that module for the pull loop.
    from repro.service.worker import main as worker_main

    return worker_main(argv)


def _print_query_result(payload: dict, top: int) -> None:
    result = payload["result"]
    if payload.get("served_from_cache"):
        origin = "result cache"
    elif payload.get("refined_from"):
        origin = "cached checkpoint, refined"
    elif payload.get("updated_from"):
        origin = f"parent checkpoint {payload['updated_from']}, updated"
    else:
        origin = "fresh run"
    print(
        f"graph checksum: {payload.get('graph_checksum')} (served from {origin})"
    )
    print(
        f"algorithm: {result.get('backend')}, eps={result.get('eps')}, "
        f"delta={result.get('delta')}"
    )
    if result.get("num_samples"):
        line = (
            f"samples: {result['num_samples']} (omega={result.get('omega')}), "
            f"epochs: {result.get('num_epochs')}"
        )
        if result.get("samples_reused"):
            line += (
                f", {result.get('samples_drawn')} drawn + "
                f"{result.get('samples_reused')} reused"
            )
        if result.get("samples_invalidated"):
            line += f", {result['samples_invalidated']} invalidated"
        print(line)
    print(f"top-{top} vertices:")
    for vertex, score in result.get("top", []):
        print(f"  {int(vertex):10d}  {score:.6f}")


def _cmd_query(argv: list) -> int:
    from repro.service import ServiceClient, ServiceError

    args = build_query_parser().parse_args(argv)
    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    fields = {
        "graph": args.graph,
        "eps": args.eps,
        "delta": args.delta,
        "k": args.top,
        "algorithm": args.algorithm,
        "wait": not args.no_wait,
    }
    if args.seed is not None:
        fields["seed"] = args.seed
    try:
        payload = client.query(**fields)
        if args.no_wait and payload.get("job_id") and payload.get("status") != "done":
            print(f"job {payload['job_id']} submitted; polling...", file=sys.stderr)

            def on_progress(event: dict) -> None:
                budget = f"/{event['omega']}" if event.get("omega") is not None else ""
                print(
                    f"[{event.get('backend')}] {event.get('phase')}: "
                    f"epoch {event.get('epoch')}, samples {event.get('num_samples')}{budget}",
                    file=sys.stderr,
                )

            status = client.wait_for_job(
                payload["job_id"], timeout=args.timeout, on_progress=on_progress
            )
            if status.get("status") == "error":
                print(f"error: job failed: {status.get('error')}", file=sys.stderr)
                return 1
            payload = status
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    _print_query_result(payload, args.top)
    return 0


def _cmd_cache(argv: list) -> int:
    from repro.service import ResultCache
    from repro.store import GraphCatalog

    args = build_cache_parser().parse_args(argv)
    cache = ResultCache(args.cache_dir)
    if args.action == "ls":
        entries = cache.entries()
        if args.json:
            print(json.dumps([e.as_dict() for e in entries], indent=2, sort_keys=True))
            return 0
        print(f"result cache: {cache.cache_dir} ({len(entries)} entries)")
        for e in entries:
            accuracy = (
                "exact" if e.family == "exact" else f"eps={e.eps:g} delta={e.delta:g}"
            )
            print(
                f"  {e.key}  {e.graph_checksum}  {e.algorithm:<15s} {accuracy:<22s} "
                f"n={e.num_vertices} samples={e.num_samples}  ({e.graph})"
            )
        return 0
    # action == "evict"
    if args.graph is None and args.key is None and not args.all:
        print("error: specify --graph, --key, or --all", file=sys.stderr)
        return 2
    if args.graph is not None:
        # Never convert just to evict: match by the already-stored checksum
        # when one exists, and by the recorded request string otherwise.
        checksum = GraphCatalog().cached_checksum(args.graph)
        removed = 0
        for entry in cache.entries():
            if entry.graph != args.graph and entry.graph_checksum != checksum:
                continue
            if args.key is not None and entry.key != args.key:
                continue
            removed += cache.evict(entry.graph_checksum, key=entry.key)
    else:
        removed = cache.evict(key=args.key)
    print(f"evicted {removed} cached result(s)")
    return 0


def _print_session_result(result, session, top: int) -> None:
    print(f"algorithm: {session.algorithm}, eps={result.eps}, delta={result.delta}")
    print(_samples_line(result))
    print(f"top-{top} vertices (peeked confidence half-widths):")
    peek = session.peek()
    for vertex, score in result.top_k(top):
        low = peek.half_width_lower[vertex]
        up = peek.half_width_upper[vertex]
        print(f"  {vertex:10d}  {score:.6f}  (-{low:.6f}/+{up:.6f})")


def _samples_line(result) -> str:
    line = f"samples: {result.num_samples} (omega={result.omega})"
    if result.samples_reused:
        line += (
            f", {result.samples_drawn} drawn + {result.samples_reused} reused "
            f"from the session"
        )
    if getattr(result, "samples_invalidated", 0):
        line += f" ({result.samples_invalidated} invalidated by the delta)"
    return line


def _cmd_session(argv: list) -> int:
    from repro.session import (
        EstimationSession,
        SnapshotError,
        open_session,
        read_snapshot_meta,
    )
    from repro.store import StoreFormatError

    args = build_session_parser().parse_args(argv)

    if args.action == "checkpoint":
        try:
            meta = read_snapshot_meta(args.snapshot)
        except SnapshotError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(meta, indent=2, sort_keys=True))
            return 0
        graph_id = meta.get("graph", {})
        achieved = meta.get("achieved", {})
        frame = meta.get("frame", {})
        calibration = meta.get("calibration", {})
        options = meta.get("options", {})
        print(f"snapshot:          {args.snapshot}")
        print(f"graph:             {graph_id.get('source_path') or '<in-memory>'}")
        print(
            f"vertices/edges:    {graph_id.get('num_vertices')} / {graph_id.get('num_edges')}"
        )
        if graph_id.get("checksum"):
            print(f"graph checksum:    {graph_id['checksum']}")
        print(f"certified:         eps={achieved.get('eps')} delta={achieved.get('delta')}")
        print(
            f"samples:           {frame.get('num_samples')} "
            f"(omega={meta.get('omega')}, calibration={calibration.get('num_samples')})"
        )
        print(f"seed:              {options.get('seed')}")
        return 0

    if args.action == "run":
        batch_size = args.batch_size
        if batch_size != "auto":
            try:
                batch_size = int(batch_size)
            except ValueError:
                print(f"error: invalid --batch-size {batch_size!r}", file=sys.stderr)
                return 2
        try:
            graph, num_components = _load_cli_graph(args.graph, use_cache=not args.no_cache)
        except (OSError, ValueError, StoreFormatError) as exc:
            print(f"error: cannot read graph {args.graph}: {exc}", file=sys.stderr)
            return 2
        if num_components is not None and num_components > 1:
            graph = largest_connected_component(graph)
        try:
            session = open_session(
                graph, algorithm="sequential", seed=args.seed,
                resources=Resources(batch_size=batch_size),
            )
            start = time.perf_counter()
            result = session.run(args.eps, args.delta)
            elapsed = time.perf_counter() - start
            session.checkpoint(args.checkpoint)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
        _print_session_result(result, session, args.top)
        print(f"wall-clock time: {elapsed:.2f} s")
        print(f"checkpoint written to {args.checkpoint}")
        if args.output:
            save_result(result, args.output)
            print(f"result written to {args.output}")
        return 0

    # action == "refine"
    graph = None
    if args.graph is not None:
        try:
            graph, _ = _load_cli_graph(args.graph, use_cache=True)
        except (OSError, ValueError, StoreFormatError) as exc:
            print(f"error: cannot read graph {args.graph}: {exc}", file=sys.stderr)
            return 2
    try:
        session = EstimationSession.restore(args.snapshot, graph=graph)
    except (SnapshotError, OSError, StoreFormatError) as exc:
        print(f"error: cannot restore {args.snapshot}: {exc}", file=sys.stderr)
        return 2
    try:
        start = time.perf_counter()
        result = session.refine(args.eps, args.delta)
        elapsed = time.perf_counter() - start
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.checkpoint is not None:
        session.checkpoint(args.checkpoint)
    _print_session_result(result, session, args.top)
    print(f"wall-clock time: {elapsed:.2f} s")
    if args.checkpoint is not None:
        print(f"refined checkpoint written to {args.checkpoint}")
    if args.output:
        save_result(result, args.output)
        print(f"result written to {args.output}")
    return 0


def _cmd_evolve(argv: list) -> int:
    from repro.evolve import EvolveError, update_session
    from repro.session import SnapshotError
    from repro.store import (
        DeltaError,
        GraphCatalog,
        GraphDelta,
        StoreFormatError,
        open_rcsr,
    )

    args = build_evolve_parser().parse_args(argv)
    catalog = GraphCatalog()

    if args.action == "apply":
        try:
            graph_delta = GraphDelta.load(args.delta_file)
        except (OSError, DeltaError) as exc:
            print(f"error: cannot read delta {args.delta_file}: {exc}", file=sys.stderr)
            return 2
        try:
            child_path = catalog.apply_delta(
                args.graph, graph_delta, name=args.name, output=args.output
            )
        except (OSError, DeltaError, StoreFormatError, FileNotFoundError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        child_checksum = catalog.checksum(child_path)
        record = catalog.lineage(child_checksum) or {}
        print(f"child graph:     {child_path}")
        print(f"child checksum:  {child_checksum}")
        print(f"parent checksum: {record.get('parent_checksum')}")
        print(
            f"delta:           +{graph_delta.num_insertions} edge(s), "
            f"-{graph_delta.num_deletions} edge(s)"
        )
        if args.name:
            print(f"registered as:   {args.name}")
        return 0

    # action == "run"
    try:
        child_path = catalog.resolve(args.graph)
        graph = open_rcsr(child_path)
    except (OSError, StoreFormatError, FileNotFoundError) as exc:
        print(f"error: cannot read graph {args.graph}: {exc}", file=sys.stderr)
        return 2
    if args.delta_file is not None:
        try:
            graph_delta = GraphDelta.load(args.delta_file)
        except (OSError, DeltaError) as exc:
            print(f"error: cannot read delta {args.delta_file}: {exc}", file=sys.stderr)
            return 2
    else:
        record = catalog.lineage(catalog.checksum(child_path))
        if record is None:
            print(
                f"error: no lineage record for {args.graph}; pass --delta-file "
                f"(or derive the graph via 'evolve apply')",
                file=sys.stderr,
            )
            return 2
        graph_delta = GraphDelta.from_dict(record["delta"])
    try:
        start = time.perf_counter()
        session, report = update_session(
            args.snapshot,
            graph,
            graph_delta,
            eps=args.eps,
            delta=args.delta,
            threshold=args.threshold,
        )
        elapsed = time.perf_counter() - start
    except (SnapshotError, DeltaError, EvolveError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = report.result
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print(
        f"update: {report.samples_invalidated}/{report.parent_samples} parent "
        f"samples invalidated ({report.invalidated_fraction:.1%}, "
        f"threshold {report.threshold:.0%}), {report.num_bfs} BFS"
    )
    _print_session_result(result, session, args.top)
    print(f"wall-clock time: {elapsed:.2f} s")
    if args.checkpoint is not None:
        session.checkpoint(args.checkpoint)
        print(f"updated checkpoint written to {args.checkpoint}")
    if args.output:
        save_result(result, args.output)
        print(f"result written to {args.output}")
    return 0


def _load_cli_graph(spec: str, *, use_cache: bool) -> Tuple[CSRGraph, Optional[int]]:
    """Load the graph for the estimation command.

    Returns the graph and, when known from catalog metadata, its component
    count (so a connected stored graph skips the largest-component copy and
    stays memory-mapped).
    """
    from repro.store import GraphCatalog, open_rcsr

    path = Path(spec)
    if path.exists() and path.suffix != ".rcsr" and not use_cache:
        return read_edge_list(path), None
    catalog = GraphCatalog()
    rcsr_path = catalog.resolve(spec)
    # Only read an existing, still-valid sidecar: an .rcsr without one must
    # not pay for whole-graph statistics just to maybe skip the LCC pass.
    info = catalog.cached_info(rcsr_path)
    return open_rcsr(rcsr_path), info.num_components if info is not None else None


def main(argv: Optional[Iterable[str]] = None) -> int:
    raw = list(argv) if argv is not None else sys.argv[1:]
    if raw and raw[0] in SUBCOMMANDS:
        dispatch = {
            "convert": _cmd_convert,
            "info": _cmd_info,
            "serve": _cmd_serve,
            "worker": _cmd_worker,
            "query": _cmd_query,
            "cache": _cmd_cache,
            "session": _cmd_session,
            "evolve": _cmd_evolve,
            "obs": _cmd_obs,
            "dist": _cmd_dist,
        }
        return dispatch[raw[0]](raw[1:])

    parser = build_parser()
    args = parser.parse_args(raw)

    if args.list_backends:
        from repro.dist.transports import format_transport_table

        print(format_backend_table())
        print()
        print(format_transport_table())
        return 0
    if args.list_kernels:
        from repro.kernels import format_kernel_table

        print(format_kernel_table())
        return 0
    if args.graph is None:
        print("error: the graph argument is required (or use --list-backends)", file=sys.stderr)
        return 2

    # Validate the resource configuration before paying the graph-load cost.
    batch_size = args.batch_size
    if batch_size != "auto":
        try:
            batch_size = int(batch_size)
        except ValueError:
            print(f"error: invalid --batch-size {batch_size!r}", file=sys.stderr)
            return 2
    try:
        resources = Resources(
            processes=args.processes,
            threads=args.threads,
            batch_size=batch_size,
            kernel=args.kernel,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    from repro.store import StoreFormatError

    try:
        graph, num_components = _load_cli_graph(args.graph, use_cache=not args.no_cache)
    except (OSError, ValueError, StoreFormatError) as exc:
        print(f"error: cannot read graph {args.graph}: {exc}", file=sys.stderr)
        return 2
    if num_components is None or num_components > 1:
        graph = largest_connected_component(graph)

    start = time.perf_counter()
    result = estimate_betweenness(
        graph,
        algorithm=args.algorithm,
        eps=args.eps,
        delta=args.delta,
        seed=args.seed,
        resources=resources,
        callbacks=_progress_printer if args.progress else None,
    )
    elapsed = time.perf_counter() - start

    mapped = " [memory-mapped]" if graph.is_memory_mapped else ""
    print(
        f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges "
        f"(largest component){mapped}"
    )
    print(f"algorithm: {result.backend}, eps={result.eps}, delta={result.delta}")
    if result.num_samples:
        print(f"{_samples_line(result)}, epochs: {result.num_epochs}")
    print(f"wall-clock time: {elapsed:.2f} s")
    print(f"top-{args.top} vertices:")
    for vertex, score in result.top_k(args.top):
        print(f"  {vertex:10d}  {score:.6f}")

    if args.output:
        save_result(result, args.output)
        print(f"result written to {args.output}")
    if args.csv:
        save_scores_csv(result, args.csv)
        print(f"scores written to {args.csv}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
