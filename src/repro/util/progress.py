"""Progress-event primitives shared by every betweenness driver.

The facade in :mod:`repro.api` lets callers observe long runs through
*progress callbacks*.  The event type and callback signature live here, below
the driver layer, so that :mod:`repro.core`, :mod:`repro.epoch`,
:mod:`repro.parallel` and :mod:`repro.baselines` can emit events without
importing the facade (which imports them).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, Optional, Tuple, Union

__all__ = ["ProgressEvent", "ProgressCallback", "combine_callbacks", "tag_backend"]


@dataclass(frozen=True)
class ProgressEvent:
    """One observable step of a betweenness run.

    Attributes
    ----------
    phase:
        Which part of the algorithm produced the event (``"diameter"``,
        ``"calibration"``, ``"adaptive_sampling"``, ``"sampling"``,
        ``"sssp"`` or the final ``"done"``).
    epoch:
        Aggregation rounds (or stopping-rule checks) completed so far.
    num_samples:
        Samples aggregated so far as seen by the rank evaluating the stopping
        rule (for exact algorithms: SSSP sources completed).
    omega:
        The static sample budget, once known (``None`` before the diameter
        phase finishes and for exact algorithms).
    backend:
        Registry name of the backend that emitted the event.  Drivers emit
        ``None``; the facade tags events with the resolved backend name.
    ts:
        Monotonic-clock seconds since the emitting run started (``None``
        when the emitter predates timestamps or does not track a start),
        so streamed job progress carries timing without any wall-clock
        skew between producer and consumer.
    """

    phase: str
    epoch: int = 0
    num_samples: int = 0
    omega: Optional[int] = None
    backend: Optional[str] = None
    ts: Optional[float] = None

    def as_dict(self) -> dict:
        """The event as a JSON-serializable dict.

        This is the representation the query service streams to polling
        clients as job progress (``GET /v1/jobs/<id>``, see
        ``docs/serving.md``).
        """
        return {
            "phase": self.phase,
            "epoch": int(self.epoch),
            "num_samples": int(self.num_samples),
            "omega": None if self.omega is None else int(self.omega),
            "backend": self.backend,
            "ts": None if self.ts is None else float(self.ts),
        }


ProgressCallback = Callable[[ProgressEvent], None]


def combine_callbacks(
    callbacks: Union[ProgressCallback, Iterable[ProgressCallback], None],
) -> Optional[ProgressCallback]:
    """Normalise ``callbacks`` (one callable, a sequence, or ``None``) to a
    single callable (or ``None`` when there is nothing to call)."""
    if callbacks is None:
        return None
    if callable(callbacks):
        return callbacks
    chain: Tuple[ProgressCallback, ...] = tuple(callbacks)
    if not chain:
        return None
    if any(not callable(cb) for cb in chain):
        raise TypeError("callbacks must be callables taking a ProgressEvent")
    if len(chain) == 1:
        return chain[0]

    def fan_out(event: ProgressEvent) -> None:
        for cb in chain:
            cb(event)

    return fan_out


def tag_backend(
    callback: Union[ProgressCallback, Iterable[ProgressCallback], None],
    backend: str,
) -> Optional[ProgressCallback]:
    """Wrap ``callback`` so every event it sees carries the backend name.

    Accepts anything :func:`combine_callbacks` accepts — a single callable,
    an iterable of them (normalised internally, so the fan-out sees tagged
    events regardless of composition order), or ``None``.
    """
    callback = combine_callbacks(callback)
    if callback is None:
        return None

    def tagged(event: ProgressEvent) -> None:
        if event.backend is None:
            event = replace(event, backend=backend)
        callback(event)

    return tagged
