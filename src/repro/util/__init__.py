"""Shared utilities: timers, statistics helpers, validation, logging."""

from repro.util.timer import Timer, PhaseTimer
from repro.util.stats import (
    geometric_mean,
    max_abs_error,
    mean_abs_error,
    relative_rank_overlap,
    kendall_tau_top_k,
)
from repro.util.validation import (
    check_probability,
    check_positive,
    check_non_negative,
    check_vertex,
)

__all__ = [
    "Timer",
    "PhaseTimer",
    "geometric_mean",
    "max_abs_error",
    "mean_abs_error",
    "relative_rank_overlap",
    "kendall_tau_top_k",
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_vertex",
]
