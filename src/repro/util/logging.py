"""Minimal logging configuration for the package.

The library never configures the root logger; applications opt in via
:func:`enable_console_logging`.
"""

from __future__ import annotations

import logging

PACKAGE_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a child logger of the package logger."""
    if name is None or name == PACKAGE_LOGGER_NAME:
        return logging.getLogger(PACKAGE_LOGGER_NAME)
    if name.startswith(PACKAGE_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{PACKAGE_LOGGER_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stream handler with a compact format to the package logger."""
    logger = logging.getLogger(PACKAGE_LOGGER_NAME)
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("[%(levelname)s] %(name)s: %(message)s"))
        logger.addHandler(handler)
    return logger
