"""Statistics helpers used by the experiment harness and tests."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    The paper reports speedups as geometric means over the instance set.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric_mean() of empty sequence")
    if np.any(arr <= 0.0):
        raise ValueError("geometric_mean() requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def max_abs_error(approx: Sequence[float], exact: Sequence[float]) -> float:
    """Maximum absolute deviation between two score vectors."""
    a = np.asarray(approx, dtype=np.float64)
    b = np.asarray(exact, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0.0
    return float(np.max(np.abs(a - b)))


def mean_abs_error(approx: Sequence[float], exact: Sequence[float]) -> float:
    """Mean absolute deviation between two score vectors."""
    a = np.asarray(approx, dtype=np.float64)
    b = np.asarray(exact, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0.0
    return float(np.mean(np.abs(a - b)))


def relative_rank_overlap(approx: Sequence[float], exact: Sequence[float], k: int) -> float:
    """Fraction of the exact top-k vertices recovered in the approximate top-k."""
    if k <= 0:
        raise ValueError("k must be positive")
    a = np.asarray(approx, dtype=np.float64)
    b = np.asarray(exact, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    k = min(k, a.size)
    if k == 0:
        return 1.0
    top_a = set(np.argsort(-a, kind="stable")[:k].tolist())
    top_b = set(np.argsort(-b, kind="stable")[:k].tolist())
    return len(top_a & top_b) / k


def kendall_tau_top_k(approx: Sequence[float], exact: Sequence[float], k: int) -> float:
    """Kendall-tau-style pairwise agreement restricted to the exact top-k vertices.

    Returns the fraction of concordant ordered pairs (ties count as half), in
    [0, 1].  Used by tests to check that the approximation preserves the
    ranking of high-betweenness vertices.
    """
    if k <= 1:
        return 1.0
    a = np.asarray(approx, dtype=np.float64)
    b = np.asarray(exact, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    k = min(k, a.size)
    top = np.argsort(-b, kind="stable")[:k]
    concordant = 0.0
    pairs = 0
    for i in range(k):
        for j in range(i + 1, k):
            u, v = top[i], top[j]
            exact_sign = np.sign(b[u] - b[v])
            approx_sign = np.sign(a[u] - a[v])
            pairs += 1
            if exact_sign == 0 or approx_sign == 0:
                concordant += 0.5
            elif exact_sign == approx_sign:
                concordant += 1.0
    if pairs == 0:
        return 1.0
    return concordant / pairs


def harmonic_number(n: int) -> float:
    """The n-th harmonic number (used by sample-size heuristics in tests)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return 0.0
    return float(np.sum(1.0 / np.arange(1, n + 1, dtype=np.float64)))
