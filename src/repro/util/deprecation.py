"""Deprecation helper for the legacy per-algorithm entry points."""

from __future__ import annotations

import warnings

__all__ = ["warn_legacy_entry_point"]


def warn_legacy_entry_point(old: str, replacement: str) -> None:
    """Emit the standard ``DeprecationWarning`` for a legacy driver class.

    ``stacklevel=3`` points the warning at the caller of the deprecated
    constructor (helper -> shim ``__init__`` -> user code).
    """
    warnings.warn(
        f"{old} is deprecated; use repro.estimate_betweenness("
        f"graph, algorithm={replacement!r}, ...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
