"""Lightweight wall-clock timers used by drivers and the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional
from contextlib import contextmanager


class Timer:
    """A simple start/stop wall-clock timer.

    The timer can be used either explicitly (``start`` / ``stop``) or as a
    context manager::

        with Timer() as t:
            work()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def start(self) -> "Timer":
        if self._start is not None:
            # Silently restarting would discard the running segment —
            # re-entry is always a bug at the call site.
            raise RuntimeError("Timer.start() called while already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer.stop() called before Timer.start()")
        self._elapsed += time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    def reset(self) -> None:
        self._start = None
        self._elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def elapsed(self) -> float:
        if self._start is not None:
            return self._elapsed + (time.perf_counter() - self._start)
        return self._elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    Mirrors the per-phase breakdown reported in Fig. 2b of the paper
    (diameter, calibration, epoch transition, barrier, reduction, stop check).
    """

    phases: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + float(seconds)

    def get(self, name: str) -> float:
        return self.phases.get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def fractions(self) -> Dict[str, float]:
        """Return the per-phase fraction of the total accumulated time."""
        total = self.total
        if total <= 0.0:
            return {name: 0.0 for name in self.phases}
        return {name: value / total for name, value in self.phases.items()}

    def merge(self, other: "PhaseTimer") -> "PhaseTimer":
        merged = PhaseTimer(dict(self.phases))
        for name, value in other.phases.items():
            merged.add(name, value)
        return merged

    def as_dict(self) -> Dict[str, float]:
        return dict(self.phases)
