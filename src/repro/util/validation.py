"""Argument-validation helpers shared by the public API."""

from __future__ import annotations


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability strictly inside (0, 1)."""
    value = float(value)
    if not (0.0 < value < 1.0):
        raise ValueError(f"{name} must lie strictly in (0, 1); got {value!r}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive."""
    value = float(value)
    if not value > 0.0:
        raise ValueError(f"{name} must be > 0; got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is non-negative."""
    value = float(value)
    if value < 0.0:
        raise ValueError(f"{name} must be >= 0; got {value!r}")
    return value


def check_vertex(v: int, n: int) -> int:
    """Validate that ``v`` is a vertex id of a graph with ``n`` vertices."""
    v = int(v)
    if not (0 <= v < n):
        raise ValueError(f"vertex id {v} out of range [0, {n})")
    return v
