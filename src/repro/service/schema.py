"""Request schema of the betweenness query service.

One JSON object drives everything a client can ask for::

    {"graph": "wiki-talk",        # catalog name, text file, or .rcsr path
     "eps": 0.01, "delta": 0.1,   # accuracy request (absolute error / failure prob.)
     "k": 10,                     # how many top vertices to return
     "algorithm": "auto",         # backend registry name or "auto"
     "seed": 42,                  # optional: deterministic runs
     "include_scores": false,     # return the full per-vertex score vector
     "wait": true,                # block until done vs. 202 + job polling
     "tenant": "team-graphs"}     # admission-control identity (quotas, 429)

:class:`QueryRequest` validates that object once at the edge (HTTP handler or
CLI) so the job queue and cache only ever see well-formed requests, and
defines the canonical identity used for in-flight deduplication: two requests
are *identical* iff they agree on ``(graph checksum, algorithm, eps, delta,
seed)`` — ``k``/``include_scores``/``wait`` only shape the response, so they
never split a job.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Dict, Optional

from repro.api.registry import AUTO, backend_names

__all__ = ["DEFAULT_TENANT", "QueryRequest", "SchemaError", "result_payload"]

#: Hard ceiling on requested accuracy: eps below this would ask a demo
#: service for hours of sampling; reject early with a clear error instead.
MIN_EPS = 1e-6

#: Tenant of requests that do not name one.
DEFAULT_TENANT = "default"

#: Tenant ids are path/label-safe: they appear in metrics labels and logs.
_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class SchemaError(ValueError):
    """A request violates the documented JSON schema (HTTP 400)."""


@dataclass(frozen=True)
class QueryRequest:
    """A validated betweenness query (see module docstring for the JSON form).

    Attributes
    ----------
    graph:
        Catalog dataset name, text graph file, or ``.rcsr`` path — resolved
        through :class:`repro.store.GraphCatalog` exactly like the facade.
    eps, delta:
        Requested absolute error bound and failure probability.  The
        dominance policy may serve the request from a cached result computed
        at *tighter* (smaller) values.
    k:
        Number of top vertices in the response (clamped to the graph size).
    algorithm:
        A backend registry name or ``"auto"``.
    seed:
        Optional RNG seed.  Part of the dedup identity (two different seeds
        are two different jobs) but *not* of the dominance check (any cached
        result at sufficient accuracy serves, whatever seed produced it).
    include_scores:
        When true the response carries the full per-vertex score vector.
    wait:
        When true ``POST /v1/query`` blocks until the job finishes; when
        false it returns ``202`` with a job id to poll.
    tenant:
        Admission-control identity (``[A-Za-z0-9._-]``, <= 64 chars).  Quotas
        (max in-flight / max queued jobs) are counted per tenant; requests
        over the limit are rejected with HTTP 429.  Deliberately **not**
        part of :meth:`job_key`: two tenants asking the same question share
        one job and one cached result — isolation applies to *work*, which
        is what quotas meter, not to answers.
    """

    graph: str
    eps: float = 0.01
    delta: float = 0.1
    k: int = 10
    algorithm: str = AUTO
    seed: Optional[int] = None
    include_scores: bool = False
    wait: bool = True
    tenant: str = DEFAULT_TENANT

    def __post_init__(self) -> None:
        if not self.graph or not isinstance(self.graph, str):
            raise SchemaError("'graph' must be a non-empty string (name or path)")
        if not isinstance(self.eps, (int, float)) or isinstance(self.eps, bool):
            raise SchemaError("'eps' must be a number")
        if not isinstance(self.delta, (int, float)) or isinstance(self.delta, bool):
            raise SchemaError("'delta' must be a number")
        if not MIN_EPS <= float(self.eps) <= 1.0:
            raise SchemaError(f"'eps' must be in [{MIN_EPS}, 1], got {self.eps!r}")
        if not 0.0 < float(self.delta) < 1.0:
            raise SchemaError(f"'delta' must be in (0, 1), got {self.delta!r}")
        if not isinstance(self.k, int) or isinstance(self.k, bool) or self.k < 0:
            raise SchemaError(f"'k' must be a non-negative integer, got {self.k!r}")
        if self.algorithm != AUTO and self.algorithm not in backend_names():
            known = ", ".join((AUTO, *backend_names()))
            raise SchemaError(
                f"unknown algorithm {self.algorithm!r}; known: {known}"
            )
        if self.seed is not None and (
            not isinstance(self.seed, int) or isinstance(self.seed, bool)
        ):
            raise SchemaError(f"'seed' must be an integer or null, got {self.seed!r}")
        if not isinstance(self.tenant, str) or not _TENANT_RE.match(self.tenant):
            raise SchemaError(
                f"'tenant' must match [A-Za-z0-9._-]{{1,64}}, got {self.tenant!r}"
            )
        object.__setattr__(self, "eps", float(self.eps))
        object.__setattr__(self, "delta", float(self.delta))

    _FIELDS = (
        "graph", "eps", "delta", "k", "algorithm", "seed", "include_scores",
        "wait", "tenant",
    )

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "QueryRequest":
        """Build and validate a request from decoded JSON.

        Unknown keys are rejected (a typoed ``"epsilon"`` must not silently
        run at the default accuracy).
        """
        if not isinstance(payload, dict):
            raise SchemaError("request body must be a JSON object")
        unknown = set(payload) - set(cls._FIELDS)
        if unknown:
            raise SchemaError(
                f"unknown request field(s) {sorted(unknown)}; "
                f"valid fields: {list(cls._FIELDS)}"
            )
        if "graph" not in payload:
            raise SchemaError("request is missing the required 'graph' field")
        for flag in ("include_scores", "wait"):
            if flag in payload and not isinstance(payload[flag], bool):
                raise SchemaError(f"'{flag}' must be a boolean")
        try:
            return cls(**payload)  # type: ignore[arg-type]
        except TypeError as exc:  # e.g. non-string algorithm
            raise SchemaError(str(exc)) from None

    def as_dict(self) -> Dict[str, object]:
        """The request back as a JSON-serializable dict (echoed in job status)."""
        return {name: getattr(self, name) for name in self._FIELDS}

    def job_key(self, checksum: str) -> str:
        """Canonical identity of the *work* this request asks for.

        Two in-flight requests with the same key are the same job: the key
        covers the graph contents (``checksum``, not the spelling of the
        path), the algorithm, the accuracy pair and the seed — and omits the
        response-shaping fields (``k``, ``include_scores``, ``wait``).
        """
        material = f"{checksum}|{self.algorithm}|{self.eps!r}|{self.delta!r}|{self.seed!r}"
        return hashlib.sha1(material.encode()).hexdigest()[:16]


def result_payload(result, k: int, *, include_scores: bool = False) -> Dict[str, object]:
    """Shape a :class:`~repro.core.result.BetweennessResult` for a response.

    The full score vector is omitted unless asked for — on million-vertex
    graphs it is the difference between a 200-byte and a 20 MB response.
    """
    payload = result.to_json_dict()
    scores = payload.pop("scores")
    if include_scores:
        payload["scores"] = scores
    payload["num_vertices"] = result.num_vertices
    payload["top"] = [[v, s] for v, s in result.top_k(k)]
    return payload
