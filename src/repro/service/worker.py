"""Store-draining estimation worker: N of these processes empty one queue.

One :class:`StoreWorker` is the pull side of :class:`~repro.service.store.
JobStore`: claim the oldest queued job under a lease, keep the lease alive
from a heartbeat thread while the estimation runs, persist the result to the
shared :class:`~repro.service.cache.ResultCache` (with a session checkpoint,
so the cache entry is refinable), and mark the row ``done``.  Workers are
deliberately stateless — all coordination is rows in the store — so scaling
out is starting more processes::

    python -m repro.service.worker --store /path/to/jobs.sqlite3 &
    python -m repro.service.worker --store /path/to/jobs.sqlite3 &

Crash safety falls out of the lease protocol: a SIGKILLed worker stops
heartbeating, its lease expires, and any surviving worker's
``requeue_expired`` poll hands the job to someone else.  Because estimations
are deterministic in the request's seed, the replacement run is bit-identical
to what the dead worker would have produced — asserted end to end in
``tests/test_service_durability.py``.

Fault injection: ``hold_seconds`` (CLI ``--hold-seconds``, env
``$REPRO_WORKER_HOLD_SECONDS``) makes the worker sleep *after claiming* a job
while heartbeats keep the lease alive — a deterministic window for tests to
SIGKILL it mid-job.  It exists only for the durability harness.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
import time
from pathlib import Path
from typing import Optional

from repro.service.cache import ResultCache
from repro.service.schema import QueryRequest
from repro.service.store import JobRecord, JobStore, default_worker_id

__all__ = ["StoreWorker", "run_worker", "main"]

_HOLD_ENV = "REPRO_WORKER_HOLD_SECONDS"


class StoreWorker:
    """Claims jobs from one :class:`JobStore` and runs them to completion.

    Parameters
    ----------
    store:
        The shared :class:`JobStore` (or a path to its SQLite file).
    cache:
        The :class:`ResultCache` results are persisted into; defaults to the
        directory the store file lives in (coordinator and workers must
        share it for the cache tier to work).
    worker_id:
        Lease identity; defaults to a host/pid-unique id.
    lease_seconds, poll_seconds:
        Claim lifetime and idle back-off between claim attempts.  Heartbeats
        fire every ``lease_seconds / 3``.
    resources:
        Optional :class:`~repro.api.Resources` for every estimation.
    hold_seconds:
        Fault-injection hook (see module docstring).
    """

    def __init__(
        self,
        store,
        *,
        cache: Optional[ResultCache] = None,
        worker_id: Optional[str] = None,
        lease_seconds: Optional[float] = None,
        poll_seconds: float = 0.2,
        resources=None,
        hold_seconds: float = 0.0,
    ) -> None:
        self.store = store if isinstance(store, JobStore) else JobStore(store)
        if lease_seconds is not None:
            self.lease_seconds = float(lease_seconds)
        else:
            self.lease_seconds = self.store.lease_seconds
        self.cache = cache if cache is not None else ResultCache(self.store.path.parent)
        self.worker_id = worker_id or default_worker_id()
        self.poll_seconds = float(poll_seconds)
        self.resources = resources
        self.hold_seconds = float(hold_seconds)
        self.jobs_done = 0
        self.jobs_failed = 0
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the pull loop to exit after the current job."""
        self._stop.set()

    # ------------------------------------------------------------------ #
    def run(
        self,
        *,
        max_jobs: Optional[int] = None,
        max_idle_seconds: Optional[float] = None,
    ) -> int:
        """The pull loop; returns how many jobs this worker completed.

        ``max_jobs`` bounds the number of completed/failed jobs (tests,
        drain-and-exit helpers); ``max_idle_seconds`` exits after the queue
        stays empty that long (CI harnesses that should not hang forever).
        """
        idle_since: Optional[float] = None
        while not self._stop.is_set():
            if max_jobs is not None and self.jobs_done + self.jobs_failed >= max_jobs:
                break
            self.store.requeue_expired()
            record = self.store.claim(self.worker_id, lease_seconds=self.lease_seconds)
            if record is None:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif (
                    max_idle_seconds is not None
                    and now - idle_since >= max_idle_seconds
                ):
                    break
                self._stop.wait(self.poll_seconds)
                continue
            idle_since = None
            self._execute(record)
        return self.jobs_done

    # ------------------------------------------------------------------ #
    def _execute(self, record: JobRecord) -> None:
        """Run one claimed job under a live lease."""
        lease_lost = threading.Event()
        done = threading.Event()

        def _heartbeat() -> None:
            interval = max(0.05, self.lease_seconds / 3.0)
            while not done.wait(interval):
                if not self.store.heartbeat(
                    record.id, self.worker_id, lease_seconds=self.lease_seconds
                ):
                    lease_lost.set()
                    return

        beat = threading.Thread(
            target=_heartbeat, name=f"repro-worker-heartbeat-{record.id}", daemon=True
        )
        beat.start()
        try:
            if self.hold_seconds > 0:
                # Fault-injection window: the job is claimed and heartbeating
                # but has not sampled yet — SIGKILL here and the lease-expiry
                # path must recover it (tests/test_service_durability.py).
                time.sleep(self.hold_seconds)
            result, checkpoint = self._estimate(record)
            if lease_lost.is_set():
                # The lease expired mid-run (e.g. a debugger pause); someone
                # else owns the job now — discard rather than double-write.
                self.jobs_failed += 1
                return
            self._persist(record, result, checkpoint)
            if self.store.complete(record.id, self.worker_id, result.to_json()):
                self.jobs_done += 1
            else:
                self.jobs_failed += 1
        except Exception as exc:  # noqa: BLE001 - job errors become row state
            self.store.fail(record.id, self.worker_id, f"{type(exc).__name__}: {exc}")
            self.jobs_failed += 1
        finally:
            done.set()
            beat.join(timeout=2.0)

    def _estimate(self, record: JobRecord):
        """Run the facade for one job row; returns ``(result, checkpoint_path)``."""
        from repro.api import estimate_betweenness
        from repro.store.format import unique_tmp_path

        request = QueryRequest.from_dict(record.request)
        kwargs = {
            "algorithm": request.algorithm,
            "eps": request.eps,
            "delta": request.delta,
        }
        if request.seed is not None:
            kwargs["seed"] = request.seed
        if self.resources is not None:
            kwargs["resources"] = self.resources
        # Coordinator-decided extras: refine/update sources recorded at
        # enqueue time (paths on the shared cache filesystem).
        for key in ("resume_from", "update_from", "graph_delta"):
            if record.kwargs.get(key) is not None:
                kwargs[key] = record.kwargs[key]
        checkpoint = record.kwargs.get("checkpoint_path")
        if checkpoint is None:
            checkpoint = str(
                unique_tmp_path(self.cache.cache_dir / f".job-{record.id}.snap")
            )
        kwargs["checkpoint_path"] = checkpoint
        result = estimate_betweenness(record.graph_path, **kwargs)
        return result, checkpoint

    def _persist(self, record: JobRecord, result, checkpoint: str) -> None:
        """Write the result (+ snapshot) into the shared cache, best-effort.

        An unwritable cache must not fail a correctly computed job — the
        durable copy is the store row the caller is about to write.
        """
        request = QueryRequest.from_dict(record.request)
        snapshot = checkpoint if Path(checkpoint).is_file() else None
        try:
            self.cache.put(record.checksum, request, result, snapshot=snapshot)
        except Exception:  # noqa: BLE001
            pass
        finally:
            if snapshot is not None:
                try:
                    Path(snapshot).unlink()
                except OSError:
                    pass


def run_worker(store_path, **kwargs) -> int:
    """Convenience wrapper: build a :class:`StoreWorker` and :meth:`run` it."""
    run_opts = {
        key: kwargs.pop(key)
        for key in ("max_jobs", "max_idle_seconds")
        if key in kwargs
    }
    return StoreWorker(store_path, **kwargs).run(**run_opts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.worker",
        description="Drain estimation jobs from a durable JobStore; run N of "
        "these processes against one store to scale the service horizontally "
        "(lease/heartbeat semantics in docs/serving.md).",
    )
    parser.add_argument("--store", required=True, help="path to the jobs.sqlite3 store")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: the store's directory)",
    )
    parser.add_argument("--worker-id", default=None, help="lease identity (default: auto)")
    parser.add_argument(
        "--lease-seconds",
        type=float,
        default=None,
        help="claim lifetime between heartbeats (default: the store's)",
    )
    parser.add_argument(
        "--poll-seconds", type=float, default=0.2, help="idle back-off (default 0.2)"
    )
    parser.add_argument(
        "--max-jobs", type=int, default=None, help="exit after this many jobs"
    )
    parser.add_argument(
        "--max-idle-seconds",
        type=float,
        default=None,
        help="exit after the queue stays empty this long",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=1,
        help="sampling threads per estimation (Resources.threads, default 1)",
    )
    parser.add_argument(
        "--hold-seconds",
        type=float,
        default=float(os.environ.get(_HOLD_ENV, "0") or 0),
        help=argparse.SUPPRESS,  # fault-injection hook for the durability tests
    )
    args = parser.parse_args(argv)

    resources = None
    if args.threads != 1:
        from repro.api import Resources

        resources = Resources(threads=args.threads)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    worker = StoreWorker(
        args.store,
        cache=cache,
        worker_id=args.worker_id,
        lease_seconds=args.lease_seconds,
        poll_seconds=args.poll_seconds,
        resources=resources,
        hold_seconds=args.hold_seconds,
    )
    signal.signal(signal.SIGTERM, lambda *_: worker.stop())
    print(
        f"repro worker {worker.worker_id} draining {worker.store.path}"
        f" (lease {worker.lease_seconds}s)",
        flush=True,
    )
    done = worker.run(max_jobs=args.max_jobs, max_idle_seconds=args.max_idle_seconds)
    print(f"repro worker {worker.worker_id} exiting after {done} job(s)", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
