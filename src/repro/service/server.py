"""Minimal asyncio JSON-over-HTTP server for betweenness queries.

Built directly on :func:`asyncio.start_server` — no ``http.server``, no
third-party framework — because the protocol surface is tiny: every endpoint
speaks one JSON object per request/response over short-lived HTTP/1.1
connections (``Connection: close``).  The endpoints (full request/response
schemas in ``docs/serving.md``):

==========================  ====================================================
``GET  /healthz``           liveness + version
``GET  /v1/backends``       the backend registry as JSON
``POST /v1/query``          submit a query; cache hit -> 200 immediately,
                            ``wait=true`` -> 200 when done, else 202 + job id
``GET  /v1/jobs``           all tracked jobs (status only)
``GET  /v1/jobs/<id>``      one job: status, streamed progress events, result
``GET  /v1/cache``          cached result entries (metadata only)
``POST /v1/cache/evict``    evict by checksum / key / everything
``GET  /v1/stats``          counters: hits, misses, dedups, inflight
``GET  /metrics``           Prometheus text exposition (the only non-JSON
                            endpoint): cache/job counters, per-endpoint
                            request latency histograms, sampling throughput
==========================  ====================================================

The long-run story is the almost-asynchronous epoch design of the paper
carried to the serving layer: a slow estimation never blocks the event loop
(it runs in the job manager's worker pool), and clients that did not ask to
wait poll ``/v1/jobs/<id>``, seeing the progress events the sampler emits
epoch by epoch.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, Optional, Tuple, Union

from repro.obs import metrics as obs_metrics
from repro.service.cache import ResultCache
from repro.service.jobs import JobManager, TenantQuota
from repro.service.schema import QueryRequest, SchemaError, result_payload
from repro.service.store import QuotaExceeded
from repro.store import GraphCatalog, StoreFormatError

__all__ = ["BetweennessService", "run_server"]

#: Largest accepted request body; queries are small, so anything bigger is
#: a client bug (or abuse) and gets 413.
MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class _PlainText:
    """A non-JSON response payload (``/metrics`` is the only producer)."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str) -> None:
        self.text = text
        self.content_type = content_type


#: Content type of the Prometheus text exposition format 0.0.4.
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Endpoint label values for the request metrics.  Everything else (404
#: probes, scanners) collapses into ``"other"`` so label cardinality stays
#: bounded no matter what clients throw at the socket.
_KNOWN_ENDPOINTS = (
    "/healthz",
    "/metrics",
    "/v1/backends",
    "/v1/query",
    "/v1/jobs",
    "/v1/cache",
    "/v1/cache/evict",
    "/v1/stats",
)


def _endpoint_label(path: str) -> str:
    if path.startswith("/v1/jobs/"):
        return "/v1/jobs/{id}"
    if path in _KNOWN_ENDPOINTS:
        return path
    return "other"


class BetweennessService:
    """The query service: one :class:`JobManager` behind an asyncio socket.

    Construction is cheap and does not bind the port; :meth:`start` does.
    Keyword arguments mirror :class:`~repro.service.jobs.JobManager` (cache,
    catalog, resources, worker pool) plus ``host``/``port`` (``port=0`` binds
    an ephemeral port, reported via :attr:`port` — how tests and the smoke
    script avoid collisions).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 8321,
        cache: Optional[ResultCache] = None,
        cache_dir=None,
        catalog: Optional[GraphCatalog] = None,
        store=None,
        dispatch: str = "pool",
        quota: Optional[TenantQuota] = None,
        resources=None,
        worker_mode: str = "process",
        max_workers: int = 1,
        estimator=None,
        **manager_kwargs,
    ) -> None:
        self.host = host
        self.port = port
        if cache is None:
            cache = ResultCache(cache_dir) if cache_dir is not None else ResultCache()
        self.jobs = JobManager(
            cache=cache,
            catalog=catalog,
            store=store,
            dispatch=dispatch,
            quota=quota,
            resources=resources,
            worker_mode=worker_mode,
            max_workers=max_workers,
            estimator=estimator,
            **manager_kwargs,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._http_seconds = self.jobs.metrics.histogram(
            "repro_http_request_duration_seconds",
            "HTTP request latency by endpoint",
            labelnames=("endpoint",),
        )
        self._http_requests = self.jobs.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests by endpoint and status code",
            labelnames=("endpoint", "status"),
        )
        self._http_inflight = self.jobs.metrics.gauge(
            "repro_http_requests_inflight", "HTTP requests currently being handled"
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start accepting connections; resolves :attr:`port`.

        Serving turns the gated sampling instrumentation on: a process that
        exposes ``/metrics`` wants the kernel counters behind it, and the
        ~ns-per-batch cost is noise next to socket handling.

        Binding also runs crash recovery: jobs a previous coordinator left
        queued (or holding an expired/dead-pid lease) in the durable store
        are adopted and re-dispatched before the first request lands.
        """
        obs_metrics.enable_metrics()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        await self.jobs.resume_pending()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.jobs.close()

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                status, payload = await self._handle_request(reader)
            except _HttpError as exc:
                status, payload = exc.status, {"error": exc.message}
            except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                return
            except Exception as exc:  # noqa: BLE001 - never kill the acceptor
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
            if isinstance(payload, _PlainText):
                body = payload.text.encode()
                content_type = payload.content_type
            else:
                body = json.dumps(payload).encode()
                content_type = "application/json"
            head = (
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode()
            try:
                writer.write(head + body)
                await writer.drain()
            except (ConnectionError, OSError):
                # The client hung up before the response flushed; their loss.
                return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Union[dict, _PlainText]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "invalid Content-Length") from None
        if length < 0:
            raise _HttpError(400, "invalid Content-Length")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body over {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        method = method.upper()
        # Per-endpoint request metrics.  Timing starts after the request is
        # parsed (socket read time is the client's, not the handler's) and the
        # status is recorded in the finally so error paths count too — a 404
        # storm or a failing route must be visible on /metrics, not hidden by
        # an early raise.
        endpoint = _endpoint_label(path)
        status = 500
        started = time.perf_counter()
        self._http_inflight.inc()
        try:
            status, payload = await self._route(method, path, body, query)
            return status, payload
        except _HttpError as exc:
            status = exc.status
            raise
        finally:
            self._http_inflight.dec()
            self._http_seconds.labels(endpoint=endpoint).observe(
                time.perf_counter() - started
            )
            self._http_requests.labels(endpoint=endpoint, status=str(status)).inc()

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    async def _route(
        self, method: str, path: str, body: bytes, query: str = ""
    ) -> Tuple[int, Union[dict, _PlainText]]:
        if path == "/healthz" and method == "GET":
            from repro import __version__

            return 200, {"ok": True, "version": __version__}
        if path == "/v1/backends" and method == "GET":
            return 200, self._backends_payload()
        if path == "/v1/query":
            if method != "POST":
                raise _HttpError(405, "use POST /v1/query")
            return await self._query(self._json_body(body))
        if path == "/v1/jobs" and method == "GET":
            return 200, {
                "jobs": [job.status_dict() for job in self.jobs.jobs()],
                "store": self.jobs.store.counts(),
            }
        if path.startswith("/v1/jobs/") and method == "GET":
            return self._job_status(path[len("/v1/jobs/") :], query)
        if path == "/v1/cache" and method == "GET":
            entries = self.jobs.cache.entries()
            return 200, {
                "cache_dir": str(self.jobs.cache.cache_dir),
                "entries": [entry.as_dict() for entry in entries],
            }
        if path == "/v1/cache/evict":
            if method != "POST":
                raise _HttpError(405, "use POST /v1/cache/evict")
            return self._evict(self._json_body(body))
        if path == "/v1/stats" and method == "GET":
            return 200, self.jobs.stats()
        if path == "/metrics" and method == "GET":
            from repro.obs.metrics import render_metrics

            # One merged exposition: the manager's service/HTTP metrics plus
            # the process-global registry (kernel counters — including those
            # merged back from worker processes).  Store/hot-tier gauges are
            # sampled right before the render, not kept live.
            self.jobs.refresh_metrics()
            text = render_metrics(self.jobs.metrics, obs_metrics.REGISTRY)
            return 200, _PlainText(text, _PROMETHEUS_CONTENT_TYPE)
        raise _HttpError(404, f"no route for {method} {path}")

    @staticmethod
    def _backends_payload() -> dict:
        from repro.api import list_backends

        return {
            "backends": [
                {
                    "name": spec.name,
                    "exact": spec.exact,
                    "supports_threads": spec.supports_threads,
                    "supports_processes": spec.supports_processes,
                    "supports_batching": spec.supports_batching,
                    "supports_refinement": spec.supports_refinement,
                    "supports_updates": spec.supports_updates,
                    "cost_hint": spec.cost_hint,
                    "description": spec.description,
                }
                for spec in list_backends()
            ]
        }

    async def _query(self, payload: dict) -> Tuple[int, dict]:
        try:
            request = QueryRequest.from_dict(payload)
        except SchemaError as exc:
            raise _HttpError(400, str(exc)) from None
        try:
            outcome = await self.jobs.submit(request)
        except FileNotFoundError as exc:
            raise _HttpError(404, str(exc)) from None
        except QuotaExceeded as exc:
            # Admission control, not an error in the request: the tenant is
            # over its in-flight/queued budget and should back off and retry.
            raise _HttpError(429, str(exc)) from None
        except (StoreFormatError, ValueError, OSError) as exc:
            raise _HttpError(400, f"{type(exc).__name__}: {exc}") from None

        if outcome.served_from_cache:
            entry = outcome.cache_entry
            return 200, {
                "status": "done",
                "served_from_cache": True,
                "graph_checksum": outcome.checksum,
                "cache_entry": entry.key if entry is not None else None,
                "cached_eps": entry.eps if entry is not None else None,
                "cached_delta": entry.delta if entry is not None else None,
                "job_id": None,
                "result": result_payload(
                    outcome.result, request.k, include_scores=request.include_scores
                ),
            }

        job = outcome.job
        if not request.wait:
            return 202, {
                "status": job.status,
                "served_from_cache": False,
                "deduplicated": outcome.deduplicated,
                "graph_checksum": outcome.checksum,
                "job_id": job.id,
                "poll": f"/v1/jobs/{job.id}",
            }
        try:
            result = await asyncio.shield(job.future)
        except Exception as exc:  # noqa: BLE001 - job failure -> structured error
            raise _HttpError(500, f"job {job.id} failed: {exc}") from None
        return 200, {
            "status": "done",
            "served_from_cache": False,
            "refined_from": job.refined_from,
            "updated_from": job.updated_from,
            "deduplicated": outcome.deduplicated,
            "graph_checksum": outcome.checksum,
            "job_id": job.id,
            "result": result_payload(
                result, request.k, include_scores=request.include_scores
            ),
        }

    def _job_status(self, job_id: str, query: str = "") -> Tuple[int, dict]:
        job = self.jobs.get_job(job_id)
        if job is None:
            # Not tracked in this process — the row may still exist in the
            # durable store (finished before a restart, or owned by another
            # coordinator/worker sharing it).  The row alone answers a poll.
            record = self.jobs.store.get(job_id)
            if record is None:
                raise _HttpError(404, f"unknown job {job_id!r}")
            payload = record.as_dict()
            # In-memory jobs report "status"; keep the store-backed payload
            # polling-compatible so clients survive a coordinator restart.
            payload["status"] = record.state
            if record.state == "done" and record.result is not None:
                from repro.core.result import BetweennessResult

                request = QueryRequest.from_dict(record.request)
                result = BetweennessResult.from_json(record.result)
                payload["result"] = result_payload(
                    result, request.k, include_scores=request.include_scores
                )
            return 200, payload
        # k / include_scores only shape the response and never split a job, so
        # a deduplicated poller may want a different shape than the request
        # that created the job: ?k=25&include_scores=true override it.
        from urllib.parse import parse_qs

        params = parse_qs(query)
        k = job.request.k
        if "k" in params:
            try:
                k = int(params["k"][-1])
            except ValueError:
                raise _HttpError(400, f"invalid k {params['k'][-1]!r}") from None
            if k < 0:
                raise _HttpError(400, "k must be non-negative")
        include_scores = job.request.include_scores
        if "include_scores" in params:
            include_scores = params["include_scores"][-1].lower() in ("1", "true", "yes")
        payload = job.status_dict()
        if job.status == "done" and job.result is not None:
            payload["result"] = result_payload(
                job.result, k, include_scores=include_scores
            )
        return 200, payload

    def _evict(self, payload: dict) -> Tuple[int, dict]:
        checksum = payload.get("checksum")
        key = payload.get("key")
        if checksum is None and key is None and payload.get("all") is not True:
            raise _HttpError(
                400, "specify 'checksum', 'key', or 'all': true to clear the cache"
            )
        removed = self.jobs.cache.evict(checksum, key=key)
        return 200, {"evicted": removed}


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8321,
    cache_dir=None,
    store=None,
    dispatch: str = "pool",
    quota: Optional[TenantQuota] = None,
    worker_mode: str = "process",
    max_workers: int = 1,
    resources=None,
    announce=print,
) -> None:
    """Blocking entry point used by ``repro-betweenness serve``.

    Runs until interrupted (Ctrl-C); ``announce`` receives one line with the
    bound address once the socket is listening.  ``dispatch="external"``
    turns this process into a pure coordinator: it enqueues into ``store``
    and separate ``python -m repro.service.worker`` processes do the
    sampling.
    """

    async def _main() -> None:
        service = BetweennessService(
            host=host,
            port=port,
            cache_dir=cache_dir,
            store=store,
            dispatch=dispatch,
            quota=quota,
            worker_mode=worker_mode,
            max_workers=max_workers,
            resources=resources,
        )
        await service.start()
        announce(
            f"repro betweenness service listening on "
            f"http://{service.host}:{service.port} "
            f"(dispatch={dispatch}, worker_mode={worker_mode}, "
            f"max_workers={max_workers}, "
            f"store: {service.jobs.store.path}, "
            f"result cache: {service.jobs.cache.cache_dir})"
        )
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
