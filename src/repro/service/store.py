"""Durable SQLite-backed job store: queries survive the process that took them.

The :class:`~repro.service.jobs.JobManager` of PR 4 kept every job in one
asyncio process — a crash lost the queue, and a single hot tenant could fill
the worker pool for everyone.  :class:`JobStore` moves the queue onto disk:

* **One SQLite file, WAL mode.**  Any number of coordinator and worker
  *processes* (or hosts sharing a filesystem that supports POSIX locks) open
  the same store; SQLite's locking plus ``BEGIN IMMEDIATE`` claim
  transactions make job hand-off atomic.  WAL keeps readers (status polls,
  quota counts) unblocked by writers (claims, completions).
* **Job identity is the existing dedup key** — graph checksum + algorithm +
  eps/delta + seed (:meth:`repro.service.schema.QueryRequest.job_key`).  A
  partial unique index over the *live* states makes "enqueue if not already
  queued/running" one atomic INSERT: two coordinators racing the same query
  get the same row back.
* **Lease-based claiming with heartbeat expiry.**  A worker claims the
  oldest queued job inside one transaction, stamping its owner id and a
  lease deadline; while it computes it keeps extending the lease
  (:meth:`JobStore.heartbeat`).  A SIGKILLed worker stops heartbeating, the
  lease expires, and :meth:`JobStore.requeue_expired` flips the job back to
  ``queued`` for the next worker — no job is ever lost to a crash.
  Completion and failure are guarded by the owner id, so a worker that lost
  its lease (it stalled past the deadline and someone else took over) cannot
  clobber the successor's result.
* **States** are ``queued → running → done | failed | cancelled``; a
  ``running`` job whose lease expires goes back to ``queued`` (its
  ``attempts`` counter survives).  Jobs that crash workers repeatedly are
  poisoned into ``failed`` once ``attempts`` reaches the requeue cap, so one
  bad request cannot live-lock the fleet.

The store holds the *request* and, once finished, the full result JSON — the
row alone can answer a poll after every process restarts.  Results are also
persisted to the dominance-aware :class:`~repro.service.cache.ResultCache` by
whoever completes the job, so the cache tier stays the fast path.

Fault-injection tests in ``tests/test_service_durability.py`` drive all of
this with real SIGKILLed worker processes; ``scripts/load_smoke.py`` gates
multi-worker throughput in CI.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "JobRecord",
    "JobStore",
    "QuotaExceeded",
    "STATES",
    "LIVE_STATES",
    "FINISHED_STATES",
    "default_worker_id",
]

PathLike = Union[str, Path]

#: Every state a stored job can be in.
STATES = ("queued", "running", "done", "failed", "cancelled")

#: States that occupy queue/worker capacity (quota accounting, dedup).
LIVE_STATES = ("queued", "running")

#: Terminal states.
FINISHED_STATES = ("done", "failed", "cancelled")

#: How long a claim lives without a heartbeat before the job is re-queued.
DEFAULT_LEASE_SECONDS = 15.0

#: ``requeue_expired`` poisons a job into ``failed`` once it has been
#: claimed this many times — a job that keeps killing workers must not
#: live-lock the fleet.
DEFAULT_MAX_ATTEMPTS = 5

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    key            TEXT NOT NULL,
    tenant         TEXT NOT NULL DEFAULT 'default',
    state          TEXT NOT NULL CHECK (state IN
                       ('queued','running','done','failed','cancelled')),
    request        TEXT NOT NULL,
    checksum       TEXT NOT NULL,
    graph_path     TEXT NOT NULL,
    kwargs         TEXT NOT NULL DEFAULT '{}',
    attempts       INTEGER NOT NULL DEFAULT 0,
    lease_owner    TEXT,
    lease_deadline REAL,
    created_at     REAL NOT NULL,
    started_at     REAL,
    finished_at    REAL,
    result         TEXT,
    error          TEXT
);
CREATE UNIQUE INDEX IF NOT EXISTS jobs_live_key
    ON jobs(key) WHERE state IN ('queued', 'running');
CREATE INDEX IF NOT EXISTS jobs_state ON jobs(state, created_at, id);
CREATE INDEX IF NOT EXISTS jobs_tenant ON jobs(tenant, state);
"""

_COLUMNS = (
    "id", "key", "tenant", "state", "request", "checksum", "graph_path",
    "kwargs", "attempts", "lease_owner", "lease_deadline", "created_at",
    "started_at", "finished_at", "result", "error",
)


class QuotaExceeded(RuntimeError):
    """A tenant is over its admission-control limit (HTTP 429).

    Raised by the :class:`~repro.service.jobs.JobManager` admission check,
    defined here because the limits are counted against this store.
    """

    def __init__(self, message: str, *, tenant: str, limit: int, current: int) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.limit = limit
        self.current = current


def default_worker_id(prefix: str = "worker") -> str:
    """A worker identity unique across hosts and processes.

    Leases are guarded by this id, so two workers must never share one —
    host + pid + a monotonic-ish suffix keeps ids distinct even when pids
    recycle between a crash and its replacement.
    """
    return f"{prefix}:{socket.gethostname()}:{os.getpid()}:{os.urandom(2).hex()}"


@dataclass(frozen=True)
class JobRecord:
    """One row of the store (immutable snapshot; re-:meth:`JobStore.get` to refresh)."""

    id: int
    key: str
    tenant: str
    state: str
    request: Dict[str, object]
    checksum: str
    graph_path: str
    kwargs: Dict[str, object]
    attempts: int
    lease_owner: Optional[str]
    lease_deadline: Optional[float]
    created_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    result: Optional[str]
    error: Optional[str]

    @property
    def job_id(self) -> str:
        """The external job id (``job-<row>``), stable across restarts."""
        return f"job-{self.id}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe summary for ``/v1/jobs`` (the result payload is elided)."""
        return {
            "job_id": self.job_id,
            "key": self.key,
            "tenant": self.tenant,
            "state": self.state,
            "request": dict(self.request),
            "graph_checksum": self.checksum,
            "attempts": self.attempts,
            "lease_owner": self.lease_owner,
            "lease_deadline": self.lease_deadline,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "has_result": self.result is not None,
            "error": self.error,
        }


def _row_to_record(row: Sequence) -> JobRecord:
    data = dict(zip(_COLUMNS, row))
    data["request"] = json.loads(data["request"])
    data["kwargs"] = json.loads(data["kwargs"])
    return JobRecord(**data)


class JobStore:
    """The durable job queue over one SQLite file (see module docstring).

    Parameters
    ----------
    path:
        The database file; parent directories are created.  Every process
        that should share the queue opens the same path.
    lease_seconds:
        Default claim lifetime between heartbeats.
    clock:
        Injectable time source (``time.time``); tests use a fake clock to
        expire leases without sleeping.

    Connections are per-thread (SQLite objects are not thread-safe), created
    lazily and closed by :meth:`close`.  All timestamps are ``clock()``
    floats (seconds).
    """

    def __init__(
        self,
        path: PathLike,
        *,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        clock=time.time,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        self.path = Path(path)
        self.lease_seconds = float(lease_seconds)
        self.clock = clock
        self._local = threading.local()
        self._connections: List[sqlite3.Connection] = []
        self._connections_lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._conn() as conn:
            conn.executescript(_SCHEMA)

    # ------------------------------------------------------------------ #
    # Connections
    # ------------------------------------------------------------------ #
    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(
                self.path, timeout=10.0, isolation_level=None, check_same_thread=False
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=10000")
            self._local.conn = conn
            with self._connections_lock:
                self._connections.append(conn)
        return conn

    def close(self) -> None:
        """Close every connection this store opened (idempotent)."""
        with self._connections_lock:
            conns, self._connections = self._connections, []
        for conn in conns:
            try:
                conn.close()
            except sqlite3.Error:
                pass
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # Enqueue / claim / heartbeat / finish
    # ------------------------------------------------------------------ #
    def enqueue(
        self,
        *,
        key: str,
        tenant: str,
        request: Dict[str, object],
        checksum: str,
        graph_path: str,
        kwargs: Optional[Dict[str, object]] = None,
    ) -> Tuple[JobRecord, bool]:
        """Add a job, or join the live one with the same key.

        Returns ``(record, created)``; ``created`` is ``False`` when a
        queued/running job with this ``key`` already exists (cross-process
        deduplication — the caller should watch that job instead).  The
        partial unique index makes the existence check and the insert one
        atomic statement, so two racing coordinators cannot both create it.
        """
        conn = self._conn()
        now = self.clock()
        payload = (
            key,
            tenant,
            json.dumps(request),
            checksum,
            graph_path,
            json.dumps(kwargs or {}),
            now,
        )
        try:
            cursor = conn.execute(
                "INSERT INTO jobs (key, tenant, state, request, checksum,"
                " graph_path, kwargs, created_at)"
                " VALUES (?, ?, 'queued', ?, ?, ?, ?, ?)",
                payload,
            )
        except sqlite3.IntegrityError:
            existing = self._select_one(
                "SELECT * FROM jobs WHERE key = ? AND state IN ('queued','running')"
                " ORDER BY id DESC LIMIT 1",
                (key,),
            )
            if existing is not None:
                return existing, False
            raise
        record = self.get_by_rowid(cursor.lastrowid)
        assert record is not None
        return record, True

    def claim(
        self,
        worker_id: str,
        *,
        job_id: Optional[int] = None,
        lease_seconds: Optional[float] = None,
    ) -> Optional[JobRecord]:
        """Atomically take the oldest queued job (or ``job_id`` specifically).

        Sets ``state='running'``, stamps ``worker_id`` as the lease owner,
        bumps ``attempts``, and returns the claimed record — or ``None`` when
        nothing is queued (or the requested job is no longer claimable).
        """
        lease = self.lease_seconds if lease_seconds is None else float(lease_seconds)
        conn = self._conn()
        now = self.clock()
        conn.execute("BEGIN IMMEDIATE")
        try:
            if job_id is not None:
                row = conn.execute(
                    "SELECT id FROM jobs WHERE id = ? AND state = 'queued'", (job_id,)
                ).fetchone()
            else:
                row = conn.execute(
                    "SELECT id FROM jobs WHERE state = 'queued'"
                    " ORDER BY created_at, id LIMIT 1"
                ).fetchone()
            if row is None:
                conn.execute("ROLLBACK")
                return None
            conn.execute(
                "UPDATE jobs SET state='running', lease_owner=?, lease_deadline=?,"
                " attempts=attempts+1, started_at=COALESCE(started_at, ?)"
                " WHERE id=?",
                (worker_id, now + lease, now, row[0]),
            )
            conn.execute("COMMIT")
        except BaseException:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise
        return self.get_by_rowid(row[0])

    def heartbeat(
        self, job_id: int, worker_id: str, *, lease_seconds: Optional[float] = None
    ) -> bool:
        """Extend a claim's lease; ``False`` means the lease was lost.

        A ``False`` return tells the worker its job was re-queued (it stalled
        past the deadline) — it should abandon the run; its eventual
        :meth:`complete` would be rejected anyway.
        """
        lease = self.lease_seconds if lease_seconds is None else float(lease_seconds)
        cursor = self._conn().execute(
            "UPDATE jobs SET lease_deadline=? WHERE id=? AND lease_owner=?"
            " AND state='running'",
            (self.clock() + lease, job_id, worker_id),
        )
        return cursor.rowcount == 1

    def complete(self, job_id: int, worker_id: str, result_json: str) -> bool:
        """Mark a claimed job ``done``, storing the full result JSON.

        Guarded by the lease owner: a worker that lost its lease cannot
        overwrite whatever the successor produced.  Returns whether the
        completion was accepted.
        """
        cursor = self._conn().execute(
            "UPDATE jobs SET state='done', result=?, error=NULL, finished_at=?,"
            " lease_owner=NULL, lease_deadline=NULL"
            " WHERE id=? AND lease_owner=? AND state='running'",
            (result_json, self.clock(), job_id, worker_id),
        )
        return cursor.rowcount == 1

    def fail(self, job_id: int, worker_id: str, error: str) -> bool:
        """Mark a claimed job ``failed`` (estimation raised; deterministic
        errors would fail again, so there is no automatic retry — crashes are
        retried via lease expiry instead)."""
        cursor = self._conn().execute(
            "UPDATE jobs SET state='failed', error=?, finished_at=?,"
            " lease_owner=NULL, lease_deadline=NULL"
            " WHERE id=? AND lease_owner=? AND state='running'",
            (error, self.clock(), job_id, worker_id),
        )
        return cursor.rowcount == 1

    def cancel(self, job_id: int) -> bool:
        """Cancel a job that has not started; running jobs cannot be recalled
        from their worker and finish normally."""
        cursor = self._conn().execute(
            "UPDATE jobs SET state='cancelled', finished_at=?"
            " WHERE id=? AND state='queued'",
            (self.clock(), job_id),
        )
        return cursor.rowcount == 1

    def requeue_expired(
        self, *, max_attempts: int = DEFAULT_MAX_ATTEMPTS
    ) -> Tuple[int, int]:
        """Crash recovery: flip expired-lease running jobs back to ``queued``.

        Jobs already claimed ``max_attempts`` times are poisoned into
        ``failed`` instead (every claim bumped ``attempts``, so repeated
        worker deaths converge).  Returns ``(requeued, poisoned)``.  Every
        worker and coordinator calls this in its poll loop — recovery needs
        any *one* survivor, not a dedicated janitor.
        """
        conn = self._conn()
        now = self.clock()
        conn.execute("BEGIN IMMEDIATE")
        try:
            poisoned = conn.execute(
                "UPDATE jobs SET state='failed', finished_at=?,"
                " error=COALESCE(error, 'lease expired after ' || attempts ||"
                " ' attempts (worker crash loop?)'),"
                " lease_owner=NULL, lease_deadline=NULL"
                " WHERE state='running' AND lease_deadline < ? AND attempts >= ?",
                (now, now, max_attempts),
            ).rowcount
            requeued = conn.execute(
                "UPDATE jobs SET state='queued', lease_owner=NULL,"
                " lease_deadline=NULL"
                " WHERE state='running' AND lease_deadline < ?",
                (now,),
            ).rowcount
            conn.execute("COMMIT")
        except BaseException:
            try:
                conn.execute("ROLLBACK")
            except sqlite3.Error:
                pass
            raise
        return requeued, poisoned

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def _select_one(self, sql: str, params: Tuple) -> Optional[JobRecord]:
        row = self._conn().execute(sql, params).fetchone()
        return None if row is None else _row_to_record(row)

    def get_by_rowid(self, rowid: int) -> Optional[JobRecord]:
        return self._select_one("SELECT * FROM jobs WHERE id = ?", (rowid,))

    def get(self, job_id: Union[int, str]) -> Optional[JobRecord]:
        """Look a job up by row id or external ``job-<row>`` id."""
        if isinstance(job_id, str):
            if not job_id.startswith("job-"):
                return None
            try:
                job_id = int(job_id[len("job-"):])
            except ValueError:
                return None
        return self.get_by_rowid(job_id)

    def list(
        self,
        *,
        states: Optional[Sequence[str]] = None,
        tenant: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[JobRecord]:
        """Records filtered by state/tenant, oldest first."""
        sql = "SELECT * FROM jobs"
        clauses, params = [], []
        if states:
            clauses.append(f"state IN ({','.join('?' * len(states))})")
            params.extend(states)
        if tenant is not None:
            clauses.append("tenant = ?")
            params.append(tenant)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY created_at, id"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        rows = self._conn().execute(sql, tuple(params)).fetchall()
        return [_row_to_record(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """``{state: count}`` over every state (zero-filled)."""
        out = {state: 0 for state in STATES}
        for state, count in self._conn().execute(
            "SELECT state, COUNT(*) FROM jobs GROUP BY state"
        ):
            out[state] = count
        return out

    def tenant_counts(self) -> Dict[str, Dict[str, int]]:
        """``{tenant: {state: count}}`` over the *live* states (quota input)."""
        out: Dict[str, Dict[str, int]] = {}
        for tenant, state, count in self._conn().execute(
            "SELECT tenant, state, COUNT(*) FROM jobs"
            " WHERE state IN ('queued','running') GROUP BY tenant, state"
        ):
            out.setdefault(tenant, {s: 0 for s in LIVE_STATES})[state] = count
        return out

    def live_count(self, tenant: str, state: str) -> int:
        """How many jobs a tenant has in one live state (admission check)."""
        (count,) = self._conn().execute(
            "SELECT COUNT(*) FROM jobs WHERE tenant = ? AND state = ?",
            (tenant, state),
        ).fetchone()
        return count

    # ------------------------------------------------------------------ #
    # Retention
    # ------------------------------------------------------------------ #
    def prune_finished(self, *, keep: int = 1000) -> int:
        """Drop all but the newest ``keep`` finished rows; returns how many.

        Finished rows carry full result JSON, so an immortal store would grow
        without bound — the same class of leak
        :meth:`~repro.service.jobs.JobManager` clamps in memory.
        """
        cursor = self._conn().execute(
            "DELETE FROM jobs WHERE state IN ('done','failed','cancelled')"
            " AND id NOT IN (SELECT id FROM jobs"
            "   WHERE state IN ('done','failed','cancelled')"
            "   ORDER BY finished_at DESC, id DESC LIMIT ?)",
            (int(keep),),
        )
        return cursor.rowcount
