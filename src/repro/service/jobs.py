"""Job coordination: dedup, quotas and cached execution over a durable store.

The :class:`JobManager` is the service's brain; the HTTP layer on top of it
is a thin translation.  One query flows through it as:

1. **Resolve** — the graph spec goes through the shared
   :class:`~repro.store.GraphCatalog` (text inputs convert into the graph
   cache on first touch) and comes back as an ``.rcsr`` path plus its content
   checksum.  This runs in a thread so a first-touch conversion never stalls
   the event loop.
2. **Cache probe** — the :class:`~repro.service.cache.ResultCache` is scanned
   for an entry that *dominates* the request (same graph checksum, same
   algorithm family, eps'/delta' at least as tight; exact entries dominate
   everything).  Repeated probes short-circuit in the cache's in-memory
   TTL+LRU hot tier; either way a hit answers with zero sampling.  A
   near-miss (same adaptive family and seed, tighter-than-cached eps/delta)
   whose entry carries a session checkpoint becomes a *refine* job instead of
   a cold one, and a graph recorded as a *mutation* of a cached parent
   becomes an *update* job (:mod:`repro.evolve`), exactly as before.
3. **Dedup** — an identical request (same
   :meth:`~repro.service.schema.QueryRequest.job_key`) already in flight is
   joined, not re-run — whether it is in flight in *this* process or, via the
   store's live-key index, in any other coordinator sharing the store.
4. **Admit** — per-tenant quotas (:class:`TenantQuota`): a tenant over its
   max in-flight or max queued jobs is rejected with
   :class:`~repro.service.store.QuotaExceeded` (HTTP 429) *before* the job
   exists, so one hot tenant cannot starve the queue for everyone.
5. **Enqueue** — the job becomes a row in the SQLite-backed
   :class:`~repro.service.store.JobStore`.  From here on it survives this
   process: a crashed coordinator's jobs are re-run on restart
   (:meth:`JobManager.resume_pending`) or picked up by external workers.
6. **Execute** — with ``dispatch="pool"`` (default) the manager claims its
   own row and runs the estimation in a worker pool as before (process pool
   by default; thread pool for tests), heartbeating the lease while the
   estimation runs.  With ``dispatch="external"`` the manager only watches
   the row: N separate worker processes
   (``python -m repro.service.worker``) drain the store, and the manager
   resolves the waiting future when the row turns ``done``.
7. **Store** — the finished result is written to the result cache (by the
   pool worker here, or by the external worker there) together with the
   session checkpoint when the backend supports refinement, and the full
   result JSON lands in the job row — the durable copy that answers polls
   after every process restarts.
"""

from __future__ import annotations

import asyncio
import functools
import os
import socket
import sqlite3
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.core.result import BetweennessResult
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.service.cache import CacheEntry, ResultCache
from repro.service.dominance import algorithm_family
from repro.service.schema import QueryRequest
from repro.service.store import JobStore, QuotaExceeded
from repro.store import GraphCatalog

__all__ = ["Job", "JobManager", "SubmitOutcome", "TenantQuota"]

#: Default progress events kept per job (ring buffer; clients poll the tail).
MAX_EVENTS = 64

#: Default finished jobs kept in memory for status polling before pruning.
MAX_FINISHED_JOBS = 256

#: Default finished rows kept in the durable store.
STORE_RETENTION = 1000

WORKER_MODES = ("process", "thread")
DISPATCH_MODES = ("pool", "external")

#: Lease given to pool-claimed jobs.  The pool heartbeats every
#: ``lease/3`` while the estimation runs, so the lease only expires when the
#: coordinator actually died — at which point a restart's
#: :meth:`JobManager.resume_pending` (or any external worker's
#: ``requeue_expired``) recovers the job.
POOL_LEASE_SECONDS = 15.0

#: The service counters, in the order ``stats()`` reports them.  Each becomes
#: a ``repro_service_<key>_total`` counter on the manager's registry; the
#: :attr:`JobManager.counters` mapping view keeps the historical dict-of-int
#: shape on top of them.
_COUNTER_KEYS = (
    ("queries", "Queries received by the job manager"),
    ("cache_hits", "Queries answered straight from the result cache"),
    ("cache_misses", "Queries that required sampling"),
    ("cache_refines", "Jobs that refined a cached session checkpoint"),
    ("cache_updates", "Jobs that incrementally updated a cached parent session"),
    ("deduplicated", "Queries joined onto an identical in-flight job"),
    ("quota_rejected", "Queries rejected by per-tenant admission control"),
    ("completed", "Jobs finished successfully"),
    ("failed", "Jobs finished with an error"),
    ("cache_write_failures", "Results computed but not persisted to the cache"),
)


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits (``None`` = unlimited).

    ``max_inflight`` caps a tenant's total live jobs (queued + running);
    ``max_queued`` caps the queued backlog alone — a tighter knob that lets a
    tenant keep workers busy but not hoard the queue.  Limits are counted
    against the durable store, so they hold across every coordinator sharing
    it.  Cache hits and dedup joins are free: quotas meter *work*.
    """

    max_inflight: Optional[int] = None
    max_queued: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_inflight", "max_queued"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int) or value <= 0):
                raise ValueError(f"{name} must be a positive integer or None")

    @property
    def unlimited(self) -> bool:
        return self.max_inflight is None and self.max_queued is None

    def as_dict(self) -> Dict[str, Optional[int]]:
        return {"max_inflight": self.max_inflight, "max_queued": self.max_queued}


def _estimate_kwargs(request: QueryRequest, resources) -> Dict[str, object]:
    kwargs: Dict[str, object] = {
        "algorithm": request.algorithm,
        "eps": request.eps,
        "delta": request.delta,
    }
    if request.seed is not None:
        kwargs["seed"] = request.seed
    if resources is not None:
        kwargs["resources"] = resources
    return kwargs


def _process_run(
    job_id: str,
    graph_path: str,
    kwargs: Dict[str, object],
    queue,
    collect_metrics: bool = False,
):
    """Worker-process entry point: run one estimation, stream progress back.

    Runs in a ``ProcessPoolExecutor`` worker, so it re-imports the facade and
    memory-maps the graph locally — the parent never ships graph data, only
    the path.  ``queue`` is a ``multiprocessing.Manager`` queue proxy; events
    that fail to enqueue are dropped (progress is best-effort, results are
    not).

    Returns ``(result, metrics_snapshot)``.  When ``collect_metrics`` the
    worker's process-global registry is cleared before the run and its
    snapshot shipped back with the result, so the parent can ``merge()`` the
    kernel counters (samples, batches) of every worker into its own registry
    — worker processes have no other channel back to ``/metrics``.  The
    registry is a pure transport buffer here: nothing else in the worker
    reads it, so clearing per job keeps the snapshot equal to this job's
    delta even when the pool reuses the process.
    """
    from repro.api import estimate_betweenness
    from repro.obs import metrics as worker_metrics

    if collect_metrics:
        worker_metrics.REGISTRY.clear()
        worker_metrics.enable_metrics()

    def on_event(event) -> None:
        try:
            queue.put_nowait((job_id, event.as_dict()))
        except Exception:
            pass

    result = estimate_betweenness(graph_path, callbacks=on_event, **kwargs)
    snapshot = worker_metrics.REGISTRY.snapshot() if collect_metrics else None
    return result, snapshot


@dataclass
class Job:
    """One enqueued/running/finished estimation (the in-memory view).

    Every job is also a row in the durable :class:`JobStore`
    (:attr:`store_id`); this object adds what only this process has — the
    awaitable future, the progress-event ring, waiter counts.
    """

    id: str
    key: str
    request: QueryRequest
    checksum: str
    graph_path: str
    future: "asyncio.Future[BetweennessResult]" = field(repr=False)
    status: str = "queued"  # queued | running | done | error
    #: Row id in the durable store (``id`` is ``job-<store_id>``).
    store_id: Optional[int] = None
    #: How many times the store has handed this job to a worker.
    attempts: int = 0
    #: Cache-entry key of the session checkpoint this job resumes from
    #: (``None`` for cold runs) and the snapshot path handed to the worker.
    refined_from: Optional[str] = None
    resume_from: Optional[str] = field(default=None, repr=False)
    #: Parent-graph checksum this job incrementally updates from (``None``
    #: outside the evolving-graph path), plus the parent snapshot path and
    #: the lineage delta payload handed to the worker.
    updated_from: Optional[str] = None
    update_from: Optional[str] = field(default=None, repr=False)
    update_delta: Optional[dict] = field(default=None, repr=False)
    #: Where the worker should checkpoint the finished session (``None``
    #: disables snapshot production, e.g. for custom-estimator test seams).
    checkpoint_path: Optional[str] = field(default=None, repr=False)
    events: Deque[dict] = field(default_factory=lambda: deque(maxlen=MAX_EVENTS))
    #: Monotonic count of events ever emitted (the deque only keeps the tail);
    #: clients use it to detect new events across a full ring buffer.
    num_events: int = 0
    result: Optional[BetweennessResult] = None
    error: Optional[str] = None
    num_waiters: int = 1
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def add_event(self, event: dict) -> None:
        self.events.append(event)
        self.num_events += 1

    def status_dict(self) -> Dict[str, object]:
        """The polling representation (``GET /v1/jobs/<id>``), without scores."""
        out: Dict[str, object] = {
            "job_id": self.id,
            "status": self.status,
            "request": self.request.as_dict(),
            "tenant": self.request.tenant,
            "graph_checksum": self.checksum,
            "num_waiters": self.num_waiters,
            "attempts": self.attempts,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "progress": list(self.events),
            "num_events": self.num_events,
            "refined_from": self.refined_from,
            "updated_from": self.updated_from,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass(frozen=True)
class SubmitOutcome:
    """What :meth:`JobManager.submit` decided for one request."""

    checksum: str
    served_from_cache: bool = False
    deduplicated: bool = False
    job: Optional[Job] = None
    result: Optional[BetweennessResult] = None
    cache_entry: Optional[CacheEntry] = None


class JobManager:
    """Owns the cache, the durable store and the worker pool (see module docs).

    Parameters
    ----------
    cache, catalog:
        Shared :class:`ResultCache` / :class:`~repro.store.GraphCatalog`;
        fresh defaults (honouring ``$REPRO_RESULT_CACHE`` /
        ``$REPRO_GRAPH_CACHE``) when omitted.
    store:
        The durable :class:`JobStore` (or a path to its SQLite file).
        Defaults to ``jobs.sqlite3`` inside the result-cache directory, so
        every coordinator and worker sharing the cache shares the queue.
    dispatch:
        ``"pool"`` (default): this manager claims and executes its own jobs
        in its worker pool.  ``"external"``: jobs are only enqueued; separate
        ``python -m repro.service.worker`` processes drain the store and the
        manager watches the rows.
    resources:
        :class:`~repro.api.Resources` handed to every estimation.
    worker_mode:
        ``"process"`` (default; one estimation per pool process) or
        ``"thread"``.  Pool dispatch only.
    max_workers:
        Concurrent estimations in pool dispatch.
    quota:
        Per-tenant :class:`TenantQuota` admission limits (default: none).
    lease_seconds:
        Claim lifetime for pool-dispatched jobs (heartbeated while running).
    poll_seconds:
        Store poll interval for watched (external/foreign) jobs.
    max_finished_jobs, max_events_per_job, store_retention:
        Retention clamps: finished jobs kept in memory, progress events kept
        per job, finished rows kept in the store.
    estimator:
        Thread-mode only: replaces :func:`repro.api.estimate_betweenness`
        (must accept the same keyword arguments).  This is the seam tests use
        to count sampling runs.
    """

    def __init__(
        self,
        *,
        cache: Optional[ResultCache] = None,
        catalog: Optional[GraphCatalog] = None,
        store=None,
        dispatch: str = "pool",
        resources=None,
        worker_mode: str = "process",
        max_workers: int = 1,
        quota: Optional[TenantQuota] = None,
        lease_seconds: float = POOL_LEASE_SECONDS,
        poll_seconds: float = 0.25,
        max_finished_jobs: int = MAX_FINISHED_JOBS,
        max_events_per_job: int = MAX_EVENTS,
        store_retention: int = STORE_RETENTION,
        estimator: Optional[Callable[..., BetweennessResult]] = None,
    ) -> None:
        if worker_mode not in WORKER_MODES:
            raise ValueError(f"worker_mode must be one of {WORKER_MODES}, got {worker_mode!r}")
        if dispatch not in DISPATCH_MODES:
            raise ValueError(f"dispatch must be one of {DISPATCH_MODES}, got {dispatch!r}")
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if estimator is not None and worker_mode == "process":
            raise ValueError("a custom estimator requires worker_mode='thread'")
        if estimator is not None and dispatch == "external":
            raise ValueError("a custom estimator requires dispatch='pool'")
        if max_finished_jobs < 0:
            raise ValueError("max_finished_jobs must be >= 0")
        if max_events_per_job <= 0:
            raise ValueError("max_events_per_job must be positive")
        self.cache = cache if cache is not None else ResultCache()
        self.catalog = catalog if catalog is not None else GraphCatalog()
        if isinstance(store, JobStore):
            self.store = store
        elif store is not None:
            self.store = JobStore(Path(store), lease_seconds=lease_seconds)
        else:
            try:
                self.store = JobStore(
                    self.cache.cache_dir / "jobs.sqlite3", lease_seconds=lease_seconds
                )
            except (OSError, sqlite3.Error):
                # The cache directory is unusable (same failure the cache
                # write path tolerates).  Durability degrades to a private
                # ephemeral store rather than refusing to serve — an
                # explicitly configured ``store`` still fails loudly above.
                import tempfile

                self.store = JobStore(
                    Path(tempfile.mkdtemp(prefix="repro-jobs-")) / "jobs.sqlite3",
                    lease_seconds=lease_seconds,
                )
        self._dispatch = dispatch
        self._resources = resources
        self._worker_mode = worker_mode
        self._max_workers = max_workers
        self._quota = quota if quota is not None else TenantQuota()
        self._lease_seconds = float(lease_seconds)
        self._poll_seconds = float(poll_seconds)
        self._max_finished_jobs = int(max_finished_jobs)
        self._max_events_per_job = int(max_events_per_job)
        self._store_retention = int(store_retention)
        self._estimator = estimator
        self._executor = None
        self._manager = None
        self._event_queue = None
        self._drain_thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}
        #: Lease identity of this coordinator's pool claims; encodes host and
        #: pid so :meth:`resume_pending` can recognise (and reclaim) rows a
        #: dead local coordinator left behind.
        self.worker_id = f"pool:{socket.gethostname()}:{os.getpid()}"
        #: Per-manager metrics registry: the counters below plus the job
        #: latency histogram and in-flight gauge.  The server renders it next
        #: to the process-global :data:`repro.obs.metrics.REGISTRY` on
        #: ``GET /metrics``.  These service counters are the source of truth
        #: for :meth:`stats`, so they increment unconditionally (not gated on
        #: ``REPRO_METRICS`` — they sit on the asyncio control path, far off
        #: the sampling hot loop).
        self.metrics = MetricsRegistry()
        self._counter_metrics = {
            key: self.metrics.counter(f"repro_service_{key}_total", help)
            for key, help in _COUNTER_KEYS
        }
        self._inflight_gauge = self.metrics.gauge(
            "repro_service_inflight_jobs", "Jobs currently queued or running"
        )
        self._job_seconds = self.metrics.histogram(
            "repro_service_job_duration_seconds",
            "Wall-clock duration of finished estimation jobs",
            buckets=(0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0),
        )
        self._job_samples = self.metrics.counter(
            "repro_service_job_samples_total",
            "Shortest-path samples drawn by finished jobs",
        )
        self._samples_per_second = self.metrics.gauge(
            "repro_service_samples_per_second",
            "Sampling throughput of the most recently finished job",
        )
        self._store_jobs_gauge = self.metrics.gauge(
            "repro_store_jobs",
            "Jobs in the durable store by state",
            labelnames=("state",),
        )
        self._tenant_live_gauge = self.metrics.gauge(
            "repro_store_tenant_live_jobs",
            "Live (queued+running) store jobs by tenant",
            labelnames=("tenant",),
        )
        self._hot_counters = {
            key: self.metrics.counter(
                f"repro_cache_hot_{key}_total", f"Hot-tier result cache {key}"
            )
            for key in ("hits", "misses", "evictions")
        }
        self._hot_entries_gauge = self.metrics.gauge(
            "repro_cache_hot_entries", "Results currently held in the hot tier"
        )
        self._hot_seen = {key: 0 for key in self._hot_counters}
        self._tenants_seen: set = set()

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def _count(self, key: str) -> None:
        """Increment one service counter (atomic: one lock per registry)."""
        self._counter_metrics[key].inc()

    @property
    def counters(self) -> Dict[str, int]:
        """The service counters as the historical ``{name: int}`` mapping."""
        return {key: int(metric.value) for key, metric in self._counter_metrics.items()}

    def _observe_finished(self, job: Job, result: BetweennessResult) -> None:
        """Record duration/throughput metrics of one finished job."""
        if job.started_at is None or job.finished_at is None:
            return
        seconds = max(0.0, job.finished_at - job.started_at)
        self._job_seconds.observe(seconds)
        num_samples = int(result.num_samples)
        if num_samples > 0:
            self._job_samples.inc(num_samples)
            if seconds > 0:
                self._samples_per_second.set(num_samples / seconds)

    def refresh_metrics(self) -> None:
        """Bring the store/hot-tier gauges up to date (cheap; called before
        every ``/metrics`` render and ``stats()``)."""
        for state, count in self.store.counts().items():
            self._store_jobs_gauge.labels(state=state).set(count)
        live = self.store.tenant_counts()
        # Tenants that went idle drop out of tenant_counts(); without the
        # explicit zero their gauge would hold its last nonzero value forever.
        for tenant in self._tenants_seen.difference(live):
            self._tenant_live_gauge.labels(tenant=tenant).set(0)
        for tenant, states in live.items():
            self._tenant_live_gauge.labels(tenant=tenant).set(sum(states.values()))
        self._tenants_seen.update(live)
        hot = self.cache.hot_stats()
        for key, counter in self._hot_counters.items():
            delta = int(hot[key]) - self._hot_seen[key]
            if delta > 0:
                counter.inc(delta)
                self._hot_seen[key] += delta
        self._hot_entries_gauge.set(int(hot["entries"]))

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def _resolve(self, spec: str) -> Tuple[str, str]:
        """Blocking: graph spec -> (.rcsr path, content checksum)."""
        path = self.catalog.resolve(spec)
        return str(path), self.catalog.checksum(path)

    def _admit(self, tenant: str) -> None:
        """Per-tenant admission control; raises :class:`QuotaExceeded`.

        Counted against the durable store, so the limits hold across every
        coordinator sharing it.  Runs synchronously on the event loop — the
        check must share one loop step with the dedup probe and the enqueue
        (SQLite on local disk is microseconds; an ``await`` here would let
        two concurrent submits both pass the limit).
        """
        if self._quota.unlimited:
            return
        queued = self.store.live_count(tenant, "queued")
        if self._quota.max_queued is not None and queued >= self._quota.max_queued:
            self._count("quota_rejected")
            raise QuotaExceeded(
                f"tenant {tenant!r} has {queued} queued jobs"
                f" (max_queued={self._quota.max_queued}); retry later",
                tenant=tenant,
                limit=self._quota.max_queued,
                current=queued,
            )
        if self._quota.max_inflight is not None:
            live = queued + self.store.live_count(tenant, "running")
            if live >= self._quota.max_inflight:
                self._count("quota_rejected")
                raise QuotaExceeded(
                    f"tenant {tenant!r} has {live} jobs in flight"
                    f" (max_inflight={self._quota.max_inflight}); retry later",
                    tenant=tenant,
                    limit=self._quota.max_inflight,
                    current=live,
                )

    async def submit(self, request: QueryRequest) -> SubmitOutcome:
        """Decide how a request is served: cache, an existing job, or a new one."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._count("queries")
        graph_path, checksum = await loop.run_in_executor(
            None, self._resolve, request.graph
        )
        family = algorithm_family(request.algorithm)
        hit = await loop.run_in_executor(
            None,
            functools.partial(
                self.cache.find,
                checksum,
                family=family,
                eps=request.eps,
                delta=request.delta,
            ),
        )
        if hit is not None:
            entry, result = hit
            self._count("cache_hits")
            return SubmitOutcome(
                checksum=checksum,
                served_from_cache=True,
                result=result,
                cache_entry=entry,
            )
        self._count("cache_misses")

        # Near-miss: a cached adaptive run with the same seed, too loose for
        # the request, but carrying a session checkpoint — refine it instead
        # of recomputing from zero.  Probed *before* the in-flight check: the
        # dedup decision, the quota check and the store insertion below must
        # share one event-loop step (no awaits between them), or two
        # identical concurrent requests both pass the check and sample twice.
        refinable = None
        if family == "adaptive-sampling":
            refinable = await loop.run_in_executor(
                None,
                functools.partial(
                    self.cache.find_refinable,
                    checksum,
                    family=family,
                    eps=request.eps,
                    delta=request.delta,
                    seed=request.seed,
                ),
            )

        # Still nothing for this graph — but if the catalog's lineage says it
        # is a recorded mutation of a cached parent, an update-refinable
        # parent checkpoint serves via restore + invalidate + re-sample
        # (repro.evolve).  Custom-estimator seams have a pinned keyword
        # signature, so the probe is skipped for them.
        update = None
        if (
            refinable is None
            and family == "adaptive-sampling"
            and self._snapshots_enabled()
        ):
            update = await loop.run_in_executor(
                None, functools.partial(self._find_update, checksum, request)
            )

        key = request.job_key(checksum)
        existing = self._inflight.get(key)
        if existing is not None:
            existing.num_waiters += 1
            self._count("deduplicated")
            return SubmitOutcome(checksum=checksum, deduplicated=True, job=existing)

        # New work for this process: admission control, then the atomic
        # enqueue.  Both are synchronous (see _admit) — no awaits until the
        # job is registered in _inflight.
        self._admit(request.tenant)

        kwargs: Dict[str, object] = {}
        refined_from = updated_from = None
        resume_from = update_from = None
        update_delta = None
        if refinable is not None:
            entry, snapshot_path = refinable
            refined_from = entry.key
            resume_from = str(snapshot_path)
            kwargs["resume_from"] = resume_from
        elif update is not None:
            parent_checksum, entry, snapshot_path, delta_payload = update
            updated_from = parent_checksum
            update_from = snapshot_path
            update_delta = delta_payload
            kwargs["update_from"] = update_from
            kwargs["graph_delta"] = update_delta

        record, created = self.store.enqueue(
            key=key,
            tenant=request.tenant,
            request=request.as_dict(),
            checksum=checksum,
            graph_path=graph_path,
            kwargs=kwargs,
        )
        job = Job(
            id=record.job_id,
            key=key,
            request=request,
            checksum=checksum,
            graph_path=graph_path,
            future=loop.create_future(),
            store_id=record.id,
            attempts=record.attempts,
            refined_from=refined_from,
            resume_from=resume_from,
            updated_from=updated_from,
            update_from=update_from,
            update_delta=update_delta,
            events=deque(maxlen=self._max_events_per_job),
        )
        if created and self._dispatch == "pool" and self._snapshots_enabled():
            # Writer-unique name: the cache directory is explicitly shared
            # across processes — a plain ".job-N.snap.tmp" would let two
            # services clobber each other's snapshots and cache one under the
            # other's (seed-keyed!) entry.
            from repro.store.format import unique_tmp_path

            job.checkpoint_path = str(
                unique_tmp_path(self.cache.cache_dir / f".{job.id}.snap")
            )
        if refinable is not None:
            self._count("cache_refines")
        elif update is not None:
            self._count("cache_updates")
        # Errors must reach pollers even when no submitter awaits the future.
        job.future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._jobs[job.id] = job
        self._inflight[key] = job
        self._inflight_gauge.set(len(self._inflight))
        self._prune_finished()
        if created and self._dispatch == "pool":
            asyncio.ensure_future(self._run(job))
        else:
            # Either another coordinator already owns the live row (dedup
            # across processes) or dispatch is external — both mean: watch
            # the store until the row finishes.
            if not created:
                self._count("deduplicated")
            asyncio.ensure_future(self._watch(job))
        return SubmitOutcome(checksum=checksum, job=job)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _find_update(
        self, checksum: str, request: QueryRequest
    ) -> Optional[Tuple[str, CacheEntry, str, dict]]:
        """Blocking: lineage probe + parent-cache scan for an update source.

        Returns ``(parent_checksum, entry, snapshot_path, delta_payload)``
        when the requested graph descends from a cached parent whose entry is
        update-refinable (adaptive family, matching seed, checkpoint with a
        sample log), else ``None``.
        """
        lineage = self.catalog.lineage(checksum)
        if lineage is None:
            return None
        parent_checksum = lineage.get("parent_checksum")
        delta_payload = lineage.get("delta")
        if not parent_checksum or not isinstance(delta_payload, dict):
            return None
        found = self.cache.find_update_refinable(
            parent_checksum,
            family="adaptive-sampling",
            eps=request.eps,
            delta=request.delta,
            seed=request.seed,
        )
        if found is None:
            return None
        entry, snapshot_path = found
        return parent_checksum, entry, str(snapshot_path), delta_payload

    def _snapshots_enabled(self) -> bool:
        """Whether jobs should produce session checkpoints.

        Custom estimators (the thread-mode test seam) have a pinned keyword
        signature and never produce snapshots; the real facade writes one
        whenever the resolved backend supports refinement.
        """
        return self._estimator is None

    def _finish_cache_write(self, job: Job, result: BetweennessResult) -> None:
        """Blocking: persist result (+ session snapshot, if produced)."""
        snapshot = None
        if job.checkpoint_path is not None and Path(job.checkpoint_path).is_file():
            snapshot = job.checkpoint_path
        try:
            self.cache.put(job.checksum, job.request, result, snapshot=snapshot)
        finally:
            if snapshot is not None:
                try:
                    Path(snapshot).unlink()
                except OSError:
                    pass

    def _ensure_workers(self):
        if self._executor is not None:
            return self._executor
        if self._worker_mode == "process":
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            self._manager = multiprocessing.Manager()
            self._event_queue = self._manager.Queue()
            self._drain_thread = threading.Thread(
                target=self._drain_events, name="repro-service-progress", daemon=True
            )
            self._drain_thread.start()
            self._executor = ProcessPoolExecutor(max_workers=self._max_workers)
        else:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers, thread_name_prefix="repro-service-worker"
            )
        return self._executor

    def _drain_events(self) -> None:
        """Daemon thread: fan worker-process progress into job buffers."""
        while True:
            item = self._event_queue.get()
            if item is None:
                return
            job_id, event = item
            loop = self._loop
            if loop is not None and not loop.is_closed():
                loop.call_soon_threadsafe(self._post_event, job_id, event)

    def _post_event(self, job_id: str, event: dict) -> None:
        job = self._jobs.get(job_id)
        if job is not None:
            job.add_event(event)

    def _finish_error(self, job: Job, exc: Exception) -> None:
        job.status = "error"
        job.error = f"{type(exc).__name__}: {exc}"
        job.finished_at = time.time()
        self._count("failed")
        self._inflight.pop(job.key, None)
        self._inflight_gauge.set(len(self._inflight))
        if job.checkpoint_path is not None:
            try:
                Path(job.checkpoint_path).unlink(missing_ok=True)
            except OSError:
                pass
        if not job.future.cancelled():
            job.future.set_exception(exc)

    def _finish_done(self, job: Job, result: BetweennessResult) -> None:
        job.result = result
        job.status = "done"
        job.finished_at = time.time()
        self._count("completed")
        self._observe_finished(job, result)
        self._inflight.pop(job.key, None)
        self._inflight_gauge.set(len(self._inflight))
        self._prune_finished()
        if not job.future.cancelled():
            job.future.set_result(result)

    async def _run(self, job: Job) -> None:
        """Pool dispatch: claim our own store row and execute it here."""
        loop = asyncio.get_running_loop()
        executor = self._ensure_workers()
        claimed = self.store.claim(
            self.worker_id, job_id=job.store_id, lease_seconds=self._lease_seconds
        )
        if claimed is None:
            # Someone else (an external worker sharing the store) grabbed the
            # row between enqueue and claim — fall back to watching it.
            await self._watch(job)
            return
        job.attempts = claimed.attempts
        job.status = "running"
        job.started_at = time.time()
        kwargs = _estimate_kwargs(job.request, self._resources)
        if job.resume_from is not None:
            kwargs["resume_from"] = job.resume_from
        if job.update_from is not None:
            kwargs["update_from"] = job.update_from
            kwargs["graph_delta"] = job.update_delta
        if job.checkpoint_path is not None:
            kwargs["checkpoint_path"] = job.checkpoint_path
        try:
            if self._worker_mode == "process":
                func = functools.partial(
                    _process_run,
                    job.id,
                    job.graph_path,
                    kwargs,
                    self._event_queue,
                    obs_metrics.metrics_enabled(),
                )
            else:
                estimator = self._estimator or _default_estimator()

                def on_event(event) -> None:
                    loop.call_soon_threadsafe(job.add_event, event.as_dict())

                func = functools.partial(
                    estimator, job.graph_path, callbacks=on_event, **kwargs
                )
            result = await self._await_with_heartbeat(
                loop.run_in_executor(executor, func), job
            )
            if self._worker_mode == "process":
                result, worker_snapshot = result
                if worker_snapshot:
                    # Fold the worker's kernel counters (samples/batches) into
                    # this process's global registry — it is what /metrics
                    # renders; worker registries die with their processes.
                    obs_metrics.REGISTRY.merge(worker_snapshot)
        except Exception as exc:  # noqa: BLE001 - job errors become status
            self.store.fail(job.store_id, self.worker_id, f"{type(exc).__name__}: {exc}")
            self._finish_error(job, exc)
            return
        # The cache write is an optimization: an unwritable cache directory
        # must not turn a correctly computed result into a failed job.
        try:
            await loop.run_in_executor(None, self._finish_cache_write, job, result)
        except Exception as exc:  # noqa: BLE001
            self._count("cache_write_failures")
            job.add_event(
                {"phase": "cache-write-failed", "error": f"{type(exc).__name__}: {exc}"}
            )
        self.store.complete(job.store_id, self.worker_id, result.to_json())
        self._finish_done(job, result)

    async def _await_with_heartbeat(self, fut, job: Job):
        """Await an executor future, extending the job's store lease meanwhile.

        Heartbeats fire every ``lease/3`` without a standing background task:
        the wait itself wakes up to beat.  A lost lease (this coordinator
        stalled past the deadline and the job was re-queued) is deliberately
        *not* fatal — the local run finishes and both writers race the
        owner-guarded ``complete``; results are deterministic in the seed, so
        whichever lands is correct.
        """
        fut = asyncio.ensure_future(fut)
        interval = max(0.05, self._lease_seconds / 3.0)
        while True:
            try:
                return await asyncio.wait_for(asyncio.shield(fut), timeout=interval)
            except asyncio.TimeoutError:
                self.store.heartbeat(
                    job.store_id, self.worker_id, lease_seconds=self._lease_seconds
                )

    async def _watch(self, job: Job) -> None:
        """External dispatch (or a foreign live row): poll the store row.

        The watcher is also the janitor: every poll re-queues expired leases,
        so a coordinator with no external workers of its own still recovers
        crashed workers' jobs for the survivors.
        """
        loop = asyncio.get_running_loop()
        while True:
            record = await loop.run_in_executor(
                None, self.store.get_by_rowid, job.store_id
            )
            if record is None:
                self._finish_error(job, RuntimeError("job row vanished from the store"))
                return
            job.attempts = record.attempts
            if record.state == "running" and job.status == "queued":
                job.status = "running"
                job.started_at = record.started_at
            elif record.state == "done":
                try:
                    result = BetweennessResult.from_json(record.result)
                except Exception as exc:  # noqa: BLE001 - corrupt row payload
                    self._finish_error(job, exc)
                    return
                if job.started_at is None:
                    job.started_at = record.started_at
                self._finish_done(job, result)
                return
            elif record.state in ("failed", "cancelled"):
                self._finish_error(
                    job, RuntimeError(record.error or f"job {record.state}")
                )
                return
            await loop.run_in_executor(None, self.store.requeue_expired)
            await asyncio.sleep(self._poll_seconds)

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def _requeue_dead_local(self) -> int:
        """Re-queue rows claimed by pool coordinators that died on this host.

        Pool claims encode ``pool:<host>:<pid>``; a row whose owner names
        this host but a dead pid will otherwise sit until its lease expires.
        Returns how many rows were released.
        """
        released = 0
        host = socket.gethostname()
        for record in self.store.list(states=("running",)):
            owner = record.lease_owner or ""
            parts = owner.split(":")
            if len(parts) < 3 or parts[0] != "pool" or parts[1] != host:
                continue
            try:
                pid = int(parts[2])
            except ValueError:
                continue
            if pid == os.getpid() or _pid_alive(pid):
                continue
            cursor = self.store._conn().execute(
                "UPDATE jobs SET state='queued', lease_owner=NULL,"
                " lease_deadline=NULL WHERE id=? AND lease_owner=?",
                (record.id, owner),
            )
            released += cursor.rowcount
        return released

    async def resume_pending(self) -> int:
        """Adopt jobs a previous (crashed/restarted) process left behind.

        Re-queues expired leases and dead local pool claims, then dispatches
        every queued row this process is not already tracking: pool dispatch
        re-runs them here, external dispatch watches them for the workers.
        Recovered jobs have ``num_waiters == 0`` — their original clients are
        gone — but their results still land in the store and the cache.
        Returns how many jobs were adopted.
        """
        loop = asyncio.get_running_loop()
        self._loop = loop
        self.store.requeue_expired()
        self._requeue_dead_local()
        tracked = {job.store_id for job in self._jobs.values()}
        adopted = 0
        for record in self.store.list(states=("queued",)):
            if record.id in tracked:
                continue
            try:
                request = QueryRequest.from_dict(record.request)
            except Exception:  # noqa: BLE001 - unparseable legacy row
                continue
            job = Job(
                id=record.job_id,
                key=record.key,
                request=request,
                checksum=record.checksum,
                graph_path=record.graph_path,
                future=loop.create_future(),
                store_id=record.id,
                attempts=record.attempts,
                resume_from=record.kwargs.get("resume_from"),
                update_from=record.kwargs.get("update_from"),
                update_delta=record.kwargs.get("graph_delta"),
                num_waiters=0,
                events=deque(maxlen=self._max_events_per_job),
            )
            job.future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None
            )
            self._jobs[job.id] = job
            self._inflight[job.key] = job
            if self._dispatch == "pool":
                asyncio.ensure_future(self._run(job))
            else:
                asyncio.ensure_future(self._watch(job))
            adopted += 1
        self._inflight_gauge.set(len(self._inflight))
        return adopted

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def get_job(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> Tuple[Job, ...]:
        return tuple(self._jobs.values())

    def _prune_finished(self) -> None:
        """Clamp in-memory and store retention of finished jobs.

        Finished jobs pin their full result (score vectors!) in memory, so
        an unclamped history is a slow leak under serving load — the same
        reason the store keeps only ``store_retention`` finished rows.
        """
        finished = [j for j in self._jobs.values() if j.status in ("done", "error")]
        for job in finished[: max(0, len(finished) - self._max_finished_jobs)]:
            self._jobs.pop(job.id, None)
        self.store.prune_finished(keep=self._store_retention)

    def stats(self) -> Dict[str, object]:
        self.refresh_metrics()
        return {
            **self.counters,
            "inflight": len(self._inflight),
            "worker_mode": self._worker_mode,
            "max_workers": self._max_workers,
            "dispatch": self._dispatch,
            "cache_dir": str(self.cache.cache_dir),
            "graph_cache_dir": str(self.catalog.cache_dir),
            "store_path": str(self.store.path),
            "store": self.store.counts(),
            "tenants": self.store.tenant_counts(),
            "quota": self._quota.as_dict(),
            "hot_cache": self.cache.hot_stats(),
        }

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._event_queue is not None:
            try:
                self._event_queue.put(None)
            except Exception:
                pass
        if self._drain_thread is not None:
            self._drain_thread.join(timeout=2.0)
            self._drain_thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
        self._event_queue = None
        self.store.close()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _default_estimator() -> Callable[..., BetweennessResult]:
    from repro.api import estimate_betweenness

    return estimate_betweenness
