"""Asyncio job queue: dedup, worker pools and cached execution of queries.

The :class:`JobManager` is the service's brain; the HTTP layer on top of it
is a thin translation.  One query flows through it as:

1. **Resolve** — the graph spec goes through the shared
   :class:`~repro.store.GraphCatalog` (text inputs convert into the graph
   cache on first touch) and comes back as an ``.rcsr`` path plus its content
   checksum.  This runs in a thread so a first-touch conversion never stalls
   the event loop.
2. **Cache probe** — the :class:`~repro.service.cache.ResultCache` is scanned
   for an entry that *dominates* the request (same graph checksum, same
   algorithm family, eps'/delta' at least as tight; exact entries dominate
   everything).  A hit answers in O(ms) with zero sampling.  A near-miss
   (same adaptive family and seed, tighter-than-cached eps/delta) whose entry
   carries a session checkpoint becomes a *refine* job instead of a cold one:
   the worker restores the checkpoint and draws only the additional samples
   (``resume_from`` in :func:`repro.api.estimate_betweenness`).  When even
   that misses but the catalog's lineage records the requested graph as a
   *mutation* of a cached parent (see
   :meth:`~repro.store.GraphCatalog.apply_delta`), an update-refinable parent
   checkpoint turns the job into an *update* instead: the worker restores the
   parent session, invalidates only the samples the edge delta touched, and
   re-certifies on the mutated graph (``update_from`` / ``graph_delta`` in
   the facade, :mod:`repro.evolve` underneath).
3. **Dedup** — an identical request (same
   :meth:`~repro.service.schema.QueryRequest.job_key`) already in flight is
   joined, not re-run: both clients await the same job.
4. **Execute** — the job runs :func:`repro.api.estimate_betweenness` in a
   worker pool: a ``ProcessPoolExecutor`` by default (sampling is CPU-bound
   Python+numpy; separate processes sidestep the GIL), or a thread pool
   (``worker_mode="thread"``) where in-process callbacks and monkeypatching
   matter more than parallelism — tests, notably.  Progress events from the
   worker stream into the job's event buffer, which polling clients read as
   job status.
5. **Store** — the finished result is written back to the cache — together
   with the worker's final session checkpoint when the backend supports
   refinement — so the next dominated request anywhere (any process sharing
   the cache dir) is a hit, and the next *tighter* request is a refine.
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.core.result import BetweennessResult
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry
from repro.service.cache import CacheEntry, ResultCache
from repro.service.dominance import algorithm_family
from repro.service.schema import QueryRequest
from repro.store import GraphCatalog

__all__ = ["Job", "JobManager", "SubmitOutcome"]

#: Progress events kept per job (ring buffer; clients poll the tail).
MAX_EVENTS = 64

#: Finished jobs kept for status polling before being pruned.
MAX_FINISHED_JOBS = 256

WORKER_MODES = ("process", "thread")

#: The service counters, in the order ``stats()`` reports them.  Each becomes
#: a ``repro_service_<key>_total`` counter on the manager's registry; the
#: :attr:`JobManager.counters` mapping view keeps the historical dict-of-int
#: shape on top of them.
_COUNTER_KEYS = (
    ("queries", "Queries received by the job manager"),
    ("cache_hits", "Queries answered straight from the result cache"),
    ("cache_misses", "Queries that required sampling"),
    ("cache_refines", "Jobs that refined a cached session checkpoint"),
    ("cache_updates", "Jobs that incrementally updated a cached parent session"),
    ("deduplicated", "Queries joined onto an identical in-flight job"),
    ("completed", "Jobs finished successfully"),
    ("failed", "Jobs finished with an error"),
    ("cache_write_failures", "Results computed but not persisted to the cache"),
)


def _estimate_kwargs(request: QueryRequest, resources) -> Dict[str, object]:
    kwargs: Dict[str, object] = {
        "algorithm": request.algorithm,
        "eps": request.eps,
        "delta": request.delta,
    }
    if request.seed is not None:
        kwargs["seed"] = request.seed
    if resources is not None:
        kwargs["resources"] = resources
    return kwargs


def _process_run(
    job_id: str,
    graph_path: str,
    kwargs: Dict[str, object],
    queue,
    collect_metrics: bool = False,
):
    """Worker-process entry point: run one estimation, stream progress back.

    Runs in a ``ProcessPoolExecutor`` worker, so it re-imports the facade and
    memory-maps the graph locally — the parent never ships graph data, only
    the path.  ``queue`` is a ``multiprocessing.Manager`` queue proxy; events
    that fail to enqueue are dropped (progress is best-effort, results are
    not).

    Returns ``(result, metrics_snapshot)``.  When ``collect_metrics`` the
    worker's process-global registry is cleared before the run and its
    snapshot shipped back with the result, so the parent can ``merge()`` the
    kernel counters (samples, batches) of every worker into its own registry
    — worker processes have no other channel back to ``/metrics``.  The
    registry is a pure transport buffer here: nothing else in the worker
    reads it, so clearing per job keeps the snapshot equal to this job's
    delta even when the pool reuses the process.
    """
    from repro.api import estimate_betweenness
    from repro.obs import metrics as worker_metrics

    if collect_metrics:
        worker_metrics.REGISTRY.clear()
        worker_metrics.enable_metrics()

    def on_event(event) -> None:
        try:
            queue.put_nowait((job_id, event.as_dict()))
        except Exception:
            pass

    result = estimate_betweenness(graph_path, callbacks=on_event, **kwargs)
    snapshot = worker_metrics.REGISTRY.snapshot() if collect_metrics else None
    return result, snapshot


@dataclass
class Job:
    """One enqueued/running/finished estimation."""

    id: str
    key: str
    request: QueryRequest
    checksum: str
    graph_path: str
    future: "asyncio.Future[BetweennessResult]" = field(repr=False)
    status: str = "queued"  # queued | running | done | error
    #: Cache-entry key of the session checkpoint this job resumes from
    #: (``None`` for cold runs) and the snapshot path handed to the worker.
    refined_from: Optional[str] = None
    resume_from: Optional[str] = field(default=None, repr=False)
    #: Parent-graph checksum this job incrementally updates from (``None``
    #: outside the evolving-graph path), plus the parent snapshot path and
    #: the lineage delta payload handed to the worker.
    updated_from: Optional[str] = None
    update_from: Optional[str] = field(default=None, repr=False)
    update_delta: Optional[dict] = field(default=None, repr=False)
    #: Where the worker should checkpoint the finished session (``None``
    #: disables snapshot production, e.g. for custom-estimator test seams).
    checkpoint_path: Optional[str] = field(default=None, repr=False)
    events: Deque[dict] = field(default_factory=lambda: deque(maxlen=MAX_EVENTS))
    #: Monotonic count of events ever emitted (the deque only keeps the tail);
    #: clients use it to detect new events across a full ring buffer.
    num_events: int = 0
    result: Optional[BetweennessResult] = None
    error: Optional[str] = None
    num_waiters: int = 1
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def add_event(self, event: dict) -> None:
        self.events.append(event)
        self.num_events += 1

    def status_dict(self) -> Dict[str, object]:
        """The polling representation (``GET /v1/jobs/<id>``), without scores."""
        out: Dict[str, object] = {
            "job_id": self.id,
            "status": self.status,
            "request": self.request.as_dict(),
            "graph_checksum": self.checksum,
            "num_waiters": self.num_waiters,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "progress": list(self.events),
            "num_events": self.num_events,
            "refined_from": self.refined_from,
            "updated_from": self.updated_from,
        }
        if self.error is not None:
            out["error"] = self.error
        return out


@dataclass(frozen=True)
class SubmitOutcome:
    """What :meth:`JobManager.submit` decided for one request."""

    checksum: str
    served_from_cache: bool = False
    deduplicated: bool = False
    job: Optional[Job] = None
    result: Optional[BetweennessResult] = None
    cache_entry: Optional[CacheEntry] = None


class JobManager:
    """Owns the cache, the dedup table and the worker pool (see module docs).

    Parameters
    ----------
    cache, catalog:
        Shared :class:`ResultCache` / :class:`~repro.store.GraphCatalog`;
        fresh defaults (honouring ``$REPRO_RESULT_CACHE`` /
        ``$REPRO_GRAPH_CACHE``) when omitted.
    resources:
        :class:`~repro.api.Resources` handed to every estimation.
    worker_mode:
        ``"process"`` (default; one estimation per pool process) or
        ``"thread"``.
    max_workers:
        Concurrent estimations.
    estimator:
        Thread-mode only: replaces :func:`repro.api.estimate_betweenness`
        (must accept the same keyword arguments).  This is the seam tests use
        to count sampling runs.
    """

    def __init__(
        self,
        *,
        cache: Optional[ResultCache] = None,
        catalog: Optional[GraphCatalog] = None,
        resources=None,
        worker_mode: str = "process",
        max_workers: int = 1,
        estimator: Optional[Callable[..., BetweennessResult]] = None,
    ) -> None:
        if worker_mode not in WORKER_MODES:
            raise ValueError(f"worker_mode must be one of {WORKER_MODES}, got {worker_mode!r}")
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if estimator is not None and worker_mode == "process":
            raise ValueError("a custom estimator requires worker_mode='thread'")
        self.cache = cache if cache is not None else ResultCache()
        self.catalog = catalog if catalog is not None else GraphCatalog()
        self._resources = resources
        self._worker_mode = worker_mode
        self._max_workers = max_workers
        self._estimator = estimator
        self._executor = None
        self._manager = None
        self._event_queue = None
        self._drain_thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}
        self._ids = itertools.count(1)
        #: Per-manager metrics registry: the counters below plus the job
        #: latency histogram and in-flight gauge.  The server renders it next
        #: to the process-global :data:`repro.obs.metrics.REGISTRY` on
        #: ``GET /metrics``.  These service counters are the source of truth
        #: for :meth:`stats`, so they increment unconditionally (not gated on
        #: ``REPRO_METRICS`` — they sit on the asyncio control path, far off
        #: the sampling hot loop).
        self.metrics = MetricsRegistry()
        self._counter_metrics = {
            key: self.metrics.counter(f"repro_service_{key}_total", help)
            for key, help in _COUNTER_KEYS
        }
        self._inflight_gauge = self.metrics.gauge(
            "repro_service_inflight_jobs", "Jobs currently queued or running"
        )
        self._job_seconds = self.metrics.histogram(
            "repro_service_job_duration_seconds",
            "Wall-clock duration of finished estimation jobs",
            buckets=(0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0),
        )
        self._job_samples = self.metrics.counter(
            "repro_service_job_samples_total",
            "Shortest-path samples drawn by finished jobs",
        )
        self._samples_per_second = self.metrics.gauge(
            "repro_service_samples_per_second",
            "Sampling throughput of the most recently finished job",
        )

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def _count(self, key: str) -> None:
        """Increment one service counter (atomic: one lock per registry)."""
        self._counter_metrics[key].inc()

    @property
    def counters(self) -> Dict[str, int]:
        """The service counters as the historical ``{name: int}`` mapping."""
        return {key: int(metric.value) for key, metric in self._counter_metrics.items()}

    def _observe_finished(self, job: Job, result: BetweennessResult) -> None:
        """Record duration/throughput metrics of one finished job."""
        if job.started_at is None or job.finished_at is None:
            return
        seconds = max(0.0, job.finished_at - job.started_at)
        self._job_seconds.observe(seconds)
        num_samples = int(result.num_samples)
        if num_samples > 0:
            self._job_samples.inc(num_samples)
            if seconds > 0:
                self._samples_per_second.set(num_samples / seconds)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def _resolve(self, spec: str) -> Tuple[str, str]:
        """Blocking: graph spec -> (.rcsr path, content checksum)."""
        path = self.catalog.resolve(spec)
        return str(path), self.catalog.checksum(path)

    async def submit(self, request: QueryRequest) -> SubmitOutcome:
        """Decide how a request is served: cache, an existing job, or a new one."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._count("queries")
        graph_path, checksum = await loop.run_in_executor(
            None, self._resolve, request.graph
        )
        family = algorithm_family(request.algorithm)
        hit = await loop.run_in_executor(
            None,
            functools.partial(
                self.cache.find,
                checksum,
                family=family,
                eps=request.eps,
                delta=request.delta,
            ),
        )
        if hit is not None:
            entry, result = hit
            self._count("cache_hits")
            return SubmitOutcome(
                checksum=checksum,
                served_from_cache=True,
                result=result,
                cache_entry=entry,
            )
        self._count("cache_misses")

        # Near-miss: a cached adaptive run with the same seed, too loose for
        # the request, but carrying a session checkpoint — refine it instead
        # of recomputing from zero.  Probed *before* the in-flight check: the
        # dedup decision and the job insertion below must share one event-loop
        # step (no awaits between them), or two identical concurrent requests
        # both pass the check and sample twice.
        refinable = None
        if family == "adaptive-sampling":
            refinable = await loop.run_in_executor(
                None,
                functools.partial(
                    self.cache.find_refinable,
                    checksum,
                    family=family,
                    eps=request.eps,
                    delta=request.delta,
                    seed=request.seed,
                ),
            )

        # Still nothing for this graph — but if the catalog's lineage says it
        # is a recorded mutation of a cached parent, an update-refinable
        # parent checkpoint serves via restore + invalidate + re-sample
        # (repro.evolve).  Custom-estimator seams have a pinned keyword
        # signature, so the probe is skipped for them.
        update = None
        if (
            refinable is None
            and family == "adaptive-sampling"
            and self._snapshots_enabled()
        ):
            update = await loop.run_in_executor(
                None, functools.partial(self._find_update, checksum, request)
            )

        key = request.job_key(checksum)
        existing = self._inflight.get(key)
        if existing is not None:
            existing.num_waiters += 1
            self._count("deduplicated")
            return SubmitOutcome(checksum=checksum, deduplicated=True, job=existing)

        job = Job(
            id=f"job-{next(self._ids)}",
            key=key,
            request=request,
            checksum=checksum,
            graph_path=graph_path,
            future=loop.create_future(),
        )
        if refinable is not None:
            entry, snapshot_path = refinable
            job.refined_from = entry.key
            job.resume_from = str(snapshot_path)
            self._count("cache_refines")
        elif update is not None:
            parent_checksum, entry, snapshot_path, delta_payload = update
            job.updated_from = parent_checksum
            job.update_from = snapshot_path
            job.update_delta = delta_payload
            self._count("cache_updates")
        if self._snapshots_enabled():
            # Writer-unique name: job ids restart at 1 in every service
            # process, and the cache directory is explicitly shared across
            # processes — a plain ".job-1.snap.tmp" would let two services
            # clobber each other's snapshots and cache one under the other's
            # (seed-keyed!) entry.
            from repro.store.format import unique_tmp_path

            job.checkpoint_path = str(
                unique_tmp_path(self.cache.cache_dir / f".job-{job.id}.snap")
            )
        # Errors must reach pollers even when no submitter awaits the future.
        job.future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._jobs[job.id] = job
        self._inflight[key] = job
        self._inflight_gauge.set(len(self._inflight))
        self._prune_finished()
        asyncio.ensure_future(self._run(job))
        return SubmitOutcome(checksum=checksum, job=job)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _find_update(
        self, checksum: str, request: QueryRequest
    ) -> Optional[Tuple[str, CacheEntry, str, dict]]:
        """Blocking: lineage probe + parent-cache scan for an update source.

        Returns ``(parent_checksum, entry, snapshot_path, delta_payload)``
        when the requested graph descends from a cached parent whose entry is
        update-refinable (adaptive family, matching seed, checkpoint with a
        sample log), else ``None``.
        """
        lineage = self.catalog.lineage(checksum)
        if lineage is None:
            return None
        parent_checksum = lineage.get("parent_checksum")
        delta_payload = lineage.get("delta")
        if not parent_checksum or not isinstance(delta_payload, dict):
            return None
        found = self.cache.find_update_refinable(
            parent_checksum,
            family="adaptive-sampling",
            eps=request.eps,
            delta=request.delta,
            seed=request.seed,
        )
        if found is None:
            return None
        entry, snapshot_path = found
        return parent_checksum, entry, str(snapshot_path), delta_payload

    def _snapshots_enabled(self) -> bool:
        """Whether jobs should produce session checkpoints.

        Custom estimators (the thread-mode test seam) have a pinned keyword
        signature and never produce snapshots; the real facade writes one
        whenever the resolved backend supports refinement.
        """
        return self._estimator is None

    def _finish_cache_write(self, job: Job, result: BetweennessResult) -> None:
        """Blocking: persist result (+ session snapshot, if produced)."""
        snapshot = None
        if job.checkpoint_path is not None and Path(job.checkpoint_path).is_file():
            snapshot = job.checkpoint_path
        try:
            self.cache.put(job.checksum, job.request, result, snapshot=snapshot)
        finally:
            if snapshot is not None:
                try:
                    Path(snapshot).unlink()
                except OSError:
                    pass

    def _ensure_workers(self):
        if self._executor is not None:
            return self._executor
        if self._worker_mode == "process":
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            self._manager = multiprocessing.Manager()
            self._event_queue = self._manager.Queue()
            self._drain_thread = threading.Thread(
                target=self._drain_events, name="repro-service-progress", daemon=True
            )
            self._drain_thread.start()
            self._executor = ProcessPoolExecutor(max_workers=self._max_workers)
        else:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers, thread_name_prefix="repro-service-worker"
            )
        return self._executor

    def _drain_events(self) -> None:
        """Daemon thread: fan worker-process progress into job buffers."""
        while True:
            item = self._event_queue.get()
            if item is None:
                return
            job_id, event = item
            loop = self._loop
            if loop is not None and not loop.is_closed():
                loop.call_soon_threadsafe(self._post_event, job_id, event)

    def _post_event(self, job_id: str, event: dict) -> None:
        job = self._jobs.get(job_id)
        if job is not None:
            job.add_event(event)

    async def _run(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        executor = self._ensure_workers()
        job.status = "running"
        job.started_at = time.time()
        kwargs = _estimate_kwargs(job.request, self._resources)
        if job.resume_from is not None:
            kwargs["resume_from"] = job.resume_from
        if job.update_from is not None:
            kwargs["update_from"] = job.update_from
            kwargs["graph_delta"] = job.update_delta
        if job.checkpoint_path is not None:
            kwargs["checkpoint_path"] = job.checkpoint_path
        try:
            if self._worker_mode == "process":
                func = functools.partial(
                    _process_run,
                    job.id,
                    job.graph_path,
                    kwargs,
                    self._event_queue,
                    obs_metrics.metrics_enabled(),
                )
            else:
                estimator = self._estimator or _default_estimator()

                def on_event(event) -> None:
                    loop.call_soon_threadsafe(job.add_event, event.as_dict())

                func = functools.partial(
                    estimator, job.graph_path, callbacks=on_event, **kwargs
                )
            result = await loop.run_in_executor(executor, func)
            if self._worker_mode == "process":
                result, worker_snapshot = result
                if worker_snapshot:
                    # Fold the worker's kernel counters (samples/batches) into
                    # this process's global registry — it is what /metrics
                    # renders; worker registries die with their processes.
                    obs_metrics.REGISTRY.merge(worker_snapshot)
        except Exception as exc:  # noqa: BLE001 - job errors become status
            job.status = "error"
            job.error = f"{type(exc).__name__}: {exc}"
            job.finished_at = time.time()
            self._count("failed")
            self._inflight.pop(job.key, None)
            self._inflight_gauge.set(len(self._inflight))
            if job.checkpoint_path is not None:
                try:
                    Path(job.checkpoint_path).unlink(missing_ok=True)
                except OSError:
                    pass
            if not job.future.cancelled():
                job.future.set_exception(exc)
            return
        # The cache write is an optimization: an unwritable cache directory
        # must not turn a correctly computed result into a failed job.
        try:
            await loop.run_in_executor(None, self._finish_cache_write, job, result)
        except Exception as exc:  # noqa: BLE001
            self._count("cache_write_failures")
            job.add_event(
                {"phase": "cache-write-failed", "error": f"{type(exc).__name__}: {exc}"}
            )
        job.result = result
        job.status = "done"
        job.finished_at = time.time()
        self._count("completed")
        self._observe_finished(job, result)
        self._inflight.pop(job.key, None)
        self._inflight_gauge.set(len(self._inflight))
        if not job.future.cancelled():
            job.future.set_result(result)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def get_job(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> Tuple[Job, ...]:
        return tuple(self._jobs.values())

    def _prune_finished(self) -> None:
        finished = [j for j in self._jobs.values() if j.status in ("done", "error")]
        for job in finished[: max(0, len(finished) - MAX_FINISHED_JOBS)]:
            self._jobs.pop(job.id, None)

    def stats(self) -> Dict[str, object]:
        return {
            **self.counters,
            "inflight": len(self._inflight),
            "worker_mode": self._worker_mode,
            "max_workers": self._max_workers,
            "cache_dir": str(self.cache.cache_dir),
            "graph_cache_dir": str(self.catalog.cache_dir),
        }

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._event_queue is not None:
            try:
                self._event_queue.put(None)
            except Exception:
                pass
        if self._drain_thread is not None:
            self._drain_thread.join(timeout=2.0)
            self._drain_thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
        self._event_queue = None


def _default_estimator() -> Callable[..., BetweennessResult]:
    from repro.api import estimate_betweenness

    return estimate_betweenness
