"""``repro.service`` — cached betweenness query service.

The serving layer the paper's speed enables: adaptive sampling makes a
betweenness estimate cheap enough to answer on demand, and (eps, delta)
guarantees compose into a cache — a finished run at tighter accuracy on the
same graph *dominates* any looser request and serves it in O(ms) with zero
sampling.  The pieces:

* :mod:`repro.service.schema` — the validated JSON request
  (:class:`QueryRequest`) and response shaping;
* :mod:`repro.service.dominance` — when a cached result may answer a new
  query (checksum identity, algorithm families, eps/delta dominance), when a
  near-miss is *refinable* from a cached session checkpoint, and when a
  mutated graph's query is *update-refinable* from a cached parent
  checkpoint via lineage (:mod:`repro.evolve`);
* :mod:`repro.service.cache` — the persistent on-disk
  :class:`ResultCache` next to the graph cache;
* :mod:`repro.service.store` — the durable SQLite-backed :class:`JobStore`
  (lease-based claiming, heartbeat expiry, crash requeue) and the
  per-tenant admission errors (:class:`QuotaExceeded`);
* :mod:`repro.service.jobs` — the asyncio :class:`JobManager` coordinator:
  in-flight deduplication, tenant quotas (:class:`TenantQuota`),
  process/thread worker pools or external dispatch, progress streaming;
* :mod:`repro.service.worker` — :class:`StoreWorker`, the pull-loop worker
  process (``python -m repro.service.worker``) that lets N processes drain
  one store;
* :mod:`repro.service.server` — :class:`BetweennessService`, the minimal
  JSON-over-HTTP front end (``repro-betweenness serve``);
* :mod:`repro.service.client` — :class:`ServiceClient`, the blocking
  stdlib client (``repro-betweenness query``).

See ``docs/serving.md`` for the HTTP API and the reuse semantics.
"""

from repro.service.cache import CacheEntry, ResultCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.dominance import (
    HIT,
    MISS,
    REFINABLE,
    UPDATE_REFINABLE,
    algorithm_family,
    classify,
    dominates,
    select_dominating,
)
from repro.service.cache import HotTier
from repro.service.jobs import Job, JobManager, SubmitOutcome, TenantQuota
from repro.service.schema import DEFAULT_TENANT, QueryRequest, SchemaError, result_payload
from repro.service.server import BetweennessService, run_server
from repro.service.store import JobRecord, JobStore, QuotaExceeded
from repro.service.worker import StoreWorker

__all__ = [
    "BetweennessService",
    "CacheEntry",
    "DEFAULT_TENANT",
    "HotTier",
    "Job",
    "JobManager",
    "JobRecord",
    "JobStore",
    "QueryRequest",
    "QuotaExceeded",
    "ResultCache",
    "SchemaError",
    "ServiceClient",
    "ServiceError",
    "StoreWorker",
    "SubmitOutcome",
    "TenantQuota",
    "HIT",
    "MISS",
    "REFINABLE",
    "UPDATE_REFINABLE",
    "algorithm_family",
    "classify",
    "dominates",
    "result_payload",
    "run_server",
    "select_dominating",
]
