"""Dominance-aware result reuse: when does a cached run answer a new query?

KADABRA-style guarantees compose: a run that achieved absolute error
``eps'`` with failure probability ``delta'`` on a graph *also* satisfies any
request for ``eps >= eps'`` and ``delta >= delta'`` on the *same* graph —
tighter guarantees dominate looser ones.  The service exploits this: instead
of looking the exact ``(eps, delta)`` pair up in the cache, it scans the
cached entries for the graph and serves any entry that **dominates** the
request, in O(ms) and with zero sampling.

Three guards keep reuse sound:

* **Graph identity is content, not path.**  Entries are keyed by the
  ``.rcsr`` container checksum, so a re-converted (changed) graph can never
  be served stale scores.
* **Algorithm families don't mix.**  An adaptive-sampling (KADABRA-family)
  result and a fixed-sampling (RK) result carry guarantees proved by
  different arguments; a request pinned to one family is never served from
  the other.  Families are derived from the backend registry's capability
  metadata (``exact`` flag + ``cost_hint``), so new registered backends slot
  into the policy without edits here.
* **Exact results dominate everything.**  An exact Brandes run has
  ``eps = 0, delta = 0``; it serves any request on that graph regardless of
  family.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.api.registry import AUTO, get_backend

__all__ = [
    "FAMILY_ADAPTIVE",
    "FAMILY_EXACT",
    "FAMILY_FIXED",
    "FAMILY_SSSP",
    "algorithm_family",
    "dominates",
    "select_dominating",
]

FAMILY_EXACT = "exact"
FAMILY_ADAPTIVE = "adaptive-sampling"
FAMILY_FIXED = "fixed-sampling"
FAMILY_SSSP = "source-sampling"


def algorithm_family(algorithm: str) -> str:
    """Map a backend (or ``"auto"``) to its guarantee family.

    ``"auto"`` maps to the adaptive family: automatic selection only ever
    picks adaptive-sampling backends on graphs large enough to need the
    cache, and exact cached results serve every family anyway.
    """
    if algorithm == AUTO:
        return FAMILY_ADAPTIVE
    spec = get_backend(algorithm)  # raises ValueError for unknown names
    if spec.exact:
        return FAMILY_EXACT
    if spec.cost_hint == "adaptive-sampling":
        return FAMILY_ADAPTIVE
    if spec.cost_hint == "fixed-sampling":
        return FAMILY_FIXED
    return FAMILY_SSSP


def dominates(
    cached_family: str,
    cached_eps: Optional[float],
    cached_delta: Optional[float],
    *,
    family: str,
    eps: float,
    delta: float,
) -> bool:
    """True iff a cached entry's guarantee covers the requested one.

    Equality counts: a cached ``eps' == eps`` (same family, ``delta'`` no
    worse) is a hit — the common case of re-issuing the exact same query.
    Cached entries with unknown accuracy (``None`` eps/delta from a driver
    invoked outside the facade) never dominate anything.
    """
    if cached_family == FAMILY_EXACT:
        return True
    if cached_family != family:
        return False
    if cached_eps is None or cached_delta is None:
        return False
    return cached_eps <= eps and cached_delta <= delta


def select_dominating(
    entries: Sequence[Tuple[str, Optional[float], Optional[float]]],
    *,
    family: str,
    eps: float,
    delta: float,
) -> Optional[int]:
    """Index of the best dominating entry among ``(family, eps, delta)`` rows.

    Preference order: exact entries first, then the loosest still-dominating
    approximate entry (largest ``(eps, delta)``) — reusing the *cheapest*
    sufficient result leaves tighter entries untouched as the high-value
    cache inventory.  Returns ``None`` when nothing dominates.
    """
    best: Optional[int] = None
    best_rank: Tuple[int, float, float] = (2, -1.0, -1.0)
    for i, (entry_family, entry_eps, entry_delta) in enumerate(entries):
        if not dominates(
            entry_family, entry_eps, entry_delta, family=family, eps=eps, delta=delta
        ):
            continue
        if entry_family == FAMILY_EXACT:
            rank = (0, 0.0, 0.0)
        else:
            rank = (1, -float(entry_eps), -float(entry_delta))
        if best is None or rank < best_rank:
            best, best_rank = i, rank
    return best
