"""Dominance-aware result reuse: when does a cached run answer a new query?

KADABRA-style guarantees compose: a run that achieved absolute error
``eps'`` with failure probability ``delta'`` on a graph *also* satisfies any
request for ``eps >= eps'`` and ``delta >= delta'`` on the *same* graph —
tighter guarantees dominate looser ones.  The service exploits this: instead
of looking the exact ``(eps, delta)`` pair up in the cache, it scans the
cached entries for the graph and serves any entry that **dominates** the
request, in O(ms) and with zero sampling.

Three guards keep reuse sound:

* **Graph identity is content, not path.**  Entries are keyed by the
  ``.rcsr`` container checksum, so a re-converted (changed) graph can never
  be served stale scores.
* **Algorithm families don't mix.**  An adaptive-sampling (KADABRA-family)
  result and a fixed-sampling (RK) result carry guarantees proved by
  different arguments; a request pinned to one family is never served from
  the other.  Families are derived from the backend registry's capability
  metadata (``exact`` flag + ``cost_hint``), so new registered backends slot
  into the policy without edits here.
* **Exact results dominate everything.**  An exact Brandes run has
  ``eps = 0, delta = 0``; it serves any request on that graph regardless of
  family.

``eps`` and ``delta`` are treated **identically and independently**: an entry
dominates iff ``eps' <= eps`` *and* ``delta' <= delta`` — equality counts on
both axes.  In particular the *equal-eps / tighter-delta* edge (a request for
the same ``eps`` but a smaller ``delta`` than cached) is **not** a hit: the
cached run's failure probability is too large for the request, whatever its
``eps``.  Since the session redesign such near-misses are no longer cold
recomputes either — :func:`classify` returns the third verdict

* :data:`REFINABLE` — same adaptive-sampling family and the same seed, with
  the cached guarantee too loose in at least one dimension.  When the entry
  carries a session checkpoint, the service serves the request via
  ``restore + refine``, drawing only the additional samples the tighter
  ``(eps, delta)`` needs instead of resampling from zero.  Only the adaptive
  family is refinable (fixed-sampling and source-sampling bounds are a-priori
  in the sample count; exact results dominate everything anyway), and the
  seed must match because refinement continues the cached run's RNG stream —
  the refined result is bit-identical to a fresh run at the tighter target
  with *that* seed, so serving a different requested seed would silently
  break seed-pinned reproducibility.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.api.registry import AUTO, get_backend

__all__ = [
    "FAMILY_ADAPTIVE",
    "FAMILY_EXACT",
    "FAMILY_FIXED",
    "FAMILY_SSSP",
    "HIT",
    "MISS",
    "REFINABLE",
    "UPDATE_REFINABLE",
    "algorithm_family",
    "classify",
    "dominates",
    "select_dominating",
]

#: Cache verdicts returned by :func:`classify`.
HIT = "hit"
REFINABLE = "refinable"
UPDATE_REFINABLE = "update_refinable"
MISS = "miss"

FAMILY_EXACT = "exact"
FAMILY_ADAPTIVE = "adaptive-sampling"
FAMILY_FIXED = "fixed-sampling"
FAMILY_SSSP = "source-sampling"


def algorithm_family(algorithm: str) -> str:
    """Map a backend (or ``"auto"``) to its guarantee family.

    ``"auto"`` maps to the adaptive family: automatic selection only ever
    picks adaptive-sampling backends on graphs large enough to need the
    cache, and exact cached results serve every family anyway.
    """
    if algorithm == AUTO:
        return FAMILY_ADAPTIVE
    spec = get_backend(algorithm)  # raises ValueError for unknown names
    if spec.exact:
        return FAMILY_EXACT
    if spec.cost_hint == "adaptive-sampling":
        return FAMILY_ADAPTIVE
    if spec.cost_hint == "fixed-sampling":
        return FAMILY_FIXED
    return FAMILY_SSSP


def dominates(
    cached_family: str,
    cached_eps: Optional[float],
    cached_delta: Optional[float],
    *,
    family: str,
    eps: float,
    delta: float,
) -> bool:
    """True iff a cached entry's guarantee covers the requested one.

    Equality counts, on either axis independently: a cached ``eps' == eps``
    with ``delta' <= delta`` (same family) is a hit — the common case of
    re-issuing the exact same query — while ``eps' == eps`` with ``delta' >
    delta`` is *not* (the cached failure probability is too loose; see
    :func:`classify` for the refinable verdict that case earns).  Cached
    entries with unknown accuracy (``None`` eps/delta from a driver invoked
    outside the facade) never dominate anything.
    """
    if cached_family == FAMILY_EXACT:
        return True
    if cached_family != family:
        return False
    if cached_eps is None or cached_delta is None:
        return False
    return cached_eps <= eps and cached_delta <= delta


def select_dominating(
    entries: Sequence[Tuple[str, Optional[float], Optional[float]]],
    *,
    family: str,
    eps: float,
    delta: float,
) -> Optional[int]:
    """Index of the best dominating entry among ``(family, eps, delta)`` rows.

    Preference order: exact entries first, then the loosest still-dominating
    approximate entry (largest ``(eps, delta)``) — reusing the *cheapest*
    sufficient result leaves tighter entries untouched as the high-value
    cache inventory.  Returns ``None`` when nothing dominates.
    """
    best: Optional[int] = None
    best_rank: Tuple[int, float, float] = (2, -1.0, -1.0)
    for i, (entry_family, entry_eps, entry_delta) in enumerate(entries):
        if not dominates(
            entry_family, entry_eps, entry_delta, family=family, eps=eps, delta=delta
        ):
            continue
        if entry_family == FAMILY_EXACT:
            rank = (0, 0.0, 0.0)
        else:
            rank = (1, -float(entry_eps), -float(entry_delta))
        if best is None or rank < best_rank:
            best, best_rank = i, rank
    return best


def classify(
    cached_family: str,
    cached_eps: Optional[float],
    cached_delta: Optional[float],
    cached_seed: Optional[int],
    *,
    family: str,
    eps: float,
    delta: float,
    seed: Optional[int],
    same_graph: bool = True,
) -> str:
    """Verdict for one cached entry against one request.

    :data:`HIT`
        The entry dominates the request (:func:`dominates`); its scores serve
        the request as-is.  Requires ``same_graph`` — scores never transfer
        across a mutation.
    :data:`REFINABLE`
        Not a hit, but the entry is an adaptive-sampling run on the *same*
        graph with the same seed as the request (``None == None`` counts)
        whose guarantee is too loose in at least one dimension — including
        the equal-eps / tighter-delta edge.  A stored session checkpoint for
        the entry can serve the request via ``restore + refine``.
    :data:`UPDATE_REFINABLE`
        ``same_graph=False`` — the entry belongs to a *parent* graph that the
        requested graph descends from via a recorded edge delta (the caller
        establishes the lineage; this function only sees the flag).  An
        adaptive-sampling entry with the request's seed and known accuracy
        can then serve via ``restore + invalidate + re-sample``
        (:mod:`repro.evolve`), whatever the requested ``(eps, delta)`` —
        cross-graph reuse always re-certifies, so dominance does not apply.
    :data:`MISS`
        Anything else (different family, different seed, unknown cached
        accuracy, or a cross-graph entry that is not update-refinable): the
        request needs a fresh run.
    """
    if same_graph and dominates(
        cached_family, cached_eps, cached_delta, family=family, eps=eps, delta=delta
    ):
        return HIT
    if (
        cached_family == FAMILY_ADAPTIVE
        and family == FAMILY_ADAPTIVE
        and cached_seed == seed
        and cached_eps is not None
        and cached_delta is not None
    ):
        return REFINABLE if same_graph else UPDATE_REFINABLE
    return MISS
