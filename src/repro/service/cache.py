"""Persistent on-disk cache of betweenness results, keyed by graph contents.

Layout (rooted at :func:`repro.store.default_result_cache_dir`, i.e.
``$REPRO_RESULT_CACHE`` or ``results/`` next to the graph cache)::

    results/
      crc32-<16 hex>/                 one directory per graph *checksum*
        <key>.meta.json               small: accuracy, family, backend, counts
        <key>.result.json             full BetweennessResult (to_json_dict)
        <key>.session.snap            optional: session checkpoint (refinable)

Splitting each entry into a tiny meta file and the (potentially large) score
payload keeps the dominance scan cheap: finding a reusable entry reads only
meta files; the score vector is loaded once, for the single entry that wins.
Writes go through ``atomic_replace`` and the meta file is written *after* the
result payload, so a crash can leave an orphaned payload (harmless, ignored)
but never a meta file pointing at a missing/truncated result.

Keying by the ``.rcsr`` container checksum — not the request's graph string —
is what makes reuse safe across renames and stale across edits: two paths to
the same converted graph share entries, and re-converting a changed source
produces a new checksum directory, so every old entry silently misses.

Entries produced by refinement-capable backends additionally store the final
*session checkpoint* (``<key>.session.snap``, the CRC-checked container of
:mod:`repro.session.snapshot`).  A request the entry does **not** dominate but
:func:`~repro.service.dominance.classify` deems *refinable* (same adaptive
family and seed, tighter eps/delta) is then served by ``restore + refine``
instead of a cold recompute — see :meth:`ResultCache.find_refinable`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.result import BetweennessResult
from repro.service.dominance import (
    REFINABLE,
    UPDATE_REFINABLE,
    algorithm_family,
    classify,
    select_dominating,
)
from repro.service.schema import QueryRequest
from repro.store.catalog import default_result_cache_dir
from repro.store.format import atomic_replace

__all__ = ["CacheEntry", "HotTier", "ResultCache"]

PathLike = Union[str, Path]

_CACHE_VERSION = 1

#: Hot-tier defaults, overridable per instance or via the environment
#: (``$REPRO_HOT_CACHE_ENTRIES`` / ``$REPRO_HOT_CACHE_TTL``; 0 entries
#: disables the tier).
DEFAULT_HOT_ENTRIES = 256
DEFAULT_HOT_TTL_SECONDS = 60.0


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        return default


class HotTier:
    """In-memory TTL + LRU tier in front of the on-disk result cache.

    A disk cache hit is O(ms): scan the checksum directory, parse meta JSON,
    parse the winning result payload back into arrays.  Under serving load
    the same handful of (graph, accuracy) requests repeat, so the winning
    ``(entry, result)`` pair is kept in memory keyed by the *request* tuple
    ``(checksum, family, eps, delta)`` — a hot hit is a dict lookup, which
    ``scripts/load_smoke.py`` gates at >= 5x faster than the disk scan.

    * **LRU** bounds memory: at most ``max_entries`` results are pinned
      (an ``OrderedDict``, least-recently-used evicted first).
    * **TTL** bounds cross-process staleness: another process evicting a
      disk entry cannot invalidate this process's memory, so hot entries
      expire after ``ttl_seconds`` and fall back to the disk scan.  Local
      writes/evictions invalidate eagerly.
    * Only *positive* lookups are cached — caching misses would hide results
      other processes (workers!) write, for a full TTL.

    Thread-safe; shared results are returned by reference and must be
    treated as read-only (every consumer in the service tier does).
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_HOT_ENTRIES,
        ttl_seconds: float = DEFAULT_HOT_TTL_SECONDS,
        *,
        clock=time.monotonic,
    ) -> None:
        self.max_entries = int(max_entries)
        self.ttl_seconds = float(ttl_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0 and self.ttl_seconds > 0

    def get(self, key: tuple):
        """The cached value, or ``None`` (expired entries are dropped)."""
        if not self.enabled:
            return None
        now = self._clock()
        with self._lock:
            item = self._entries.get(key)
            if item is not None and now - item[0] <= self.ttl_seconds:
                self._entries.move_to_end(key)
                self.hits += 1
                return item[1]
            if item is not None:
                del self._entries[key]
                self.evictions += 1
            self.misses += 1
            return None

    def put(self, key: tuple, value) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = (self._clock(), value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, checksum: Optional[str] = None) -> None:
        """Drop entries of one graph checksum (key[0]), or everything."""
        with self._lock:
            if checksum is None:
                self.evictions += len(self._entries)
                self._entries.clear()
                return
            stale = [key for key in self._entries if key[0] == checksum]
            for key in stale:
                del self._entries[key]
            self.evictions += len(stale)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "ttl_seconds": self.ttl_seconds,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one cached result (the ``.meta.json`` contents)."""

    key: str
    graph_checksum: str
    graph: str
    algorithm: str
    family: str
    eps: Optional[float]
    delta: Optional[float]
    seed: Optional[int]
    backend: Optional[str]
    num_vertices: int
    num_samples: int
    created_at: float
    #: Whether a session checkpoint is stored next to the result, making the
    #: entry refinable.  Defaulted so meta files written before the session
    #: redesign load unchanged.
    has_snapshot: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {"cache_version": _CACHE_VERSION, **asdict(self)}


def _checksum_dirname(checksum: str) -> str:
    # "crc32:0123...":  ':' is awkward in paths (and illegal on some
    # filesystems), so directories use '-' instead.
    return checksum.replace(":", "-")


def _entry_key(algorithm: str, eps: float, delta: float, seed: Optional[int]) -> str:
    material = f"{algorithm}|{eps!r}|{delta!r}|{seed!r}"
    return hashlib.sha1(material.encode()).hexdigest()[:16]


class ResultCache:
    """Dominance-aware persistent cache of :class:`BetweennessResult` objects.

    All state is on disk; any number of :class:`ResultCache` instances (and
    processes) over the same directory see the same entries, mirroring how
    :class:`~repro.store.GraphCatalog` treats the graph cache.
    """

    def __init__(
        self,
        cache_dir: Optional[PathLike] = None,
        *,
        hot_entries: Optional[int] = None,
        hot_ttl_seconds: Optional[float] = None,
    ) -> None:
        self._cache_dir = (
            Path(cache_dir) if cache_dir is not None else default_result_cache_dir()
        )
        if hot_entries is None:
            hot_entries = int(_env_float("REPRO_HOT_CACHE_ENTRIES", DEFAULT_HOT_ENTRIES))
        if hot_ttl_seconds is None:
            hot_ttl_seconds = _env_float("REPRO_HOT_CACHE_TTL", DEFAULT_HOT_TTL_SECONDS)
        self.hot = HotTier(hot_entries, hot_ttl_seconds)

    @property
    def cache_dir(self) -> Path:
        return self._cache_dir

    def hot_stats(self) -> Dict[str, object]:
        """Hit/miss/occupancy counters of the in-memory hot tier."""
        return self.hot.stats()

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def put(
        self,
        checksum: str,
        request: QueryRequest,
        result: BetweennessResult,
        *,
        snapshot: Optional[PathLike] = None,
    ) -> CacheEntry:
        """Store a finished run; returns the entry that now serves it.

        The entry records the *achieved* guarantee (the eps/delta echoed in
        the result, which the facade always populates) and the family of the
        backend that actually ran — not the request's ``"auto"``.

        ``snapshot`` optionally names a session checkpoint file produced by
        the run; it is copied next to the result as ``<key>.session.snap``
        and the entry is marked refinable.  Write order is snapshot, result,
        meta — so a meta file claiming ``has_snapshot`` always points at
        complete files.
        """
        algorithm = result.backend or request.algorithm
        eps = result.eps if result.eps is not None else request.eps
        delta = result.delta if result.delta is not None else request.delta
        family = algorithm_family(algorithm)
        entry = CacheEntry(
            key=_entry_key(algorithm, eps, delta, request.seed),
            graph_checksum=checksum,
            graph=request.graph,
            algorithm=algorithm,
            family=family,
            eps=None if family == "exact" else float(eps),
            delta=None if family == "exact" else float(delta),
            seed=request.seed,
            backend=result.backend,
            num_vertices=result.num_vertices,
            num_samples=int(result.num_samples),
            created_at=time.time(),
            has_snapshot=snapshot is not None,
        )
        entry_dir = self._cache_dir / _checksum_dirname(checksum)
        entry_dir.mkdir(parents=True, exist_ok=True)
        # Snapshot and payload first, meta last: a meta file implies complete
        # companion files.
        if snapshot is not None:
            with atomic_replace(self._snapshot_path(entry_dir, entry.key)) as tmp:
                tmp.write_bytes(Path(snapshot).read_bytes())
        else:
            # Overwriting a snapshot-carrying entry with a snapshot-less run
            # must drop the old checkpoint, or it leaks on disk forever (the
            # new meta says has_snapshot=False, so nothing would ever serve
            # or evict it through the entry again).
            try:
                self._snapshot_path(entry_dir, entry.key).unlink()
            except OSError:
                pass
        with atomic_replace(self._result_path(entry_dir, entry.key)) as tmp:
            tmp.write_text(result.to_json())
        with atomic_replace(self._meta_path(entry_dir, entry.key)) as tmp:
            tmp.write_text(json.dumps(entry.as_dict(), indent=2, sort_keys=True))
        # A new entry may change which on-disk entry *wins* for requests on
        # this graph (select_dominating prefers the loosest sufficient one),
        # so the hot tier's memory of those verdicts is dropped.
        self.hot.invalidate(checksum)
        return entry

    # ------------------------------------------------------------------ #
    # Scanning / lookup
    # ------------------------------------------------------------------ #
    @staticmethod
    def _meta_path(entry_dir: Path, key: str) -> Path:
        return entry_dir / f"{key}.meta.json"

    @staticmethod
    def _result_path(entry_dir: Path, key: str) -> Path:
        return entry_dir / f"{key}.result.json"

    @staticmethod
    def _snapshot_path(entry_dir: Path, key: str) -> Path:
        return entry_dir / f"{key}.session.snap"

    def snapshot_path(self, entry: CacheEntry) -> Optional[Path]:
        """The on-disk session checkpoint of an entry, or ``None``."""
        if not entry.has_snapshot:
            return None
        entry_dir = self._cache_dir / _checksum_dirname(entry.graph_checksum)
        path = self._snapshot_path(entry_dir, entry.key)
        return path if path.is_file() else None

    def _read_entry(self, meta_path: Path) -> Optional[CacheEntry]:
        try:
            payload = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("cache_version") != _CACHE_VERSION:
            return None
        payload.pop("cache_version", None)
        try:
            return CacheEntry(**payload)
        except TypeError:
            return None

    def entries(self, checksum: Optional[str] = None) -> List[CacheEntry]:
        """All valid entries (for one graph checksum, or the whole cache)."""
        if checksum is not None:
            dirs = [self._cache_dir / _checksum_dirname(checksum)]
        elif self._cache_dir.is_dir():
            dirs = sorted(d for d in self._cache_dir.iterdir() if d.is_dir())
        else:
            dirs = []
        out: List[CacheEntry] = []
        for entry_dir in dirs:
            if not entry_dir.is_dir():
                continue
            try:
                meta_paths = sorted(entry_dir.glob("*.meta.json"))
            except OSError:
                continue  # directory evicted between the listing and the scan
            for meta_path in meta_paths:
                entry = self._read_entry(meta_path)
                if entry is not None:
                    out.append(entry)
        return out

    def load(self, entry: CacheEntry) -> BetweennessResult:
        """The full result of a cache entry (raises if the payload is gone)."""
        entry_dir = self._cache_dir / _checksum_dirname(entry.graph_checksum)
        return BetweennessResult.from_json(
            self._result_path(entry_dir, entry.key).read_text()
        )

    def find(
        self, checksum: str, *, family: str, eps: float, delta: float
    ) -> Optional[Tuple[CacheEntry, BetweennessResult]]:
        """The best cached result dominating ``(family, eps, delta)``, or None.

        Consults the in-memory :class:`HotTier` first (keyed by the request
        tuple); a hot hit skips the disk scan entirely.  An entry whose
        payload turns out unreadable (corruption, concurrent eviction) is
        skipped and the next-best dominating entry is tried.
        """
        hot_key = (checksum, family, float(eps), float(delta))
        hot = self.hot.get(hot_key)
        if hot is not None:
            return hot
        candidates = self.entries(checksum)
        while candidates:
            rows = [(e.family, e.eps, e.delta) for e in candidates]
            index = select_dominating(rows, family=family, eps=eps, delta=delta)
            if index is None:
                return None
            entry = candidates.pop(index)
            try:
                found = entry, self.load(entry)
            except (OSError, ValueError, KeyError):
                continue
            self.hot.put(hot_key, found)
            return found
        return None

    def find_refinable(
        self,
        checksum: str,
        *,
        family: str,
        eps: float,
        delta: float,
        seed: Optional[int],
    ) -> Optional[Tuple[CacheEntry, Path]]:
        """The best checkpoint-carrying entry refinable to ``(eps, delta)``.

        Called after :meth:`find` misses: among entries whose
        :func:`~repro.service.dominance.classify` verdict is ``refinable``
        (same adaptive family, same seed, too loose in at least one
        dimension) and that actually carry a snapshot, the one with the most
        accumulated samples wins — it leaves the least to draw.  Returns
        ``(entry, snapshot_path)`` or ``None``.
        """
        best: Optional[Tuple[CacheEntry, Path]] = None
        for entry in self.entries(checksum):
            verdict = classify(
                entry.family,
                entry.eps,
                entry.delta,
                entry.seed,
                family=family,
                eps=eps,
                delta=delta,
                seed=seed,
            )
            if verdict != REFINABLE:
                continue
            path = self.snapshot_path(entry)
            if path is None:
                continue
            if best is None or entry.num_samples > best[0].num_samples:
                best = (entry, path)
        return best

    def find_update_refinable(
        self,
        parent_checksum: str,
        *,
        family: str,
        eps: float,
        delta: float,
        seed: Optional[int],
    ) -> Optional[Tuple[CacheEntry, Path]]:
        """The best *parent-graph* entry that can serve a mutated-graph query.

        Called when the requested graph has no usable entries of its own but
        the catalog's lineage records it as ``parent_checksum`` plus a delta.
        An entry qualifies when :func:`~repro.service.dominance.classify`
        with ``same_graph=False`` says ``update_refinable`` (adaptive family,
        matching seed, known accuracy), it carries a session checkpoint,
        *and* that checkpoint holds the per-sample log the incremental
        estimator needs (``sample_log`` in the snapshot metadata — pre-log
        checkpoints restore fine but cannot be updated).  Most accumulated
        samples wins.  Returns ``(entry, snapshot_path)`` or ``None``.
        """
        from repro.session.snapshot import read_snapshot_meta

        best: Optional[Tuple[CacheEntry, Path]] = None
        for entry in self.entries(parent_checksum):
            verdict = classify(
                entry.family,
                entry.eps,
                entry.delta,
                entry.seed,
                family=family,
                eps=eps,
                delta=delta,
                seed=seed,
                same_graph=False,
            )
            if verdict != UPDATE_REFINABLE:
                continue
            path = self.snapshot_path(entry)
            if path is None:
                continue
            try:
                if not read_snapshot_meta(path).get("sample_log"):
                    continue
            except (OSError, ValueError, KeyError):
                continue
            if best is None or entry.num_samples > best[0].num_samples:
                best = (entry, path)
        return best

    # ------------------------------------------------------------------ #
    # Eviction
    # ------------------------------------------------------------------ #
    def evict(
        self, checksum: Optional[str] = None, *, key: Optional[str] = None
    ) -> int:
        """Remove entries; returns how many were evicted.

        ``checksum`` limits eviction to one graph; ``key`` (with or without a
        checksum) to one entry.  With neither, the whole cache is cleared.
        Evicting also drops the affected hot-tier entries of *this* process;
        other processes' hot tiers age out within their TTL.
        """
        self.hot.invalidate(checksum)
        removed = 0
        for entry in self.entries(checksum):
            if key is not None and entry.key != key:
                continue
            entry_dir = self._cache_dir / _checksum_dirname(entry.graph_checksum)
            for path in (
                self._meta_path(entry_dir, entry.key),
                self._result_path(entry_dir, entry.key),
                self._snapshot_path(entry_dir, entry.key),
            ):
                try:
                    path.unlink()
                except OSError:
                    pass
            removed += 1
        # Drop directories left empty (missing-ok semantics throughout).
        if self._cache_dir.is_dir():
            for entry_dir in self._cache_dir.iterdir():
                if entry_dir.is_dir():
                    try:
                        entry_dir.rmdir()
                    except OSError:
                        pass
        return removed
