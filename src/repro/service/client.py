"""Blocking stdlib client for the betweenness query service.

A thin convenience over :mod:`http.client` so the CLI (``repro-betweenness
query`` / ``cache``) and scripts can talk to a running service without any
third-party HTTP dependency.  Every method returns the decoded JSON payload;
non-2xx responses raise :class:`ServiceError` carrying the server's
``error`` message and status code.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Callable, Dict, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response (or transport failure) from the service."""

    def __init__(self, message: str, *, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Talks JSON-over-HTTP to one :class:`~repro.service.BetweennessService`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8321, *, timeout: float = 600.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    def request(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> Dict[str, object]:
        """One HTTP exchange; returns the decoded JSON body."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload)
            headers["Content-Type"] = "application/json"
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach service at http://{self.host}:{self.port}: {exc}"
                ) from None
        finally:
            conn.close()
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            raise ServiceError(
                f"non-JSON response from service (HTTP {response.status})",
                status=response.status,
            ) from None
        if response.status >= 400:
            message = decoded.get("error") if isinstance(decoded, dict) else None
            raise ServiceError(
                message or f"HTTP {response.status}", status=response.status
            )
        return decoded

    def request_text(self, method: str, path: str) -> str:
        """One HTTP exchange; returns the raw response body as text.

        The path for non-JSON endpoints — ``/metrics`` is Prometheus text,
        which :meth:`request` would reject as malformed JSON.
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            try:
                conn.request(method, path)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach service at http://{self.host}:{self.port}: {exc}"
                ) from None
        finally:
            conn.close()
        if response.status >= 400:
            raise ServiceError(f"HTTP {response.status}", status=response.status)
        return raw.decode("utf-8", errors="replace")

    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, object]:
        return self.request("GET", "/healthz")

    def metrics(self) -> str:
        """The Prometheus text exposition (``GET /metrics``), verbatim."""
        return self.request_text("GET", "/metrics")

    def backends(self) -> Dict[str, object]:
        return self.request("GET", "/v1/backends")

    def stats(self) -> Dict[str, object]:
        return self.request("GET", "/v1/stats")

    def query(self, **fields) -> Dict[str, object]:
        """Submit a query (fields per the ``/v1/query`` schema)."""
        return self.request("POST", "/v1/query", payload=fields)

    def job(self, job_id: str) -> Dict[str, object]:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def cache_entries(self) -> Dict[str, object]:
        return self.request("GET", "/v1/cache")

    def cache_evict(
        self,
        checksum: Optional[str] = None,
        *,
        key: Optional[str] = None,
        all: bool = False,
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {}
        if checksum is not None:
            payload["checksum"] = checksum
        if key is not None:
            payload["key"] = key
        if all:
            payload["all"] = True
        return self.request("POST", "/v1/cache/evict", payload=payload)

    def wait_for_job(
        self,
        job_id: str,
        *,
        poll_seconds: float = 0.2,
        timeout: Optional[float] = None,
        on_progress: Optional[Callable[[dict], None]] = None,
    ) -> Dict[str, object]:
        """Poll a job until it finishes; returns the final status payload.

        ``on_progress`` receives each *new* progress event at most once as it
        appears in the polled status — the client-side view of the progress
        stream the workers emit.  The server keeps only the tail of the event
        stream (a 64-event ring buffer) but reports the monotonic
        ``num_events`` total, so new events keep flowing after the buffer
        wraps; events that scrolled out of the buffer between two polls are
        skipped, never re-delivered.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        seen = 0
        while True:
            status = self.job(job_id)
            progress = status.get("progress", [])
            total = int(status.get("num_events", len(progress)))
            if on_progress is not None and total > seen:
                for event in progress[-min(total - seen, len(progress)):] if progress else []:
                    on_progress(event)
            seen = max(seen, total)
            if status.get("status") in ("done", "error"):
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(f"timed out waiting for job {job_id}")
            time.sleep(poll_seconds)
