"""repro — MPI-based adaptive sampling for betweenness-centrality approximation.

A from-scratch Python reproduction of *"Scaling Betweenness Approximation to
Billions of Edges by MPI-based Adaptive Sampling"* (van der Grinten &
Meyerhenke, IPDPS 2020): the KADABRA adaptive-sampling algorithm, its
epoch-based shared-memory parallelization, the MPI-style distributed
algorithms, and a discrete-event cluster model that regenerates the paper's
evaluation figures and tables.

Quickstart
----------
Every execution mode runs through the :func:`estimate_betweenness` facade;
``algorithm="auto"`` picks a backend deterministically from the graph size and
the requested resources:

>>> from repro import estimate_betweenness, Resources
>>> from repro.graph.generators import barabasi_albert
>>> graph = barabasi_albert(500, 3, seed=0)
>>> result = estimate_betweenness(graph, eps=0.05, seed=0,
...                               resources=Resources(threads=4))
>>> result.backend
'shared-memory'
>>> result.top_k(3)  # doctest: +SKIP

Backends
--------
Backends live in a registry (see :mod:`repro.api`); ``repro-betweenness
--list-backends`` prints the same table from the CLI:

===============  ======  =======  =========  =================
name             kind    threads  processes  cost
===============  ======  =======  =========  =================
sequential       approx  no       no         adaptive-sampling
shared-memory    approx  yes      no         adaptive-sampling
distributed      approx  yes      yes        adaptive-sampling
mpi-only         approx  no       yes        adaptive-sampling
rk               approx  no       no         fixed-sampling
exact            exact   no       no         n-sssp
source-sampling  approx  no       no         n-sssp
===============  ======  =======  =========  =================

New backends are added with :func:`repro.api.register_backend`; the legacy
per-algorithm classes (``KadabraBetweenness``, ``SharedMemoryKadabra``,
``DistributedKadabra``, ``RKBetweenness``, ``SourceSamplingBetweenness``)
still work but are deprecated shims over the same implementations.

Sessions
--------
``estimate_betweenness`` is a one-shot shim over the session layer
(:mod:`repro.session`).  Keeping the session instead unlocks incremental
refinement, checkpoint/resume and confidence-aware queries:

>>> from repro import open_session
>>> session = open_session(graph, seed=0)
>>> first = session.run(eps=0.05)                      # doctest: +SKIP
>>> tighter = session.refine(eps=0.025)                # doctest: +SKIP
>>> session.checkpoint("run.snap")                     # doctest: +SKIP

``refine`` draws only the additional samples the tighter guarantee needs and
is bit-identical to a fresh run at the tighter target (same seed); see
``docs/sessions.md``.
"""

from repro.api import (
    BackendSpec,
    ProgressEvent,
    Resources,
    backend_names,
    estimate_betweenness,
    list_backends,
    register_backend,
)
from repro.core import (
    BetweennessResult,
    KadabraBetweenness,
    KadabraOptions,
    StateFrame,
    StoppingCondition,
    compute_omega,
)
from repro.graph import CSRGraph, GraphBuilder
from repro.session import (
    EstimationSession,
    SessionCapabilityError,
    SessionStateError,
    SnapshotError,
    open_session,
)
from repro.store import GraphCatalog, load_graph
from repro.baselines import brandes_betweenness, RKBetweenness

__version__ = "1.1.0"

__all__ = [
    "BackendSpec",
    "BetweennessResult",
    "CSRGraph",
    "EstimationSession",
    "GraphBuilder",
    "GraphCatalog",
    "load_graph",
    "open_session",
    "SessionCapabilityError",
    "SessionStateError",
    "SnapshotError",
    "KadabraBetweenness",
    "KadabraOptions",
    "ProgressEvent",
    "RKBetweenness",
    "Resources",
    "StateFrame",
    "StoppingCondition",
    "backend_names",
    "brandes_betweenness",
    "compute_omega",
    "estimate_betweenness",
    "list_backends",
    "register_backend",
    "__version__",
]
