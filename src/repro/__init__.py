"""repro — MPI-based adaptive sampling for betweenness-centrality approximation.

A from-scratch Python reproduction of *"Scaling Betweenness Approximation to
Billions of Edges by MPI-based Adaptive Sampling"* (van der Grinten &
Meyerhenke, IPDPS 2020): the KADABRA adaptive-sampling algorithm, its
epoch-based shared-memory parallelization, the MPI-style distributed
algorithms, and a discrete-event cluster model that regenerates the paper's
evaluation figures and tables.

Quickstart
----------
>>> from repro import KadabraBetweenness, KadabraOptions
>>> from repro.graph.generators import barabasi_albert
>>> graph = barabasi_albert(500, 3, seed=0)
>>> result = KadabraBetweenness(graph, KadabraOptions(eps=0.05, seed=0)).run()
>>> result.top_k(3)  # doctest: +SKIP
"""

from repro.core import (
    BetweennessResult,
    KadabraBetweenness,
    KadabraOptions,
    StateFrame,
    StoppingCondition,
    compute_omega,
)
from repro.graph import CSRGraph, GraphBuilder
from repro.baselines import brandes_betweenness, RKBetweenness

__version__ = "1.0.0"

__all__ = [
    "BetweennessResult",
    "KadabraBetweenness",
    "KadabraOptions",
    "StateFrame",
    "StoppingCondition",
    "compute_omega",
    "CSRGraph",
    "GraphBuilder",
    "brandes_betweenness",
    "RKBetweenness",
    "__version__",
]
