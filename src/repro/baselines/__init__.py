"""Baselines: exact Brandes betweenness and the RK fixed-sample approximation."""

from repro.baselines.brandes import brandes_betweenness, brandes_from_sources
from repro.baselines.rk import RKBetweenness, rk_sample_size
from repro.baselines.source_sampling import SourceSamplingBetweenness, source_sample_size

__all__ = [
    "brandes_betweenness",
    "brandes_from_sources",
    "RKBetweenness",
    "rk_sample_size",
    "SourceSamplingBetweenness",
    "source_sample_size",
]
