"""Source-sampling betweenness approximation (Bader et al. / Brandes–Pich style).

The oldest family of betweenness approximations ([3], [9] in the paper): pick
``k`` source vertices uniformly at random, run one full Brandes dependency
accumulation per source and extrapolate.  Unlike the path-sampling algorithms
(RK, ABRA, KADABRA) this gives no per-vertex additive guarantee for a fixed
sample size independent of ``n``, and each sample costs a *full* SSSP instead
of a truncated bidirectional BFS — which is exactly why the paper builds on
KADABRA instead.  The implementation exists as a comparison point for the
benchmarks and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.brandes import _accumulate_source_dependencies
from repro.core.result import BetweennessResult
from repro.graph.csr import CSRGraph
from repro.kernels import ScratchPool
from repro.util.deprecation import warn_legacy_entry_point
from repro.util.progress import ProgressCallback, ProgressEvent
from repro.util.timer import PhaseTimer
from repro.util.validation import check_positive, check_probability

__all__ = ["SourceSamplingBetweenness", "source_sample_size"]


def source_sample_size(eps: float, delta: float, num_vertices: int) -> int:
    """Hoeffding-style pivot count for an additive-eps guarantee per vertex.

    ``k = ceil(ln(2 n / delta) / (2 eps^2))`` sources suffice for the
    normalised dependency of each vertex to concentrate within eps; note the
    ``ln n`` factor that the VC-dimension-based path-sampling bounds avoid.
    """
    check_positive(eps, "eps")
    check_probability(delta, "delta")
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    return int(np.ceil(np.log(2.0 * num_vertices / delta) / (2.0 * eps * eps)))


@dataclass
class _SourceSamplingBetweenness:
    """Betweenness approximation from uniformly sampled SSSP sources
    (implementation behind the ``source-sampling`` registry backend)."""

    graph: CSRGraph
    eps: float = 0.05
    delta: float = 0.1
    seed: Optional[int] = None
    num_sources: Optional[int] = None
    progress: Optional[ProgressCallback] = None

    #: SSSP sources between two ``progress`` invocations.
    _PROGRESS_STRIDE = 32

    def run(self) -> BetweennessResult:
        graph = self.graph
        n = graph.num_vertices
        if n < 2:
            return BetweennessResult(scores=np.zeros(n), eps=self.eps, delta=self.delta)
        timer = PhaseTimer()
        rng = np.random.default_rng(self.seed)
        k = self.num_sources if self.num_sources is not None else source_sample_size(
            self.eps, self.delta, n
        )
        k = max(1, min(k, n))
        sources = rng.choice(n, size=k, replace=False)
        scores = np.zeros(n, dtype=np.float64)
        pool = ScratchPool(n)
        with timer.phase("sampling"):
            for i, source in enumerate(sources):
                _accumulate_source_dependencies(graph, int(source), scores, pool)
                done = i + 1
                if self.progress is not None and (
                    done % self._PROGRESS_STRIDE == 0 or done == k
                ):
                    self.progress(
                        ProgressEvent(phase="sssp", num_samples=done, omega=int(k))
                    )
        # Extrapolate to all sources, then normalise like the exact algorithm.
        scores *= n / float(k)
        if n > 2:
            scores /= float(n * (n - 1))
        return BetweennessResult(
            scores=scores,
            num_samples=int(k),
            eps=self.eps,
            delta=self.delta,
            phase_seconds=timer.as_dict(),
            extra={"num_sources": float(k)},
        )


class SourceSamplingBetweenness(_SourceSamplingBetweenness):
    """Deprecated entry point for the source-sampling baseline.

    Use :func:`repro.estimate_betweenness` with ``algorithm="source-sampling"``
    (or keep a session via :func:`repro.open_session`); this class remains as
    a thin shim and will be removed in a future release.
    """

    def __init__(self, *args, **kwargs) -> None:
        warn_legacy_entry_point("SourceSamplingBetweenness", "source-sampling")
        super().__init__(*args, **kwargs)
